(* The paper's motivating workload: a multi-homed edge AS loses one of its
   provider links, and we watch the forwarding plane of all four protocols
   during reconvergence — a timeline of how many ASes cannot reach the
   destination at each instant.

     dune exec examples/provider_failure.exe            # 500-AS topology
     dune exec examples/provider_failure.exe -- 2000 9  # size and seed   *)

(* Cumulative count of ASes that were unable to deliver at any probe up to
   each offset — probing every 20 ms of virtual time (transient windows are
   as short as one message delay, so coarse sampling would miss them). *)
let timeline sim probe offsets =
  let ever = Hashtbl.create 64 in
  let note () =
    Array.iteri
      (fun v s ->
        if not (Fwd_walk.equal_status s Fwd_walk.Delivered) then
          Hashtbl.replace ever v ())
      (probe ())
  in
  note ();
  let base = Sim.now sim in
  List.map
    (fun dt ->
      let target = base +. dt in
      while Sim.now sim < target do
        let before = Sim.events_processed sim in
        Sim.run ~until:(Float.min target (Sim.now sim +. 0.02)) sim;
        if Sim.events_processed sim > before then note ()
      done;
      (dt, Hashtbl.length ever))
    offsets

let offsets = [ 0.0; 0.05; 0.1; 0.5; 1.0; 5.0; 15.0; 30.0; 60.0; 120.0 ]

let () =
  let n = try int_of_string Sys.argv.(1) with _ -> 500 in
  let seed = try int_of_string Sys.argv.(2) with _ -> 3 in
  let topo = Topo_gen.generate (Topo_gen.default_params ~seed ~n ()) in
  Format.printf "topology: %a@." Topology.pp_stats topo;
  let st = Random.State.make [| seed |] in
  let spec = Scenario.single_link st topo in
  Format.printf "scenario: %a@.@." (Scenario.pp_spec topo) spec;
  let dest = spec.Scenario.dest in
  let fail_events net_fail =
    List.iter
      (function
        | Scenario.Fail_link (u, v) -> net_fail u v
        | _ -> assert false (* single_link only emits link failures *))
      spec.Scenario.events
  in
  let rows =
    List.map
      (fun proto ->
        let sim = Sim.create ~seed () in
        let fail, probe =
          match (proto : Runner.protocol) with
          | Bgp ->
            let net = Bgp_net.create sim topo ~dest () in
            Bgp_net.start net;
            Sim.run sim;
            (Bgp_net.fail_link net, fun () -> Bgp_net.walk_all net)
          | Rbgp | Rbgp_no_rci ->
            let net =
              Rbgp_net.create sim topo ~dest ~rci:(proto = Runner.Rbgp) ()
            in
            Rbgp_net.start net;
            Sim.run sim;
            (Rbgp_net.fail_link net, fun () -> Rbgp_net.walk_all net)
          | Stamp ->
            let coloring =
              Coloring.create Coloring.Random_choice ~seed topo ~dest
            in
            let net = Stamp_net.create sim topo ~dest ~coloring () in
            Stamp_net.start net;
            Sim.run sim;
            (Stamp_net.fail_link net, fun () -> Stamp_net.walk_all net)
        in
        fail_events fail;
        (Runner.protocol_name proto, timeline sim probe offsets))
      Runner.all_protocols
  in
  Format.printf "cumulative ASes that lost delivery at some point, by time after failure:@.@.";
  Format.printf "%-10s" "t (s)";
  List.iter (fun (name, _) -> Format.printf "%20s" name) rows;
  Format.printf "@.";
  List.iteri
    (fun i dt ->
      Format.printf "%-10.2f" dt;
      List.iter (fun (_, tl) -> Format.printf "%20d" (snd (List.nth tl i))) rows;
      Format.printf "@.")
    offsets;
  Format.printf
    "@.(the paper's Figure 2 counts each AS that is broken at any point of \
     this timeline)@."
