(* Tests for the churn & fault-injection layer: link/node recovery
   returning every engine to its pre-failure routing, the flap/churn
   scenario generators, the divergence watchdogs threaded through Runner,
   and the crash-tolerant churn sweeps. *)

let vtx = Test_support.vtx

let table_equal t (a : Static_route.table) (b : Static_route.table) =
  let ok = ref true in
  for v = 0 to Topology.num_vertices t - 1 do
    (match (a.(v), b.(v)) with
    | None, None -> ()
    | Some ea, Some eb
      when ea.Static_route.as_path = eb.Static_route.as_path
           && Relationship.equal ea.Static_route.cls eb.Static_route.cls ->
      ()
    | _ -> ok := false)
  done;
  !ok

(* --- fail -> recover returns each engine to the oracle ----------------- *)

(* Converge, snapshot the table, inject [fail], reconverge, inject
   [recover], reconverge, and check the table is back to the snapshot.
   [check_oracle] additionally pins the snapshot to the Static_route
   oracle (true for BGP and R-BGP; STAMP's per-colour trees follow the
   colouring, not plain BGP preference). *)
let roundtrip ~name ~create ~start ~table ~fail ~recover ~check_oracle t dest =
  let sim = Sim.create ~seed:11 () in
  let net = create sim in
  start net;
  Sim.run sim;
  let before = table net in
  if check_oracle then
    Alcotest.(check bool)
      (name ^ ": converged to oracle")
      true
      (table_equal t (Static_route.compute t ~dest) before);
  fail net;
  Sim.run sim;
  recover net;
  Sim.run sim;
  Alcotest.(check bool)
    (name ^ ": recovered to pre-failure table")
    true
    (table_equal t before (table net))

let fixtures () =
  [
    (* (label, topo, dest asn, link (u, v) to flap, node to bounce) *)
    ("diamond", Test_support.diamond (), 3, (3, 1), 1);
    ("diamond_plus", Test_support.diamond_plus (), 3, (3, 2), 2);
    ("chain", Test_support.chain 6, 4, (4, 3), 5);
  ]

let test_link_recover_oracle () =
  List.iter
    (fun (label, t, dasn, (ua, va), _) ->
      let dest = vtx t dasn and u = vtx t ua and v = vtx t va in
      roundtrip ~name:(label ^ "/bgp")
        ~create:(fun sim -> Bgp_net.create sim t ~dest ())
        ~start:Bgp_net.start ~table:Bgp_net.to_table
        ~fail:(fun net -> Bgp_net.fail_link net u v)
        ~recover:(fun net -> Bgp_net.recover_link net u v)
        ~check_oracle:true t dest;
      List.iter
        (fun rci ->
          roundtrip
            ~name:(Printf.sprintf "%s/rbgp rci=%b" label rci)
            ~create:(fun sim -> Rbgp_net.create sim t ~dest ~rci ())
            ~start:Rbgp_net.start ~table:Rbgp_net.to_table
            ~fail:(fun net -> Rbgp_net.fail_link net u v)
            ~recover:(fun net -> Rbgp_net.recover_link net u v)
            ~check_oracle:true t dest)
        [ true; false ];
      let coloring = Coloring.create Coloring.Random_choice ~seed:5 t ~dest in
      roundtrip ~name:(label ^ "/stamp")
        ~create:(fun sim -> Stamp_net.create sim t ~dest ~coloring ())
        ~start:Stamp_net.start
        ~table:(fun net ->
          (* both processes must return to their own pre-failure trees *)
          Array.append
            (Stamp_net.to_table net Color.Red)
            (Stamp_net.to_table net Color.Blue))
        ~fail:(fun net -> Stamp_net.fail_link net u v)
        ~recover:(fun net -> Stamp_net.recover_link net u v)
        ~check_oracle:false t dest)
    (fixtures ())

let test_node_recover_oracle () =
  List.iter
    (fun (label, t, dasn, _, nasn) ->
      let dest = vtx t dasn and node = vtx t nasn in
      roundtrip ~name:(label ^ "/bgp node")
        ~create:(fun sim -> Bgp_net.create sim t ~dest ())
        ~start:Bgp_net.start ~table:Bgp_net.to_table
        ~fail:(fun net -> Bgp_net.fail_node net node)
        ~recover:(fun net -> Bgp_net.recover_node net node)
        ~check_oracle:true t dest;
      roundtrip ~name:(label ^ "/rbgp node")
        ~create:(fun sim -> Rbgp_net.create sim t ~dest ~rci:true ())
        ~start:Rbgp_net.start ~table:Rbgp_net.to_table
        ~fail:(fun net -> Rbgp_net.fail_node net node)
        ~recover:(fun net -> Rbgp_net.recover_node net node)
        ~check_oracle:true t dest;
      let coloring = Coloring.create Coloring.Random_choice ~seed:5 t ~dest in
      roundtrip ~name:(label ^ "/stamp node")
        ~create:(fun sim -> Stamp_net.create sim t ~dest ~coloring ())
        ~start:Stamp_net.start
        ~table:(fun net ->
          Array.append
            (Stamp_net.to_table net Color.Red)
            (Stamp_net.to_table net Color.Blue))
        ~fail:(fun net -> Stamp_net.fail_node net node)
        ~recover:(fun net -> Stamp_net.recover_node net node)
        ~check_oracle:false t dest)
    (fixtures ())

(* Hybrid_net has no table view; compare the forwarding-plane outcome for
   every source instead. *)
let test_hybrid_link_recover () =
  List.iter
    (fun (label, t, dasn, (ua, va), _) ->
      let dest = vtx t dasn and u = vtx t ua and v = vtx t va in
      let sim = Sim.create ~seed:11 () in
      let net = Hybrid_net.create sim t ~dest ~deployed:(fun _ -> true) () in
      Hybrid_net.start net;
      Sim.run sim;
      let before = Hybrid_net.walk_all net in
      Array.iter
        (fun s ->
          Alcotest.(check bool)
            (label ^ ": delivered before failure")
            true
            (Fwd_walk.equal_status s Fwd_walk.Delivered))
        before;
      Hybrid_net.fail_link net u v;
      Sim.run sim;
      Hybrid_net.recover_link net u v;
      Sim.run sim;
      let after = Hybrid_net.walk_all net in
      Alcotest.(check bool)
        (label ^ ": forwarding restored for every source")
        true
        (Array.for_all2 Fwd_walk.equal_status before after))
    (fixtures ())

(* --- scenario generators ----------------------------------------------- *)

let test_flap_structure () =
  let t = Test_support.diamond_plus () in
  let st = Random.State.make [| 42 |] in
  let spec = Scenario.flap ~period:60. ~count:3 st t in
  Alcotest.(check bool) "origin is multi-homed" true
    (Topology.is_multi_homed t spec.Scenario.dest);
  Alcotest.(check int) "2 events per flap" 6 (List.length spec.Scenario.events);
  let times =
    List.map
      (function
        | Scenario.At (dt, Scenario.Fail_link _)
        | Scenario.At (dt, Scenario.Recover_link _) ->
          dt
        | _ -> Alcotest.fail "flap emits only timed link events")
      spec.Scenario.events
  in
  Alcotest.(check (list (float 1e-9))) "fail/recover cadence"
    [ 0.; 30.; 60.; 90.; 120.; 150. ] times;
  Alcotest.check_raises "non-positive count"
    (Invalid_argument "Scenario.flap: non-positive count") (fun () ->
      ignore (Scenario.flap ~period:60. ~count:0 st t))

let test_churn_structure () =
  let t = Test_support.diamond_plus () in
  let gen seed = Scenario.churn ~rate:0.1 ~duration:300. (Random.State.make [| seed |]) t in
  let spec = gen 7 in
  Alcotest.(check bool) "same seed, same spec" true (gen 7 = spec);
  Alcotest.(check bool) "events non-empty for this seed" true
    (spec.Scenario.events <> []);
  let last = ref 0. in
  List.iter
    (function
      | Scenario.At (dt, (Scenario.Fail_link _ | Scenario.Recover_link _)) ->
        Alcotest.(check bool) "within duration" true (dt <= 300.);
        Alcotest.(check bool) "in time order" true (dt >= !last);
        last := dt
      | _ -> Alcotest.fail "churn emits only timed link events")
    spec.Scenario.events;
  Alcotest.check_raises "non-positive rate"
    (Invalid_argument "Scenario.churn: non-positive rate")
    (fun () -> ignore (Scenario.churn ~rate:0. ~duration:300. (Random.State.make [| 1 |]) t))

let test_with_resampling_error () =
  let t = Test_support.diamond () in
  let st = Random.State.make [| 1 |] in
  Alcotest.check_raises "informative give-up message"
    (Invalid_argument
       "Scenario.hopeless: no suitable instance found after 3 attempts \
        (topology: 5 ASes, 1 multi-homed)") (fun () ->
      ignore (Scenario.with_resampling ~attempts:3 "hopeless" (fun _ _ -> None) st t));
  Alcotest.check_raises "non-positive attempts"
    (Invalid_argument "Scenario.with_resampling: non-positive attempts")
    (fun () ->
      ignore
        (Scenario.with_resampling ~attempts:0 "hopeless" (fun _ _ -> None) st t))

(* --- run_hybrid event coverage ------------------------------------------ *)

(* The hybrid engine used to pre-reject node and policy events; on the
   shared session core it supports the full vocabulary like every other
   engine. *)
let test_run_hybrid_full_vocabulary () =
  let t = Test_support.diamond () in
  let dest = vtx t 3 in
  let check_converges label events =
    let r =
      Runner.run_hybrid ~deployed:(fun _ -> true) t
        { Scenario.dest; events; detect_delay = None }
    in
    Alcotest.(check string) (label ^ " runs to a verdict") "converged"
      (Sim.verdict_name r.Runner.verdict)
  in
  check_converges "node failure" [ Scenario.Fail_node (vtx t 1) ];
  check_converges "node failure then timed recovery"
    [
      Scenario.Fail_node (vtx t 1);
      Scenario.At (5., Scenario.Recover_node (vtx t 1));
    ];
  check_converges "policy deny then timed allow"
    [
      Scenario.Deny_export (dest, vtx t 1);
      Scenario.At (40., Scenario.Allow_export (dest, vtx t 1));
    ];
  check_converges "link failure then timed recovery"
    [
      Scenario.Fail_link (dest, vtx t 1);
      Scenario.At (40., Scenario.Recover_link (dest, vtx t 1));
    ];
  (* a denied export at a legacy-BGP AS pair actually withdraws the route:
     the hybrid's policy machinery works, it isn't silently ignored *)
  let r =
    Runner.run_hybrid ~deployed:(fun _ -> false) t
      {
        Scenario.dest;
        events = [ Scenario.Deny_export (dest, vtx t 1) ];
        detect_delay = None;
      }
  in
  Alcotest.(check string) "legacy-AS policy event converges" "converged"
    (Sim.verdict_name r.Runner.verdict);
  Alcotest.(check bool) "policy event causes reconvergence traffic" true
    (r.Runner.messages_event > 0)

(* --- watchdog verdicts through Runner and the sweeps -------------------- *)

(* Flap scenarios under a finite budget always terminate with a verdict,
   whatever the seed and flap shape. *)
let prop_flap_terminates =
  Test_support.qtest ~count:25 "guarded flap runs always reach a verdict"
    QCheck2.Gen.(
      triple (int_range 0 1000) (int_range 1 4) (float_range 0.5 90.))
    (fun (seed, count, period) ->
      Printf.sprintf "{seed=%d; count=%d; period=%g}" seed count period)
    (fun (seed, count, period) ->
      let t = Test_support.diamond_plus () in
      let spec =
        Scenario.flap ~period ~count (Random.State.make [| seed |]) t
      in
      let budget = { Runner.max_events = 30_000; max_vtime = 3_600. } in
      List.for_all
        (fun protocol ->
          let r = Runner.run ~seed ~budget protocol t spec in
          (* terminated (we got here) with a well-formed partial result *)
          r.Runner.checkpoints >= 1
          && r.Runner.transient_count >= 0
          && r.Runner.messages_initial >= 0
          && List.mem
               (Sim.verdict_name r.Runner.verdict)
               [ "converged"; "event-budget-exhausted"; "time-budget-exhausted" ])
        Runner.all_protocols)

(* A sweep under a deliberately tiny event budget: every instance is
   killed by the watchdog, none crashes, and the sweep still reports a row
   for every (protocol, instance) pair. *)
let test_sweep_tiny_budget_verdicts () =
  let t = Test_support.diamond_plus () in
  let instances = 3 in
  let rows, summaries =
    Experiment.churn_sweep ~instances ~seed:1
      ~budget:{ Runner.max_events = 40; max_vtime = 86_400. }
      ~scenario:(Scenario.flap ~period:60. ~count:3)
      t
  in
  Alcotest.(check int) "one row per (protocol, instance)"
    (List.length Runner.all_protocols * instances)
    (List.length rows);
  List.iter
    (fun (r : Experiment.churn_row) ->
      match r.outcome with
      | Ok res ->
        Alcotest.(check string)
          (Printf.sprintf "instance %d killed by the event budget" r.instance)
          "event-budget-exhausted"
          (Sim.verdict_name res.Runner.verdict)
      | Error msg -> Alcotest.failf "unexpected crash row: %s" msg)
    rows;
  List.iter
    (fun (s : Experiment.churn_summary) ->
      Alcotest.(check int) "completed" instances s.completed;
      Alcotest.(check int) "crashed" 0 s.crashed;
      Alcotest.(check int) "event-budget tally" instances
        s.event_budget_exhausted;
      Alcotest.(check int) "no converged" 0 s.converged)
    summaries

(* One poisoned instance (its spec injects a failure on a non-adjacent
   pair, so every engine raises) must not abort the sweep: it becomes an
   Error row per protocol while the other instances complete normally. *)
let test_sweep_survives_crashing_instance () =
  let t = Test_support.diamond_plus () in
  let dest = vtx t 3 in
  let calls = ref 0 in
  let scenario st topo =
    incr calls;
    if !calls = 2 then
      (* 10 and 3 are not adjacent: fail_link raises in every engine *)
      { Scenario.dest; events = [ Scenario.Fail_link (vtx t 10, dest) ]; detect_delay = None }
    else Scenario.flap ~period:60. ~count:2 st topo
  in
  let rows, summaries =
    Experiment.churn_sweep ~instances:3 ~seed:1 ~scenario t
  in
  Alcotest.(check int) "all rows present"
    (List.length Runner.all_protocols * 3)
    (List.length rows);
  List.iter
    (fun (r : Experiment.churn_row) ->
      match (r.instance, r.outcome) with
      | 1, Error msg ->
        Alcotest.(check bool) "crash row carries the exception" true
          (Astring.String.is_infix ~affix:"fail_link" msg)
      | 1, Ok _ -> Alcotest.fail "poisoned instance should crash"
      | _, Ok res ->
        Alcotest.(check string)
          (Printf.sprintf "healthy instance %d converges" r.instance)
          "converged"
          (Sim.verdict_name res.Runner.verdict)
      | i, Error msg -> Alcotest.failf "instance %d crashed: %s" i msg)
    rows;
  List.iter
    (fun (s : Experiment.churn_summary) ->
      Alcotest.(check int) "completed" 2 s.completed;
      Alcotest.(check int) "crashed" 1 s.crashed;
      Alcotest.(check int) "converged" 2 s.converged)
    summaries

(* The fig2-style single-event paths still converge under the default
   budget: the watchdog never binds on healthy workloads. *)
let test_default_budget_never_binds () =
  let t = Test_support.diamond_plus () in
  let dest = vtx t 3 in
  let spec =
    { Scenario.dest;
      events = [ Scenario.Fail_link (dest, vtx t 1) ];
      detect_delay = None }
  in
  List.iter
    (fun protocol ->
      let r = Runner.run ~seed:3 protocol t spec in
      Alcotest.(check string)
        (Runner.protocol_name protocol ^ " converges")
        "converged"
        (Sim.verdict_name r.Runner.verdict))
    Runner.all_protocols

let () =
  Alcotest.run "churn"
    [
      ( "recovery",
        [
          Alcotest.test_case "link fail/recover -> oracle" `Quick
            test_link_recover_oracle;
          Alcotest.test_case "node fail/recover -> oracle" `Quick
            test_node_recover_oracle;
          Alcotest.test_case "hybrid link fail/recover" `Quick
            test_hybrid_link_recover;
        ] );
      ( "scenarios",
        [
          Alcotest.test_case "flap structure" `Quick test_flap_structure;
          Alcotest.test_case "churn structure" `Quick test_churn_structure;
          Alcotest.test_case "with_resampling error" `Quick
            test_with_resampling_error;
        ] );
      ( "watchdogs",
        [
          Alcotest.test_case "run_hybrid supports the full vocabulary" `Quick
            test_run_hybrid_full_vocabulary;
          prop_flap_terminates;
          Alcotest.test_case "tiny budget: sweep full of verdicts" `Quick
            test_sweep_tiny_budget_verdicts;
          Alcotest.test_case "crashing instance doesn't abort sweep" `Quick
            test_sweep_survives_crashing_instance;
          Alcotest.test_case "default budget never binds" `Quick
            test_default_budget_never_binds;
        ] );
    ]
