(* Error-path coverage for the text-format loaders: Scenario_io and
   Topo_io must reject truncated, malformed and inconsistent inputs with
   an [Invalid_argument] that names the problem and the (physical) line,
   and the Topology.Builder must refuse duplicate links whose
   relationships disagree. The exact messages are asserted — they are the
   user interface of every CLI that loads these files. *)

let diamond = Test_support.diamond

let check_invalid name expected_msg f =
  Alcotest.check_raises name (Invalid_argument expected_msg) (fun () ->
      ignore (f ()))

(* --- Scenario_io -------------------------------------------------------- *)

let test_scenario_missing_dest () =
  let topo = diamond () in
  check_invalid "no dest directive" "Scenario_io: missing dest directive"
    (fun () -> Scenario_io.parse topo "fail_link 3 1\n");
  check_invalid "empty file" "Scenario_io: missing dest directive" (fun () ->
      Scenario_io.parse topo "");
  check_invalid "comments only" "Scenario_io: missing dest directive"
    (fun () -> Scenario_io.parse topo "# a comment\n\n  # another\n")

let test_scenario_duplicate_directives () =
  let topo = diamond () in
  check_invalid "duplicate dest"
    "Scenario_io: duplicate dest directive on line 2" (fun () ->
      Scenario_io.parse topo "dest 3\ndest 1\n");
  check_invalid "duplicate detect"
    "Scenario_io: duplicate detect directive on line 3" (fun () ->
      Scenario_io.parse topo "dest 3\ndetect 1.5\ndetect 2.0\n")

let test_scenario_bad_numbers () =
  let topo = diamond () in
  check_invalid "non-numeric ASN"
    "Scenario_io: bad AS number \"x\" on line 1" (fun () ->
      Scenario_io.parse topo "dest x\n");
  check_invalid "unknown ASN" "Scenario_io: AS 999 not in topology on line 2"
    (fun () -> Scenario_io.parse topo "dest 3\nfail_node 999\n");
  check_invalid "non-numeric detect"
    "Scenario_io: bad number \"fast\" on line 2" (fun () ->
      Scenario_io.parse topo "dest 3\ndetect fast\n")

let test_scenario_malformed_events () =
  let topo = diamond () in
  check_invalid "unknown event kind"
    "Scenario_io: malformed event \"frobnicate 3 1\" on line 2" (fun () ->
      Scenario_io.parse topo "dest 3\nfrobnicate 3 1\n");
  (* a truncated [at] (delay but no wrapped event) is malformed, not an
     event with defaults *)
  check_invalid "truncated at" "Scenario_io: malformed event \"at 5\" on line 2"
    (fun () -> Scenario_io.parse topo "dest 3\nat 5\n");
  check_invalid "fail_link missing endpoint"
    "Scenario_io: malformed event \"fail_link 3\" on line 2" (fun () ->
      Scenario_io.parse topo "dest 3\nfail_link 3\n");
  (* error lines are physical line numbers, comments and blanks included *)
  check_invalid "line numbers skip comments"
    "Scenario_io: malformed event \"bogus\" on line 4" (fun () ->
      Scenario_io.parse topo "dest 3\n# comment\n\nbogus\n")

(* a file cut off mid-line must fail cleanly through the [load] path too *)
let test_scenario_truncated_file () =
  let topo = diamond () in
  let path = Filename.temp_file "scn_trunc" ".scn" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "dest 3\nat 40 recover_lin";
      close_out oc;
      (* [at] recurses into its wrapped event, so the message names the
         truncated inner tokens *)
      check_invalid "truncated event line"
        "Scenario_io: malformed event \"recover_lin\" on line 2" (fun () ->
          Scenario_io.load topo path))

let test_scenario_good_inputs_still_parse () =
  let topo = diamond () in
  let spec =
    Scenario_io.parse topo
      "# tabs, comments and repeated events are all fine\n\
       dest 3\n\
       detect 0.5\n\
       fail_link 3\t1\n\
       at 40 recover_link 3 1\n"
  in
  Alcotest.(check int) "both events parsed" 2 (List.length spec.Scenario.events);
  Alcotest.(check (option (float 0.))) "detect parsed" (Some 0.5)
    spec.Scenario.detect_delay

(* --- Topo_io: relationship files ---------------------------------------- *)

let test_topo_bad_as_numbers () =
  List.iter
    (fun (label, content, msg) ->
      check_invalid label msg (fun () -> Topo_io.parse_relationships content))
    [
      ( "non-numeric ASN",
        "x|2|0\n",
        "Topo_io: bad AS number \"x\" on line 1" );
      ("zero ASN", "0|2|0\n", "Topo_io: bad AS number \"0\" on line 1");
      ("negative ASN", "-3|2|0\n", "Topo_io: bad AS number \"-3\" on line 1");
    ]

let test_topo_unknown_code () =
  check_invalid "unknown relationship code"
    "Topo_io: unknown relationship code \"7\" on line 1" (fun () ->
      Topo_io.parse_relationships "1|2|7\n");
  (* physical line numbers survive comments and blank lines *)
  check_invalid "line number past comments"
    "Topo_io: unknown relationship code \"9\" on line 3" (fun () ->
      Topo_io.parse_relationships "# caida header\n\n1|2|9\n")

let test_topo_malformed_lines () =
  check_invalid "two fields" "Topo_io: malformed relationship line 1"
    (fun () -> Topo_io.parse_relationships "1|2\n");
  check_invalid "four fields" "Topo_io: malformed relationship line 1"
    (fun () -> Topo_io.parse_relationships "1|2|0|extra\n");
  (* a download cut off mid-line: the earlier complete lines don't mask
     the truncated last one *)
  check_invalid "truncated last line" "Topo_io: malformed relationship line 2"
    (fun () -> Topo_io.parse_relationships "10|20|0\n1|2")

let test_topo_builder_rejections () =
  check_invalid "self link" "Topology.Builder: self link" (fun () ->
      Topo_io.parse_relationships "5|5|0\n");
  (* the same physical link with disagreeing relationships: 1 provider of
     2 on one line, 2 provider of 1 on the next *)
  check_invalid "conflicting duplicate link"
    "Topology.Builder: conflicting relationship for link 1-2" (fun () ->
      Topo_io.parse_relationships "1|2|-1\n2|1|-1\n");
  check_invalid "peer vs p2c conflict"
    "Topology.Builder: conflicting relationship for link 1-2" (fun () ->
      Topo_io.parse_relationships "1|2|0\n1|2|-1\n")

let test_topo_consistent_duplicates_ok () =
  (* byte-identical duplicate lines and the same peer link stated from
     both ends are consistent, hence accepted and deduplicated *)
  let t = Topo_io.parse_relationships "1|2|-1\n1|2|-1\n1|3|0\n3|1|0\n" in
  Alcotest.(check int) "three ASes" 3 (Topology.num_vertices t);
  let links = ref 0 in
  for v = 0 to Topology.num_vertices t - 1 do
    links := !links + Array.length (Topology.neighbors t v)
  done;
  Alcotest.(check int) "two undirected links (four directed entries)" 4 !links

let test_topo_bad_paths () =
  check_invalid "non-numeric hop" "Topo_io: bad AS number \"x\" on line 1"
    (fun () -> Topo_io.parse_paths "10 20 x\n");
  check_invalid "zero hop" "Topo_io: bad AS number \"0\" on line 2" (fun () ->
      Topo_io.parse_paths "10 20\n30 0\n")

let test_missing_files () =
  let missing = "/nonexistent/definitely_not_here.rel" in
  let raises_sys_error f =
    match f () with
    | _ -> false
    | exception Sys_error _ -> true
  in
  Alcotest.(check bool) "relationships" true
    (raises_sys_error (fun () -> Topo_io.load_relationships missing));
  Alcotest.(check bool) "scenario" true
    (raises_sys_error (fun () -> Scenario_io.load (diamond ()) missing))

let () =
  Alcotest.run "io_errors"
    [
      ( "scenario_io",
        [
          Alcotest.test_case "missing dest" `Quick test_scenario_missing_dest;
          Alcotest.test_case "duplicate directives" `Quick
            test_scenario_duplicate_directives;
          Alcotest.test_case "bad numbers" `Quick test_scenario_bad_numbers;
          Alcotest.test_case "malformed events" `Quick
            test_scenario_malformed_events;
          Alcotest.test_case "truncated file" `Quick
            test_scenario_truncated_file;
          Alcotest.test_case "good inputs still parse" `Quick
            test_scenario_good_inputs_still_parse;
        ] );
      ( "topo_io",
        [
          Alcotest.test_case "bad AS numbers" `Quick test_topo_bad_as_numbers;
          Alcotest.test_case "unknown relationship code" `Quick
            test_topo_unknown_code;
          Alcotest.test_case "malformed lines" `Quick test_topo_malformed_lines;
          Alcotest.test_case "builder rejects conflicts" `Quick
            test_topo_builder_rejections;
          Alcotest.test_case "consistent duplicates accepted" `Quick
            test_topo_consistent_duplicates_ok;
          Alcotest.test_case "bad path files" `Quick test_topo_bad_paths;
          Alcotest.test_case "missing files raise Sys_error" `Quick
            test_missing_files;
        ] );
    ]
