(* Tests for the deterministic domain pool: submission-order results,
   bit-identical parity with the sequential baseline, exception handling
   and edge cases. The source-hygiene checks that used to live here moved
   to test_hygiene.ml, generalised into a rule table. *)

let runner_result =
  Alcotest.testable
    (fun ppf (r : Runner.result) ->
      Format.fprintf ppf
        "{transient=%d; broken=%d; conv=%.17g; rec=%.17g; msgs=%d+%d; cp=%d; \
         %a; verdict=%s}"
        r.Runner.transient_count r.Runner.broken_after
        r.Runner.convergence_delay r.Runner.recovery_delay
        r.Runner.messages_initial r.Runner.messages_event r.Runner.checkpoints
        Counters.pp r.Runner.counters
        (Sim.verdict_name r.Runner.verdict))
    ( = )

(* --- pool vs sequential baseline over the shared fixtures -------------- *)

(* Every (fixture, protocol, seed) triple is one independent Runner.run
   job; the pool must reproduce the plain sequential List.map bit for
   bit, whatever the worker count. *)
let runner_jobs () =
  let diamond = Test_support.diamond () in
  let chain = Test_support.chain 6 in
  let fixtures =
    [
      (* multi-homed stub loses one provider link *)
      ( "diamond",
        diamond,
        {
          Scenario.dest = Test_support.vtx diamond 3;
          events =
            [
              Scenario.Fail_link
                (Test_support.vtx diamond 3, Test_support.vtx diamond 1);
            ];
          detect_delay = None;
        } );
      (* mid-chain provider link failure partitions the chain *)
      ( "chain",
        chain,
        {
          Scenario.dest = Test_support.vtx chain 4;
          events =
            [
              Scenario.Fail_link
                (Test_support.vtx chain 4, Test_support.vtx chain 3);
            ];
          detect_delay = None;
        } );
    ]
  in
  List.concat_map
    (fun (label, topo, spec) ->
      List.concat_map
        (fun protocol ->
          List.map
            (fun seed ->
              ( Printf.sprintf "%s/%s/seed=%d" label
                  (Runner.protocol_name protocol)
                  seed,
                fun () -> Runner.run ~seed protocol topo spec ))
            [ 0; 7 ])
        Runner.all_protocols)
    fixtures

let test_pool_matches_sequential () =
  let jobs = runner_jobs () in
  let sequential = List.map (fun (_, job) -> job ()) jobs in
  List.iter
    (fun workers ->
      let pooled =
        Parallel.with_pool ~jobs:workers (fun pool ->
            Parallel.map pool (fun (_, job) -> job ()) jobs)
      in
      List.iter2
        (fun (label, _) (expected, got) ->
          Alcotest.check runner_result
            (Printf.sprintf "jobs=%d %s" workers label)
            expected got)
        jobs
        (List.combine sequential pooled))
    [ 1; 4 ]

let test_pool_repeated_batches_stable () =
  (* same pool, same batch twice: identical results both times *)
  Parallel.with_pool ~jobs:4 (fun pool ->
      let jobs = runner_jobs () in
      let once = Parallel.map pool (fun (_, job) -> job ()) jobs in
      let twice = Parallel.map pool (fun (_, job) -> job ()) jobs in
      Alcotest.(check bool) "identical across batches" true (once = twice))

(* --- exception contract ------------------------------------------------ *)

let test_exception_reraised_rest_completes () =
  Parallel.with_pool ~jobs:4 (fun pool ->
      let n = 16 in
      let ran = Array.make n false in
      let thunks =
        Array.init n (fun i () ->
            ran.(i) <- true;
            if i = 3 then failwith "boom3";
            if i = 11 then failwith "boom11";
            i)
      in
      (match Parallel.run_batch pool thunks with
      | _ -> Alcotest.fail "expected the job's exception"
      | exception Failure msg ->
        Alcotest.(check string) "lowest-indexed failure wins" "boom3" msg);
      Alcotest.(check bool) "every job still ran" true (Array.for_all Fun.id ran);
      (* the pool survives a failing batch *)
      let r = Parallel.run_batch pool (Array.init 5 (fun i () -> i * i)) in
      Alcotest.(check (array int)) "pool usable afterwards"
        [| 0; 1; 4; 9; 16 |] r)

let test_try_map_captures_per_job () =
  (* unlike run_batch, try_map keeps the whole sweep alive: raising jobs
     become Error rows in submission order, the rest are Ok *)
  Parallel.with_pool ~jobs:4 (fun pool ->
      let xs = List.init 12 Fun.id in
      let results =
        Parallel.try_map pool
          (fun i -> if i mod 5 = 3 then failwith (Printf.sprintf "job%d" i)
            else i * i)
          xs
      in
      Alcotest.(check int) "one row per job" 12 (List.length results);
      List.iteri
        (fun i r ->
          match r with
          | Ok v -> Alcotest.(check int) (Printf.sprintf "ok %d" i) (i * i) v
          | Error (Failure msg) ->
            Alcotest.(check bool)
              (Printf.sprintf "raising job %d" i)
              true
              (i mod 5 = 3 && msg = Printf.sprintf "job%d" i)
          | Error _ -> Alcotest.fail "unexpected exception")
        results;
      (* all-ok batch afterwards: the pool is unharmed *)
      let again = Parallel.try_map pool succ [ 1; 2; 3 ] in
      Alcotest.(check bool) "pool usable afterwards" true
        (again = [ Ok 2; Ok 3; Ok 4 ]))

let test_reentrant_submit_rejected () =
  Parallel.with_pool ~jobs:2 (fun pool ->
      match
        Parallel.run_batch pool
          [| (fun () -> Parallel.run_batch pool [| (fun () -> 0) |]) |]
      with
      | _ -> Alcotest.fail "expected Invalid_argument"
      | exception Invalid_argument _ -> ())

let test_shutdown () =
  let pool = Parallel.create ~jobs:3 () in
  Parallel.shutdown pool;
  Parallel.shutdown pool;
  (* idempotent *)
  match Parallel.run_batch pool [| (fun () -> 0) |] with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* --- edge cases -------------------------------------------------------- *)

let test_empty_batch () =
  Parallel.with_pool ~jobs:4 (fun pool ->
      Alcotest.(check (array int)) "empty" [||] (Parallel.run_batch pool [||]);
      Alcotest.(check (list int)) "empty map" [] (Parallel.map pool succ []))

let test_fewer_jobs_than_workers () =
  Parallel.with_pool ~jobs:8 (fun pool ->
      Alcotest.(check (list int)) "3 jobs on 8 workers" [ 1; 2; 3 ]
        (Parallel.map pool succ [ 0; 1; 2 ]))

let test_jobs_clamped () =
  Parallel.with_pool ~jobs:0 (fun pool ->
      Alcotest.(check int) "clamped to 1" 1 (Parallel.jobs pool);
      Alcotest.(check (list int)) "still works" [ 10 ]
        (Parallel.map pool (fun x -> x * 10) [ 1 ]))

let test_submission_order_and_mapi () =
  Parallel.with_pool ~jobs:4 (fun pool ->
      let xs = List.init 100 (fun i -> i) in
      Alcotest.(check (list int)) "order preserved" xs (Parallel.map pool Fun.id xs);
      Alcotest.(check (list (pair int string)))
        "mapi passes submission index"
        (List.map (fun i -> (i, string_of_int i)) xs)
        (Parallel.mapi pool (fun i x -> (i, string_of_int x)) xs))

let test_map_reduce_order () =
  (* string concatenation is non-commutative: any out-of-order reduce
     would be caught here *)
  let xs = List.init 50 string_of_int in
  let expected = String.concat "," xs in
  Parallel.with_pool ~jobs:4 (fun pool ->
      let got =
        Parallel.map_reduce pool ~map:Fun.id
          ~reduce:(fun acc s -> if acc = "" then s else acc ^ "," ^ s)
          ~init:"" xs
      in
      Alcotest.(check string) "in submission order" expected got)

let () =
  Alcotest.run "parallel"
    [
      ( "determinism",
        [
          Alcotest.test_case "pool = sequential (jobs 1 and 4)" `Quick
            test_pool_matches_sequential;
          Alcotest.test_case "repeated batches stable" `Quick
            test_pool_repeated_batches_stable;
        ] );
      ( "exceptions",
        [
          Alcotest.test_case "re-raised, batch completes" `Quick
            test_exception_reraised_rest_completes;
          Alcotest.test_case "try_map captures per job" `Quick
            test_try_map_captures_per_job;
          Alcotest.test_case "re-entrant submit rejected" `Quick
            test_reentrant_submit_rejected;
          Alcotest.test_case "shutdown" `Quick test_shutdown;
        ] );
      ( "edges",
        [
          Alcotest.test_case "empty batch" `Quick test_empty_batch;
          Alcotest.test_case "fewer jobs than workers" `Quick
            test_fewer_jobs_than_workers;
          Alcotest.test_case "jobs clamped to 1" `Quick test_jobs_clamped;
          Alcotest.test_case "submission order / mapi" `Quick
            test_submission_order_and_mapi;
          Alcotest.test_case "map_reduce order" `Quick test_map_reduce_order;
        ] );
    ]
