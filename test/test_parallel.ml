(* Tests for the deterministic domain pool: submission-order results,
   bit-identical parity with the sequential baseline, exception handling,
   edge cases — and the source-hygiene check that keeps worker code free
   of the global Random module. *)

let runner_result =
  Alcotest.testable
    (fun ppf (r : Runner.result) ->
      Format.fprintf ppf
        "{transient=%d; broken=%d; conv=%.17g; rec=%.17g; msgs=%d+%d; cp=%d; \
         %a; verdict=%s}"
        r.Runner.transient_count r.Runner.broken_after
        r.Runner.convergence_delay r.Runner.recovery_delay
        r.Runner.messages_initial r.Runner.messages_event r.Runner.checkpoints
        Counters.pp r.Runner.counters
        (Sim.verdict_name r.Runner.verdict))
    ( = )

(* --- pool vs sequential baseline over the shared fixtures -------------- *)

(* Every (fixture, protocol, seed) triple is one independent Runner.run
   job; the pool must reproduce the plain sequential List.map bit for
   bit, whatever the worker count. *)
let runner_jobs () =
  let diamond = Test_support.diamond () in
  let chain = Test_support.chain 6 in
  let fixtures =
    [
      (* multi-homed stub loses one provider link *)
      ( "diamond",
        diamond,
        {
          Scenario.dest = Test_support.vtx diamond 3;
          events =
            [
              Scenario.Fail_link
                (Test_support.vtx diamond 3, Test_support.vtx diamond 1);
            ];
          detect_delay = None;
        } );
      (* mid-chain provider link failure partitions the chain *)
      ( "chain",
        chain,
        {
          Scenario.dest = Test_support.vtx chain 4;
          events =
            [
              Scenario.Fail_link
                (Test_support.vtx chain 4, Test_support.vtx chain 3);
            ];
          detect_delay = None;
        } );
    ]
  in
  List.concat_map
    (fun (label, topo, spec) ->
      List.concat_map
        (fun protocol ->
          List.map
            (fun seed ->
              ( Printf.sprintf "%s/%s/seed=%d" label
                  (Runner.protocol_name protocol)
                  seed,
                fun () -> Runner.run ~seed protocol topo spec ))
            [ 0; 7 ])
        Runner.all_protocols)
    fixtures

let test_pool_matches_sequential () =
  let jobs = runner_jobs () in
  let sequential = List.map (fun (_, job) -> job ()) jobs in
  List.iter
    (fun workers ->
      let pooled =
        Parallel.with_pool ~jobs:workers (fun pool ->
            Parallel.map pool (fun (_, job) -> job ()) jobs)
      in
      List.iter2
        (fun (label, _) (expected, got) ->
          Alcotest.check runner_result
            (Printf.sprintf "jobs=%d %s" workers label)
            expected got)
        jobs
        (List.combine sequential pooled))
    [ 1; 4 ]

let test_pool_repeated_batches_stable () =
  (* same pool, same batch twice: identical results both times *)
  Parallel.with_pool ~jobs:4 (fun pool ->
      let jobs = runner_jobs () in
      let once = Parallel.map pool (fun (_, job) -> job ()) jobs in
      let twice = Parallel.map pool (fun (_, job) -> job ()) jobs in
      Alcotest.(check bool) "identical across batches" true (once = twice))

(* --- exception contract ------------------------------------------------ *)

let test_exception_reraised_rest_completes () =
  Parallel.with_pool ~jobs:4 (fun pool ->
      let n = 16 in
      let ran = Array.make n false in
      let thunks =
        Array.init n (fun i () ->
            ran.(i) <- true;
            if i = 3 then failwith "boom3";
            if i = 11 then failwith "boom11";
            i)
      in
      (match Parallel.run_batch pool thunks with
      | _ -> Alcotest.fail "expected the job's exception"
      | exception Failure msg ->
        Alcotest.(check string) "lowest-indexed failure wins" "boom3" msg);
      Alcotest.(check bool) "every job still ran" true (Array.for_all Fun.id ran);
      (* the pool survives a failing batch *)
      let r = Parallel.run_batch pool (Array.init 5 (fun i () -> i * i)) in
      Alcotest.(check (array int)) "pool usable afterwards"
        [| 0; 1; 4; 9; 16 |] r)

let test_try_map_captures_per_job () =
  (* unlike run_batch, try_map keeps the whole sweep alive: raising jobs
     become Error rows in submission order, the rest are Ok *)
  Parallel.with_pool ~jobs:4 (fun pool ->
      let xs = List.init 12 Fun.id in
      let results =
        Parallel.try_map pool
          (fun i -> if i mod 5 = 3 then failwith (Printf.sprintf "job%d" i)
            else i * i)
          xs
      in
      Alcotest.(check int) "one row per job" 12 (List.length results);
      List.iteri
        (fun i r ->
          match r with
          | Ok v -> Alcotest.(check int) (Printf.sprintf "ok %d" i) (i * i) v
          | Error (Failure msg) ->
            Alcotest.(check bool)
              (Printf.sprintf "raising job %d" i)
              true
              (i mod 5 = 3 && msg = Printf.sprintf "job%d" i)
          | Error _ -> Alcotest.fail "unexpected exception")
        results;
      (* all-ok batch afterwards: the pool is unharmed *)
      let again = Parallel.try_map pool succ [ 1; 2; 3 ] in
      Alcotest.(check bool) "pool usable afterwards" true
        (again = [ Ok 2; Ok 3; Ok 4 ]))

let test_reentrant_submit_rejected () =
  Parallel.with_pool ~jobs:2 (fun pool ->
      match
        Parallel.run_batch pool
          [| (fun () -> Parallel.run_batch pool [| (fun () -> 0) |]) |]
      with
      | _ -> Alcotest.fail "expected Invalid_argument"
      | exception Invalid_argument _ -> ())

let test_shutdown () =
  let pool = Parallel.create ~jobs:3 () in
  Parallel.shutdown pool;
  Parallel.shutdown pool;
  (* idempotent *)
  match Parallel.run_batch pool [| (fun () -> 0) |] with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* --- edge cases -------------------------------------------------------- *)

let test_empty_batch () =
  Parallel.with_pool ~jobs:4 (fun pool ->
      Alcotest.(check (array int)) "empty" [||] (Parallel.run_batch pool [||]);
      Alcotest.(check (list int)) "empty map" [] (Parallel.map pool succ []))

let test_fewer_jobs_than_workers () =
  Parallel.with_pool ~jobs:8 (fun pool ->
      Alcotest.(check (list int)) "3 jobs on 8 workers" [ 1; 2; 3 ]
        (Parallel.map pool succ [ 0; 1; 2 ]))

let test_jobs_clamped () =
  Parallel.with_pool ~jobs:0 (fun pool ->
      Alcotest.(check int) "clamped to 1" 1 (Parallel.jobs pool);
      Alcotest.(check (list int)) "still works" [ 10 ]
        (Parallel.map pool (fun x -> x * 10) [ 1 ]))

let test_submission_order_and_mapi () =
  Parallel.with_pool ~jobs:4 (fun pool ->
      let xs = List.init 100 (fun i -> i) in
      Alcotest.(check (list int)) "order preserved" xs (Parallel.map pool Fun.id xs);
      Alcotest.(check (list (pair int string)))
        "mapi passes submission index"
        (List.map (fun i -> (i, string_of_int i)) xs)
        (Parallel.mapi pool (fun i x -> (i, string_of_int x)) xs))

let test_map_reduce_order () =
  (* string concatenation is non-commutative: any out-of-order reduce
     would be caught here *)
  let xs = List.init 50 string_of_int in
  let expected = String.concat "," xs in
  Parallel.with_pool ~jobs:4 (fun pool ->
      let got =
        Parallel.map_reduce pool ~map:Fun.id
          ~reduce:(fun acc s -> if acc = "" then s else acc ^ "," ^ s)
          ~init:"" xs
      in
      Alcotest.(check string) "in submission order" expected got)

(* --- source hygiene: no global Random in lib/ -------------------------- *)

(* The determinism contract of Parallel/Experiment rests on every piece
   of worker-reachable code deriving its randomness from an explicit
   Random.State (Sim.rng or a seeded state). The global Random module is
   domain-local in OCaml 5, so a stray Random.int would not crash — it
   would silently produce worker-count-dependent numbers. Fail the build
   instead. [test/dune] declares (source_tree ../lib) so the sources are
   present in the build directory. *)
let forbidden_random_calls =
  [
    "Random.int";
    "Random.float";
    "Random.bool";
    "Random.bits";
    "Random.full_int";
    "Random.self_init";
  ]

let rec source_files acc dir =
  Array.fold_left
    (fun acc entry ->
      if entry = "" || entry.[0] = '.' then acc
      else
        let path = Filename.concat dir entry in
        if Sys.is_directory path then source_files acc path
        else if
          Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli"
        then path :: acc
        else acc)
    acc (Sys.readdir dir)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let test_no_global_random_in_lib () =
  (* "../lib" under dune runtest (cwd = _build/default/test); "lib" when
     the executable is run from the workspace root via dune exec *)
  let lib_dir =
    List.find_opt Sys.file_exists [ "../lib"; "lib"; "_build/default/lib" ]
  in
  let lib_dir =
    match lib_dir with
    | Some d -> d
    | None ->
      Alcotest.fail "lib sources not found (missing source_tree dep in test/dune?)"
  in
  let files = source_files [] lib_dir in
  Alcotest.(check bool) "found library sources" true (List.length files > 50);
  let offenders =
    List.concat_map
      (fun path ->
        let content = read_file path in
        List.filter_map
          (fun pattern ->
            if Astring.String.is_infix ~affix:pattern content then
              Some (path ^ ": " ^ pattern)
            else None)
          forbidden_random_calls)
      files
  in
  if offenders <> [] then
    Alcotest.failf "global Random usage in lib/ (use Random.State):\n%s"
      (String.concat "\n" offenders)

(* The engine substrate owns every session channel and MRAI timer: the
   RNG draw-order contract (one float per Mrai.create, one per
   Channel.send) is pinned by the golden Runner numbers, and it only
   holds if no protocol builds channels or MRAI timers behind
   Session_core's back. Constructing either anywhere in lib/ outside
   lib/engine (or their defining simkernel modules) fails the build. *)
let forbidden_session_constructions = [ "Channel.create"; "Mrai.create" ]

let test_no_session_construction_outside_engine () =
  let lib_dir =
    match
      List.find_opt Sys.file_exists [ "../lib"; "lib"; "_build/default/lib" ]
    with
    | Some d -> d
    | None ->
      Alcotest.fail "lib sources not found (missing source_tree dep in test/dune?)"
  in
  let allowed path =
    (* the substrate itself, plus the simkernel modules that define the
       primitives (their .mli docs may name the qualified calls) *)
    Astring.String.is_infix ~affix:"engine" path
    || Astring.String.is_infix ~affix:"sim" path
  in
  let files =
    List.filter (fun p -> not (allowed p)) (source_files [] lib_dir)
  in
  Alcotest.(check bool) "found non-engine library sources" true
    (List.length files > 20);
  let offenders =
    List.concat_map
      (fun path ->
        let content = read_file path in
        List.filter_map
          (fun pattern ->
            if Astring.String.is_infix ~affix:pattern content then
              Some (path ^ ": " ^ pattern)
            else None)
          forbidden_session_constructions)
      files
  in
  if offenders <> [] then
    Alcotest.failf
      "session channel/MRAI construction outside lib/engine (route it \
       through Session_core):\n\
       %s"
      (String.concat "\n" offenders)

let () =
  Alcotest.run "parallel"
    [
      ( "determinism",
        [
          Alcotest.test_case "pool = sequential (jobs 1 and 4)" `Quick
            test_pool_matches_sequential;
          Alcotest.test_case "repeated batches stable" `Quick
            test_pool_repeated_batches_stable;
        ] );
      ( "exceptions",
        [
          Alcotest.test_case "re-raised, batch completes" `Quick
            test_exception_reraised_rest_completes;
          Alcotest.test_case "try_map captures per job" `Quick
            test_try_map_captures_per_job;
          Alcotest.test_case "re-entrant submit rejected" `Quick
            test_reentrant_submit_rejected;
          Alcotest.test_case "shutdown" `Quick test_shutdown;
        ] );
      ( "edges",
        [
          Alcotest.test_case "empty batch" `Quick test_empty_batch;
          Alcotest.test_case "fewer jobs than workers" `Quick
            test_fewer_jobs_than_workers;
          Alcotest.test_case "jobs clamped to 1" `Quick test_jobs_clamped;
          Alcotest.test_case "submission order / mapi" `Quick
            test_submission_order_and_mapi;
          Alcotest.test_case "map_reduce order" `Quick test_map_reduce_order;
        ] );
      ( "hygiene",
        [
          Alcotest.test_case "no global Random in lib/" `Quick
            test_no_global_random_in_lib;
          Alcotest.test_case "no session construction outside lib/engine"
            `Quick test_no_session_construction_outside_engine;
        ] );
    ]
