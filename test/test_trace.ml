(* The tracing layer: sink mechanics, JSONL serialisation, normalisation
   and diffing, golden traces for the diamond_plus fixture, trace
   well-formedness invariants, and the differential guarantee the
   Timeline module advertises — its aggregates reconstructed from the
   trace alone equal the Runner's own measurements, for every registered
   engine.

   Regenerate the golden traces after a deliberate protocol change with

     TRACE_GOLDEN=$PWD/test/golden dune exec test/test_trace.exe

   and say so in the commit. *)

let vtx = Test_support.vtx

(* --- fixtures ----------------------------------------------------------- *)

let golden_seed = 7

(* (filename stem, protocol) — stable stems, not display names *)
let golden_protocols =
  [
    ("bgp", Runner.Bgp);
    ("rbgp_norci", Runner.Rbgp_no_rci);
    ("rbgp", Runner.Rbgp);
    ("stamp", Runner.Stamp);
  ]

let golden_scenarios topo =
  let dest = vtx topo 3 and p = vtx topo 1 in
  [
    ("link_failure", [ Scenario.Fail_link (dest, p) ]);
    ( "fail_recover",
      [
        Scenario.Fail_link (dest, p);
        Scenario.At (40., Scenario.Recover_link (dest, p));
      ] );
  ]

let run_traced ?(seed = golden_seed) protocol topo events =
  let spec = { Scenario.dest = vtx topo 3; events; detect_delay = None } in
  let trace = Trace.memory () in
  let r = Runner.run ~seed ~validate:`Off ~trace protocol topo spec in
  (r, Trace.events trace)

(* --- sink mechanics ----------------------------------------------------- *)

let ev ?(vtime = 1.) ?(engine = "T") ?(loc = Trace.Net) kind sink =
  Trace.emit sink ~vtime ~engine ~loc kind

let test_null_sink () =
  Alcotest.(check bool) "disabled" false (Trace.enabled Trace.null);
  Alcotest.(check bool) "not readable" false (Trace.readable Trace.null);
  ev (Trace.Phase "x") Trace.null;
  Alcotest.(check int) "emit is a no-op" 0 (Trace.recorded Trace.null);
  Alcotest.(check (list reject)) "no events" [] (Trace.events Trace.null)

let test_memory_sink () =
  let s = Trace.memory () in
  Alcotest.(check bool) "enabled" true (Trace.enabled s);
  Alcotest.(check bool) "readable" true (Trace.readable s);
  ev ~vtime:0. (Trace.Phase "start") s;
  ev ~vtime:1. Trace.Deliver s;
  ev ~vtime:2. (Trace.Phase "final") s;
  let events = Trace.events s in
  Alcotest.(check int) "three events" 3 (List.length events);
  Alcotest.(check (list int)) "sequence numbers in emission order" [ 0; 1; 2 ]
    (List.map (fun e -> e.Trace.seq) events);
  Alcotest.(check int) "recorded" 3 (Trace.recorded s);
  Alcotest.(check int) "nothing dropped" 0 (Trace.dropped s);
  Trace.clear s;
  Alcotest.(check int) "clear resets events" 0 (List.length (Trace.events s));
  Alcotest.(check int) "clear resets counters" 0 (Trace.recorded s);
  ev (Trace.Phase "again") s;
  Alcotest.(check int) "sequence restarts after clear" 0
    (List.hd (Trace.events s)).Trace.seq

let test_ring_sink () =
  let s = Trace.memory ~capacity:3 () in
  for i = 0 to 7 do
    ev ~vtime:(float_of_int i) Trace.Deliver s
  done;
  Alcotest.(check int) "all emissions counted" 8 (Trace.recorded s);
  Alcotest.(check int) "overwritten ones counted" 5 (Trace.dropped s);
  Alcotest.(check (list (float 0.))) "ring keeps the newest" [ 5.; 6.; 7. ]
    (List.map (fun e -> e.Trace.vtime) (Trace.events s));
  Alcotest.check_raises "non-positive capacity"
    (Invalid_argument "Trace.memory: capacity must be positive") (fun () ->
      ignore (Trace.memory ~capacity:0 ()))

let test_stream_sink () =
  let path = Filename.temp_file "trace_stream" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      let s = Trace.stream oc in
      Alcotest.(check bool) "enabled" true (Trace.enabled s);
      Alcotest.(check bool) "not readable" false (Trace.readable s);
      ev ~vtime:0.5 ~loc:(Trace.Node 42) (Trace.Phase "start") s;
      ev ~vtime:1.5 ~loc:(Trace.Link (1, 2)) Trace.Deliver s;
      close_out oc;
      Alcotest.(check int) "recorded" 2 (Trace.recorded s);
      let ic = open_in path in
      let first = input_line ic in
      let second = input_line ic in
      let lines = [ first; second ] in
      close_in ic;
      let parsed = List.map Trace.of_json lines in
      Alcotest.(check (list (float 0.))) "streamed events parse back"
        [ 0.5; 1.5 ]
        (List.map (fun e -> e.Trace.vtime) parsed))

(* --- JSONL round-trip --------------------------------------------------- *)

(* one hand-built event per kind, with awkward strings and floats *)
let sample_events =
  let mk vtime seq engine loc kind = { Trace.vtime; seq; engine; loc; kind } in
  [
    mk 0. 0 "BGP" Trace.Net (Trace.Phase "start");
    mk 0.1 1 "Bgp_net"
      (Trace.Link (64500, 3356))
      (Trace.Enqueue { msg = Trace.Announce; deliver_at = 0.11750538328 });
    mk 0.2 2 "Bgp_net" (Trace.Link (3356, 64500)) Trace.Deliver;
    mk 0.3 3 "Rbgp_net" (Trace.Link (1, 2)) Trace.Drop;
    mk 0.4 4 "Stamp_net" (Trace.Node 7)
      (Trace.Mrai_defer { until = 30.000000001; proc = 1 });
    mk 31. 5 "Stamp_net" (Trace.Node 7) (Trace.Mrai_flush { proc = 1 });
    mk 31.5 6 "Stamp_net" (Trace.Node 7)
      (Trace.Decision { old_next = Some 3356; new_next = None; cause = "blue:route-loss" });
    mk 31.5 7 "Stamp_net" (Trace.Node 7)
      (Trace.Decision { old_next = None; new_next = Some 1; cause = "route-learned" });
    mk 31.6 8 "Stamp_net" (Trace.Node 7)
      (Trace.Recolor { color = "red"; et_ok = false });
    mk 32. 9 "Hybrid_net" (Trace.Link (10, 20)) Trace.Session_reset;
    mk 72. 10 "Hybrid_net" (Trace.Link (10, 20)) Trace.Session_up;
    mk 46.746656553780902 11 "BGP" (Trace.Link (150, 37))
      (Trace.Scenario_event "link 150-37 \"quoted\" \\ backslash");
    mk 46.75 12 "BGP" (Trace.Node 99)
      (Trace.Status { status = "blackholed"; changed = true });
    mk 94.5 13 "BGP" Trace.Net (Trace.Phase "final");
    mk 1e-9 14 "E" Trace.Net (Trace.Phase "tiny float");
    mk 86400. 15 "E" Trace.Net (Trace.Phase "big float");
  ]

let test_json_roundtrip_samples () =
  List.iter
    (fun e ->
      let j = Trace.to_json e in
      Alcotest.(check bool)
        (Printf.sprintf "round-trips: %s" j)
        true
        (Trace.equal_event e (Trace.of_json j));
      (* pp must render every kind without raising *)
      ignore (Format.asprintf "%a" Trace.pp e))
    sample_events

let test_json_roundtrip_real_run () =
  let topo = Test_support.diamond_plus () in
  List.iter
    (fun (_, protocol) ->
      let _, events =
        run_traced protocol topo
          (List.assoc "fail_recover" (golden_scenarios topo))
      in
      List.iter
        (fun e ->
          if not (Trace.equal_event e (Trace.of_json (Trace.to_json e))) then
            Alcotest.failf "event does not round-trip: %s" (Trace.to_json e))
        events)
    golden_protocols

let test_json_rejects_garbage () =
  List.iter
    (fun bad ->
      match Trace.of_json bad with
      | _ -> Alcotest.failf "accepted %S" bad
      | exception Invalid_argument _ -> ())
    [
      "";
      "{";
      "not json at all";
      "{\"t\":1}";
      "{\"t\":1,\"seq\":0,\"engine\":\"E\",\"loc\":\"net\",\"kind\":\"nope\"}";
      "{\"t\":1,\"seq\":0,\"engine\":\"E\",\"loc\":\"mars\",\"kind\":\"phase\",\"name\":\"x\"}";
      "[1,2,3]";
    ]

(* --- normalisation and diff --------------------------------------------- *)

let test_normalize () =
  let mk seq vtime asn =
    {
      Trace.vtime;
      seq;
      engine = "E";
      loc = Trace.Node asn;
      kind = Trace.Deliver;
    }
  in
  (* same vtime, emission order 5-then-3: normalisation sorts the tie by
     serialised form and zeroes seq *)
  let a = [ mk 0 1. 5; mk 1 1. 3; mk 2 2. 9 ] in
  let b = [ mk 0 1. 3; mk 1 1. 5; mk 2 2. 9 ] in
  let na = Trace.normalize a and nb = Trace.normalize b in
  Alcotest.(check bool) "tie order is canonical" true
    (List.for_all2 Trace.equal_event na nb);
  Alcotest.(check (list int)) "seq zeroed" [ 0; 0; 0 ]
    (List.map (fun e -> e.Trace.seq) na);
  Alcotest.(check bool) "idempotent" true
    (List.for_all2 Trace.equal_event na (Trace.normalize na));
  Alcotest.(check (list int)) "cross-time order untouched" [ 1; 1; 2 ]
    (List.map (fun e -> int_of_float e.Trace.vtime) na)

let test_diff () =
  let mk vtime asn =
    {
      Trace.vtime;
      seq = 0;
      engine = "E";
      loc = Trace.Node asn;
      kind = Trace.Deliver;
    }
  in
  let a = [ mk 1. 1; mk 2. 2; mk 3. 3 ] in
  Alcotest.(check int) "identical traces: no diff" 0
    (List.length (Trace.diff a a));
  let b = [ mk 1. 1; mk 2. 99; mk 3. 3 ] in
  (match Trace.diff a b with
  | [ (1, Some l, Some r) ] ->
    Alcotest.(check bool) "left is the original" true
      (Trace.equal_event l (mk 2. 2));
    Alcotest.(check bool) "right is the mutation" true
      (Trace.equal_event r (mk 2. 99))
  | ds -> Alcotest.failf "expected one diff at index 1, got %d" (List.length ds));
  match Trace.diff a [ mk 1. 1 ] with
  | [ (1, Some _, None); (2, Some _, None) ] -> ()
  | ds ->
    Alcotest.failf "expected two one-sided diffs, got %d" (List.length ds)

(* --- null-sink bit-identity --------------------------------------------- *)

(* the whole result record minus the timeline, which only a readable sink
   produces by design *)
let strip (r : Runner.result) = { r with Runner.timeline = None }

let test_null_sink_bit_identity () =
  let topo = Test_support.diamond_plus () in
  let scenarios = golden_scenarios topo in
  List.iter
    (fun (engine_name, engine) ->
      List.iter
        (fun (scenario_name, events) ->
          let label = engine_name ^ "/" ^ scenario_name in
          let spec =
            { Scenario.dest = vtx topo 3; events; detect_delay = None }
          in
          let run ?trace () =
            Runner.run_engine ~seed:golden_seed ~validate:`Off ?trace engine
              topo spec
          in
          let untraced = run () in
          let nulled = run ~trace:Trace.null () in
          let memory = run ~trace:(Trace.memory ()) () in
          Alcotest.(check bool) (label ^ ": null sink bit-identical") true
            (strip untraced = strip nulled);
          Alcotest.(check bool) (label ^ ": memory sink bit-identical") true
            (strip untraced = strip memory);
          Alcotest.(check bool) (label ^ ": untraced runs carry no timeline")
            true
            (untraced.Runner.timeline = None && nulled.Runner.timeline = None);
          Alcotest.(check bool) (label ^ ": memory runs carry a timeline") true
            (memory.Runner.timeline <> None))
        scenarios)
    (Engine.Registry.all ())

(* --- well-formedness invariants ----------------------------------------- *)

(* Check every structural invariant of one run's trace; returns unit,
   failing the surrounding alcotest/qcheck test on violation. *)
let check_well_formed ~label (r : Runner.result) events =
  (* vtimes never go backwards: emissions happen at Sim.now *)
  ignore
    (List.fold_left
       (fun prev e ->
         if e.Trace.vtime < prev then
           Alcotest.failf "%s: vtime went backwards (%g after %g)" label
             e.Trace.vtime prev;
         e.Trace.vtime)
       neg_infinity events);
  (* sequence numbers are the emission index *)
  List.iteri
    (fun i e ->
      if e.Trace.seq <> i then
        Alcotest.failf "%s: seq %d at position %d" label e.Trace.seq i)
    events;
  (* per directed link, deliveries/drops happen FIFO at the instants the
     matching enqueues promised *)
  let per_link = Hashtbl.create 64 in
  let push key v =
    let q =
      match Hashtbl.find_opt per_link key with
      | Some q -> q
      | None ->
        let q = Queue.create () in
        Hashtbl.replace per_link key q;
        q
    in
    Queue.push v q
  in
  let in_flight = ref 0 in
  List.iter
    (fun e ->
      match (e.Trace.loc, e.Trace.kind) with
      | Trace.Link (u, v), Trace.Enqueue { deliver_at; _ } ->
        incr in_flight;
        push (u, v) deliver_at
      | Trace.Link (u, v), (Trace.Deliver | Trace.Drop) -> begin
        decr in_flight;
        match Hashtbl.find_opt per_link (u, v) with
        | None ->
          Alcotest.failf "%s: delivery on %d->%d without any enqueue" label u v
        | Some q ->
          if Queue.is_empty q then
            Alcotest.failf "%s: more deliveries than enqueues on %d->%d" label
              u v
          else
            let promised = Queue.pop q in
            if not (Float.equal promised e.Trace.vtime) then
              Alcotest.failf
                "%s: delivery on %d->%d at %.17g, enqueue promised %.17g"
                label u v e.Trace.vtime promised
      end
      | _ -> ())
    events;
  (* a converged run leaves nothing in flight *)
  if Sim.equal_verdict r.Runner.verdict Sim.Converged && !in_flight <> 0 then
    Alcotest.failf "%s: %d messages still in flight at convergence" label
      !in_flight;
  (* counters are exactly the trace's event counts *)
  let count f = List.length (List.filter f events) in
  let c = r.Runner.counters in
  let pairs =
    [
      ( "announcements",
        c.Counters.announcements,
        count (fun e ->
            match e.Trace.kind with
            | Trace.Enqueue { msg = Trace.Announce; _ } -> true
            | _ -> false) );
      ( "withdrawals",
        c.Counters.withdrawals,
        count (fun e ->
            match e.Trace.kind with
            | Trace.Enqueue { msg = Trace.Withdraw; _ } -> true
            | _ -> false) );
      ( "mrai_deferrals",
        c.Counters.mrai_deferrals,
        count (fun e ->
            match e.Trace.kind with Trace.Mrai_defer _ -> true | _ -> false)
      );
      ( "lost_to_resets",
        c.Counters.lost_to_resets,
        count (fun e -> e.Trace.kind = Trace.Drop) );
    ]
  in
  List.iter
    (fun (what, counter, traced) ->
      if counter <> traced then
        Alcotest.failf "%s: %s counter %d but %d traced events" label what
          counter traced)
    pairs

let test_well_formed_diamond () =
  let topo = Test_support.diamond_plus () in
  List.iter
    (fun (stem, protocol) ->
      List.iter
        (fun (scenario_name, events) ->
          let r, trace_events = run_traced protocol topo events in
          check_well_formed
            ~label:(stem ^ "/" ^ scenario_name)
            r trace_events)
        (golden_scenarios topo))
    golden_protocols

(* --- timeline = runner, differential ------------------------------------ *)

let check_timeline_matches ~label (r : Runner.result) =
  match (r.Runner.verdict, r.Runner.timeline) with
  | Sim.Converged, Some tl ->
    let check_int what a b =
      if a <> b then Alcotest.failf "%s: %s: timeline %d, runner %d" label what a b
    in
    let check_float what a b =
      if not (Float.equal a b) then
        Alcotest.failf "%s: %s: timeline %.17g, runner %.17g" label what a b
    in
    check_int "transient_count" tl.Timeline.transient_count
      r.Runner.transient_count;
    check_int "broken_after" tl.Timeline.broken_after r.Runner.broken_after;
    check_float "convergence_delay" tl.Timeline.convergence_delay
      r.Runner.convergence_delay;
    check_float "recovery_delay" tl.Timeline.recovery_delay
      r.Runner.recovery_delay;
    let c = r.Runner.counters in
    check_int "announcements" tl.Timeline.enqueued_announcements
      c.Counters.announcements;
    check_int "withdrawals" tl.Timeline.enqueued_withdrawals
      c.Counters.withdrawals;
    check_int "mrai_deferrals" tl.Timeline.mrai_deferrals
      c.Counters.mrai_deferrals;
    check_int "drops" tl.Timeline.drops c.Counters.lost_to_resets;
    (* windows are consistent among themselves *)
    List.iter
      (fun (w : Timeline.window) ->
        if w.Timeline.until_t < w.Timeline.from_t then
          Alcotest.failf "%s: window for AS %d ends before it starts" label
            w.Timeline.asn)
      tl.Timeline.windows;
    if
      not
        (List.for_all
           (fun (w : Timeline.window) -> w.Timeline.status = "looped")
           tl.Timeline.loop_windows)
    then Alcotest.failf "%s: loop_windows contains a non-loop" label
  | _ -> () (* budget-killed runs carry partial aggregates; out of scope *)

let test_differential_diamond () =
  let topo = Test_support.diamond_plus () in
  List.iter
    (fun (engine_name, engine) ->
      List.iter
        (fun (scenario_name, events) ->
          let spec =
            { Scenario.dest = vtx topo 3; events; detect_delay = None }
          in
          let r =
            Runner.run_engine ~seed:golden_seed ~validate:`Off
              ~trace:(Trace.memory ()) engine topo spec
          in
          Alcotest.(check string)
            (engine_name ^ "/" ^ scenario_name ^ " converged")
            "converged"
            (Sim.verdict_name r.Runner.verdict);
          check_timeline_matches ~label:(engine_name ^ "/" ^ scenario_name) r)
        (golden_scenarios topo))
    (Engine.Registry.all ())

(* Registry-driven differential property over generated topologies: for
   every registered engine on a random single-link instance, the trace
   must be well-formed and the reconstructed timeline must equal the
   Runner's aggregates. *)
let differential_prop (params : Topo_gen.params) =
  let topo = Topo_gen.generate params in
  let st = Random.State.make [| params.Topo_gen.seed |] in
  let spec = Scenario.single_link st topo in
  List.iter
    (fun (engine_name, engine) ->
      let sink = Trace.memory () in
      let r =
        Runner.run_engine ~seed:params.Topo_gen.seed ~validate:`Off ~trace:sink
          engine topo spec
      in
      check_well_formed ~label:engine_name r (Trace.events sink);
      check_timeline_matches ~label:engine_name r)
    (Engine.Registry.all ());
  true

let test_differential_generated =
  Test_support.qtest ~count:15 "timeline = runner on generated topologies"
    Test_support.gen_params Test_support.print_params differential_prop

(* --- timeline semantics on a known instance ------------------------------ *)

let test_timeline_shape () =
  let topo = Test_support.diamond_plus () in
  let r, events =
    run_traced Runner.Bgp topo
      (List.assoc "link_failure" (golden_scenarios topo))
  in
  let tl = Option.get r.Runner.timeline in
  Alcotest.(check string) "engine id" "BGP" tl.Timeline.engine;
  Alcotest.(check bool) "event time after initial convergence" true
    (tl.Timeline.event_time > 0.);
  Alcotest.(check bool) "converged after the event" true
    (tl.Timeline.converged_at >= tl.Timeline.event_time);
  Alcotest.(check int) "no AS outside a window before the event" 0
    (Timeline.outage_at tl (tl.Timeline.event_time -. 1e-9));
  Alcotest.(check (float 1e-9)) "dropped AS-seconds = sum of windows"
    (List.fold_left
       (fun acc (w : Timeline.window) ->
         acc +. (w.Timeline.until_t -. w.Timeline.from_t))
       0. tl.Timeline.windows)
    tl.Timeline.dropped_as_seconds;
  (* reconstruction is a pure function of the event list *)
  let tl' = Timeline.of_events events in
  Alcotest.(check bool) "of_events is deterministic" true (tl = tl');
  (* to_json / pp do not raise and carry the headline aggregates *)
  let j = Timeline.to_json tl in
  Alcotest.(check bool) "json mentions transient_count" true
    (Astring.String.is_infix ~affix:"\"transient_count\"" j);
  ignore (Format.asprintf "%a" Timeline.pp tl)

(* --- golden traces ------------------------------------------------------- *)

let golden_dir () =
  List.find_opt Sys.file_exists [ "golden"; "test/golden"; "../test/golden" ]

let golden_name stem scenario = Printf.sprintf "%s_%s.jsonl" stem scenario

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let regenerate dir =
  let topo = Test_support.diamond_plus () in
  List.iter
    (fun (stem, protocol) ->
      List.iter
        (fun (scenario_name, events) ->
          let _, trace_events = run_traced protocol topo events in
          let oc =
            open_out (Filename.concat dir (golden_name stem scenario_name))
          in
          Fun.protect
            ~finally:(fun () -> close_out oc)
            (fun () ->
              List.iter
                (fun e ->
                  output_string oc (Trace.to_json e);
                  output_char oc '\n')
                (Trace.normalize trace_events)))
        (golden_scenarios topo))
    golden_protocols

let test_golden_traces () =
  match Sys.getenv_opt "TRACE_GOLDEN" with
  | Some dir ->
    regenerate dir;
    Format.eprintf "regenerated golden traces under %s@." dir
  | None ->
    let dir =
      match golden_dir () with
      | Some d -> d
      | None ->
        Alcotest.fail
          "test/golden not found (missing source_tree dep in test/dune?)"
    in
    let topo = Test_support.diamond_plus () in
    List.iter
      (fun (stem, protocol) ->
        List.iter
          (fun (scenario_name, events) ->
            let name = golden_name stem scenario_name in
            let _, trace_events = run_traced protocol topo events in
            let got = Trace.normalize trace_events in
            let want =
              List.map Trace.of_json (read_lines (Filename.concat dir name))
            in
            match Trace.diff want got with
            | [] -> ()
            | (i, l, r) :: _ as ds ->
              let side = function
                | None -> "(absent)"
                | Some e -> Trace.to_json e
              in
              Alcotest.failf
                "%s: %d differences vs golden; first at #%d:\n  golden: %s\n\
                \  got:    %s\n\
                 (regenerate with TRACE_GOLDEN=$PWD/test/golden after a \
                 deliberate change)"
                name (List.length ds) i (side l) (side r))
          (golden_scenarios topo))
      golden_protocols

let () =
  Alcotest.run "trace"
    [
      ( "sinks",
        [
          Alcotest.test_case "null" `Quick test_null_sink;
          Alcotest.test_case "memory" `Quick test_memory_sink;
          Alcotest.test_case "bounded ring" `Quick test_ring_sink;
          Alcotest.test_case "stream" `Quick test_stream_sink;
        ] );
      ( "jsonl",
        [
          Alcotest.test_case "round-trip, every kind" `Quick
            test_json_roundtrip_samples;
          Alcotest.test_case "round-trip, real runs" `Quick
            test_json_roundtrip_real_run;
          Alcotest.test_case "garbage rejected" `Quick test_json_rejects_garbage;
          Alcotest.test_case "normalize" `Quick test_normalize;
          Alcotest.test_case "diff" `Quick test_diff;
        ] );
      ( "zero-cost",
        [
          Alcotest.test_case "null sink bit-identity, all engines" `Quick
            test_null_sink_bit_identity;
        ] );
      ( "well-formed",
        [
          Alcotest.test_case "diamond_plus, all protocols" `Quick
            test_well_formed_diamond;
        ] );
      ( "differential",
        [
          Alcotest.test_case "timeline = runner on diamond_plus" `Quick
            test_differential_diamond;
          test_differential_generated;
          Alcotest.test_case "timeline shape" `Quick test_timeline_shape;
        ] );
      ("golden", [ Alcotest.test_case "diamond_plus traces" `Quick test_golden_traces ]);
    ]
