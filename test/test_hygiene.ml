(* Source-hygiene lint: a small rule table grepped over the repository
   sources, so conventions the type checker cannot see fail the build
   instead of rotting silently. [test/dune] declares (source_tree ../lib),
   (source_tree ../bin) and (source_tree ../bench) so the sources are
   present in the build directory under dune runtest.

   Moved here from test_parallel.ml and generalised: each rule names the
   forbidden substrings, the directories it scans, and an allowlist of
   path fragments where the pattern is legitimate. *)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let rec source_files acc dir =
  Array.fold_left
    (fun acc entry ->
      if entry = "" || entry.[0] = '.' then acc
      else
        let path = Filename.concat dir entry in
        if Sys.is_directory path then source_files acc path
        else if
          Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli"
        then path :: acc
        else acc)
    acc (Sys.readdir dir)

(* "../lib" under dune runtest (cwd = _build/default/test); "lib" when the
   executable is run from the workspace root via dune exec *)
let resolve dir =
  List.find_opt Sys.file_exists
    [ "../" ^ dir; dir; "_build/default/" ^ dir ]

type rule = {
  name : string;
  patterns : string list;  (** forbidden substrings *)
  dirs : string list;  (** directories to scan (repo-relative) *)
  allowed : string -> bool;  (** paths where the patterns are fine *)
  why : string;  (** shown with the offending paths *)
}

let contains_fragment fragments path =
  List.exists (fun f -> Astring.String.is_infix ~affix:f path) fragments

let rules =
  [
    (* The determinism contract of Parallel/Experiment rests on every
       piece of worker-reachable code deriving its randomness from an
       explicit Random.State (Sim.rng or a seeded state). The global
       Random module is domain-local in OCaml 5, so a stray Random.int
       would not crash — it would silently produce worker-count-dependent
       numbers. *)
    {
      name = "no global Random in lib/";
      patterns =
        [
          "Random.int";
          "Random.float";
          "Random.bool";
          "Random.bits";
          "Random.full_int";
          "Random.self_init";
        ];
      dirs = [ "lib" ];
      allowed = (fun _ -> false);
      why = "use an explicit Random.State (Sim.rng or a seeded state)";
    };
    (* The engine substrate owns every session channel and MRAI timer: the
       RNG draw-order contract (one float per Mrai.create, one per
       Channel.send) is pinned by the golden Runner numbers, and it only
       holds if no protocol builds channels or MRAI timers behind
       Session_core's back. *)
    {
      name = "no session construction outside lib/engine";
      patterns = [ "Channel.create"; "Mrai.create" ];
      dirs = [ "lib" ];
      allowed =
        (* the substrate itself, plus the simkernel modules that define
           the primitives (their .mli docs may name the qualified calls) *)
        contains_fragment [ "engine"; "sim" ];
      why = "route session channels and MRAI timers through Session_core";
    };
    (* Libraries report through Logs / Fmt / returned values; writing to
       stdout from lib/ corrupts machine-readable output (stamp_check
       --json, the bench JSON) and bypasses log levels. Executables own
       their stdout. *)
    {
      name = "no stdout printing in lib/";
      (* bare print_string is excluded from the pattern list: it is a
         substring of Format.pp_print_string, which is fine everywhere *)
      patterns = [ "Printf.printf"; "print_endline"; "print_newline" ];
      dirs = [ "lib" ];
      allowed = (fun _ -> false);
      why = "libraries log via Logs or return data; only bin//bench/ print";
    };
    (* Obj.magic defeats the type system wholesale; nothing in a
       simulator of this size justifies it. *)
    {
      name = "no Obj.magic anywhere";
      patterns = [ "Obj.magic" ];
      dirs = [ "lib"; "bin"; "bench" ];
      allowed = (fun _ -> false);
      why = "find a typed encoding";
    };
  ]

let run_rule rule () =
  let files =
    List.concat_map
      (fun dir ->
        match resolve dir with
        | Some d -> source_files [] d
        | None ->
          Alcotest.failf
            "%s sources not found (missing source_tree dep in test/dune?)" dir)
      rule.dirs
  in
  Alcotest.(check bool) "found sources to scan" true (List.length files > 5);
  let offenders =
    List.concat_map
      (fun path ->
        if rule.allowed path then []
        else
          let content = read_file path in
          List.filter_map
            (fun pattern ->
              if Astring.String.is_infix ~affix:pattern content then
                Some (path ^ ": " ^ pattern)
              else None)
            rule.patterns)
      files
  in
  if offenders <> [] then
    Alcotest.failf "%s — %s:\n%s" rule.name rule.why
      (String.concat "\n" offenders)

let () =
  Alcotest.run "hygiene"
    [
      ( "source lint",
        List.map
          (fun rule -> Alcotest.test_case rule.name `Quick (run_rule rule))
          rules );
    ]
