(* Tests for policy-change events (the paper's third routing-event class):
   export denial triggers the same withdrawal convergence as a link
   failure, and re-allowing is a harmless route addition. *)

let diamond = Test_support.diamond
let vtx = Test_support.vtx

let tables_equal (a : Static_route.table) (b : Static_route.table) =
  Array.length a = Array.length b
  && Array.for_all
       (fun i ->
         match (a.(i), b.(i)) with
         | None, None -> true
         | Some x, Some y -> x.Static_route.as_path = y.Static_route.as_path
         | (Some _ | None), _ -> false)
       (Array.init (Array.length a) Fun.id)

(* For a single destination, "dest stops exporting to provider p" and
   "link dest-p fails" must converge to identical routing tables: the link
   carried only that announcement. *)
let test_deny_equals_link_failure_bgp () =
  let t = diamond () in
  let dest = vtx t 3 in
  let run f =
    let sim = Sim.create ~seed:4 () in
    let net = Bgp_net.create sim t ~dest () in
    Bgp_net.start net;
    Sim.run sim;
    f net;
    Sim.run sim;
    Bgp_net.to_table net
  in
  let denied = run (fun net -> Bgp_net.deny_export net dest (vtx t 1)) in
  let failed = run (fun net -> Bgp_net.fail_link net dest (vtx t 1)) in
  Alcotest.(check bool) "same converged tables" true (tables_equal denied failed)

let prop_deny_equals_link_failure =
  Test_support.qtest ~count:10
    "export denial at the origin converges like the link failure"
    Test_support.gen_params Test_support.print_params (fun p ->
      let t = Topo_gen.generate p in
      QCheck2.assume (Array.length (Topology.multi_homed t) > 0);
      let st = Random.State.make [| p.Topo_gen.seed + 51 |] in
      let spec = Scenario.policy_withdraw st t in
      let dest, prov =
        match spec.Scenario.events with
        | [ Scenario.Deny_export (u, v) ] -> (u, v)
        | _ -> assert false
      in
      let run f =
        let sim = Sim.create ~seed:p.Topo_gen.seed () in
        let net = Bgp_net.create sim t ~dest () in
        Bgp_net.start net;
        Sim.run sim;
        f net;
        Sim.run sim;
        Bgp_net.to_table net
      in
      tables_equal
        (run (fun net -> Bgp_net.deny_export net dest prov))
        (run (fun net -> Bgp_net.fail_link net dest prov)))

let test_allow_restores () =
  let t = diamond () in
  let dest = vtx t 3 in
  let sim = Sim.create ~seed:4 () in
  let net = Bgp_net.create sim t ~dest () in
  Bgp_net.start net;
  Sim.run sim;
  let original = Bgp_net.to_table net in
  Bgp_net.deny_export net dest (vtx t 1);
  Sim.run sim;
  Bgp_net.allow_export net dest (vtx t 1);
  Sim.run sim;
  Alcotest.(check bool) "restored" true (tables_equal original (Bgp_net.to_table net))

let test_stamp_survives_policy_withdraw () =
  (* dest withdraws its prefix from one provider by policy: one colour's
     tree loses its anchor; the other colour keeps delivering *)
  let t = diamond () in
  let dest = vtx t 3 in
  let sim = Sim.create ~seed:7 () in
  let coloring = Coloring.create Coloring.Random_choice ~seed:7 t ~dest in
  let net = Stamp_net.create sim t ~dest ~coloring () in
  Stamp_net.start net;
  Sim.run sim;
  Stamp_net.deny_export net dest (vtx t 1);
  Array.iteri
    (fun v s ->
      Alcotest.(check bool)
        (Printf.sprintf "AS %d delivered at event instant" (Topology.asn t v))
        true
        (Fwd_walk.equal_status s Fwd_walk.Delivered))
    (Stamp_net.walk_all net);
  Sim.run sim;
  Array.iter
    (fun s ->
      Alcotest.(check bool) "delivered after reconvergence" true
        (Fwd_walk.equal_status s Fwd_walk.Delivered))
    (Stamp_net.walk_all net)

let test_rbgp_policy_withdraw_completes () =
  let t = Topo_gen.generate (Topo_gen.default_params ~n:100 ()) in
  let st = Random.State.make [| 3 |] in
  let spec = Scenario.policy_withdraw st t in
  List.iter
    (fun proto ->
      let r = Runner.run proto t spec in
      Alcotest.(check bool)
        (Printf.sprintf "%s has no permanent loss" (Runner.protocol_name proto))
        true
        (r.Runner.broken_after = 0))
    Runner.all_protocols

let test_scenario_shape () =
  let t = Topo_gen.generate (Topo_gen.default_params ~n:100 ()) in
  let st = Random.State.make [| 9 |] in
  for _ = 1 to 20 do
    match Scenario.policy_withdraw st t with
    | { Scenario.dest; events = [ Scenario.Deny_export (u, p) ]; _ } ->
      Alcotest.(check int) "origin denies" dest u;
      Alcotest.(check bool) "towards a provider" true
        (Topology.rel t u p = Some Relationship.Provider)
    | _ -> Alcotest.fail "unexpected shape"
  done

let test_deny_invalid_args () =
  let t = diamond () in
  let sim = Sim.create () in
  let net = Bgp_net.create sim t ~dest:(vtx t 3) () in
  Alcotest.check_raises "not adjacent"
    (Invalid_argument "Bgp_net.deny_export: vertices not adjacent") (fun () ->
      Bgp_net.deny_export net (vtx t 3) (vtx t 10))

let () =
  Alcotest.run "policy"
    [
      ( "deny-export",
        [
          Alcotest.test_case "equals link failure (diamond)" `Quick
            test_deny_equals_link_failure_bgp;
          prop_deny_equals_link_failure;
          Alcotest.test_case "allow restores" `Quick test_allow_restores;
          Alcotest.test_case "STAMP survives" `Quick
            test_stamp_survives_policy_withdraw;
          Alcotest.test_case "all protocols complete" `Quick
            test_rbgp_policy_withdraw_completes;
          Alcotest.test_case "scenario shape" `Quick test_scenario_shape;
          Alcotest.test_case "invalid args" `Quick test_deny_invalid_args;
        ] );
    ]
