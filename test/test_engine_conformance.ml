(* Conformance suite for the engine substrate: every engine in
   Engine.Registry is driven through the same lifecycle matrix — origin
   announce, link fail -> recover, node fail -> recover, export
   deny -> allow, and slow failure detection — and must quiesce with a
   drained event queue, loop-free forwarding restored for every source,
   and counters consistent with its message totals. A stub engine that
   rejects whole event classes pins the generic Runner's error path. *)

let vtx = Test_support.vtx

(* Re-implements Runner's event application on the packed instance so the
   matrix drives engines directly (no Transient monitor in the way). *)
let rec inject inst sim = function
  | Scenario.Fail_link (u, v) -> Engine.fail_link inst u v
  | Scenario.Fail_node v -> Engine.fail_node inst v
  | Scenario.Deny_export (u, v) -> Engine.deny_export inst u v
  | Scenario.Recover_link (u, v) -> Engine.recover_link inst u v
  | Scenario.Recover_node v -> Engine.recover_node inst v
  | Scenario.Allow_export (u, v) -> Engine.allow_export inst u v
  | Scenario.At (dt, e) ->
    Sim.schedule sim ~delay:dt (fun _ -> inject inst sim e)

(* Every scenario ends with the disturbance undone, so the converged state
   must deliver from every source again. *)
let matrix t ~dest =
  let p = vtx t 1 in
  [
    ("origin announce", 0., []);
    ( "link fail/recover",
      0.,
      [
        Scenario.Fail_link (dest, p);
        Scenario.At (40., Scenario.Recover_link (dest, p));
      ] );
    ( "node fail/recover",
      0.,
      [
        Scenario.Fail_node p;
        Scenario.At (40., Scenario.Recover_node p);
      ] );
    ( "export deny/allow",
      0.,
      [
        Scenario.Deny_export (dest, p);
        Scenario.At (40., Scenario.Allow_export (dest, p));
      ] );
    ( "link fail/recover, slow detection",
      2.,
      [
        Scenario.Fail_link (dest, p);
        Scenario.At (40., Scenario.Recover_link (dest, p));
      ] );
  ]

let max_events = 1_000_000

let check_quiesced label sim =
  Alcotest.(check string)
    (label ^ ": quiesced") "converged"
    (Sim.verdict_name (Sim.run_guarded ~max_events sim));
  Alcotest.(check int) (label ^ ": event queue drained") 0 (Sim.pending sim)

let check_counters label inst =
  let c = Engine.counters inst in
  Alcotest.(check bool) (label ^ ": counters non-negative") true
    (Counters.non_negative c);
  Alcotest.(check int)
    (label ^ ": announcements + withdrawals = message count")
    (Engine.message_count inst) (Counters.messages c)

let test_lifecycle_matrix () =
  let t = Test_support.diamond_plus () in
  let dest = vtx t 3 in
  List.iter
    (fun (engine_name, engine) ->
      List.iter
        (fun (scenario_label, detect_delay, events) ->
          let label = engine_name ^ "/" ^ scenario_label in
          let sim = Sim.create ~seed:7 () in
          let config = { Engine.default_config with seed = 7; detect_delay } in
          let inst = Engine.create engine sim t ~dest config in
          Alcotest.(check string) (label ^ ": name matches registry key")
            engine_name (Engine.name inst);
          Engine.start inst;
          check_quiesced (label ^ " (initial)") sim;
          let initial = Counters.snapshot (Engine.counters inst) in
          check_counters (label ^ " (initial)") inst;
          List.iter (inject inst sim) events;
          check_quiesced (label ^ " (after events)") sim;
          check_counters (label ^ " (after events)") inst;
          let final = Engine.counters inst in
          Alcotest.(check bool) (label ^ ": counters monotonic") true
            (final.Counters.announcements >= initial.Counters.announcements
            && final.Counters.withdrawals >= initial.Counters.withdrawals
            && final.Counters.mrai_deferrals >= initial.Counters.mrai_deferrals
            && final.Counters.lost_to_resets >= initial.Counters.lost_to_resets);
          let statuses = Engine.probe inst in
          Alcotest.(check int) (label ^ ": one status per AS")
            (Topology.num_vertices t) (Array.length statuses);
          Array.iteri
            (fun v s ->
              Alcotest.(check string)
                (Printf.sprintf "%s: AS %d delivered after full recovery"
                   label (Topology.asn t v))
                "delivered"
                (Format.asprintf "%a" Fwd_walk.pp_status s))
            statuses)
        (matrix t ~dest))
    (Engine.Registry.all ())

let test_registry_contents () =
  let names = Engine.Registry.names () in
  List.iter
    (fun expected ->
      Alcotest.(check bool) (expected ^ " registered") true
        (List.mem expected names);
      Alcotest.(check bool) (expected ^ " findable") true
        (Option.is_some (Engine.Registry.find expected)))
    [
      "BGP";
      "R-BGP without RCI";
      "R-BGP";
      "STAMP";
      "STAMP-BGP hybrid (full deployment)";
    ];
  (* the paper protocols resolve to the same engines Runner uses *)
  List.iter
    (fun protocol ->
      let (module E : Engine.S) = Runner.engine_of_protocol protocol in
      Alcotest.(check string) "protocol name = engine name"
        (Runner.protocol_name protocol) E.name)
    Runner.all_protocols;
  (* re-registration by the same name is ignored, not duplicated *)
  let before = List.length (Engine.Registry.names ()) in
  Engine.Registry.register Bgp_engine.engine;
  Alcotest.(check int) "re-registration is idempotent" before
    (List.length (Engine.Registry.names ()))

(* A restricted engine: link events only, everything else rejected via
   Engine.unsupported. The generic Runner must surface that as a clear
   Invalid_argument naming the engine and the event kind — the error path
   that replaced run_hybrid's hand-written pre-validation. *)
let stub_name = "stub (link events only)"

let stub : (module Engine.S) =
  (module struct
    type t = unit

    let name = stub_name
    let create _ _ ~dest:_ _ = ()
    let start () = ()
    let fail_link () _ _ = ()
    let recover_link () _ _ = ()
    let fail_node () _ = Engine.unsupported ~engine:stub_name "node failure"
    let recover_node () _ = Engine.unsupported ~engine:stub_name "node recovery"
    let deny_export () _ _ = Engine.unsupported ~engine:stub_name "export policy"
    let allow_export () _ _ = Engine.unsupported ~engine:stub_name "export policy"
    let probe () = [||]
    let message_count () = 0
    let last_change () = 0.
    let counters () = Counters.make ()
  end)

let test_unsupported_events_error () =
  let t = Test_support.diamond_plus () in
  let dest = vtx t 3 in
  let run events =
    ignore
      (Runner.run_engine ~seed:1 stub t
         { Scenario.dest; events; detect_delay = None })
  in
  List.iter
    (fun (label, events, what) ->
      Alcotest.check_raises label
        (Invalid_argument
           (Printf.sprintf "Runner: the %s engine does not support %s events"
              stub_name what))
        (fun () -> run events))
    [
      ("node failure", [ Scenario.Fail_node (vtx t 1) ], "node failure");
      ("node recovery", [ Scenario.Recover_node (vtx t 1) ], "node recovery");
      ("export deny", [ Scenario.Deny_export (dest, vtx t 1) ], "export policy");
      ( "export allow",
        [ Scenario.Allow_export (dest, vtx t 1) ],
        "export policy" );
    ];
  (* supported events pass through without tripping the guard *)
  let r =
    Runner.run_engine ~seed:1 stub t
      {
        Scenario.dest;
        events = [ Scenario.Fail_link (dest, vtx t 1) ];
        detect_delay = None;
      }
  in
  Alcotest.(check string) "link events accepted" "converged"
    (Sim.verdict_name r.Runner.verdict)

(* The spec-level detect_delay override reaches every engine: with a slow
   control plane, plain BGP's forwarding is broken at the failure instant
   while the probe's virtual clock has not advanced past the detection
   horizon. *)
let test_detect_delay_uniform () =
  let t = Test_support.diamond_plus () in
  let dest = vtx t 3 in
  List.iter
    (fun (engine_name, engine) ->
      let sim = Sim.create ~seed:7 () in
      let config = { Engine.default_config with seed = 7; detect_delay = 5. } in
      let inst = Engine.create engine sim t ~dest config in
      Engine.start inst;
      ignore (Sim.run_guarded ~max_events sim);
      Engine.fail_link inst dest (vtx t 1);
      ignore (Sim.run_guarded ~max_events sim);
      (* the delayed reaction was scheduled and ran; afterwards the engine
         must have re-quiesced with a sane state *)
      Alcotest.(check int) (engine_name ^ ": drained after delayed detection")
        0 (Sim.pending sim);
      check_counters (engine_name ^ " (delayed detection)") inst)
    (Engine.Registry.all ())

let () =
  Alcotest.run "engine_conformance"
    [
      ( "lifecycle",
        [
          Alcotest.test_case "matrix over all registered engines" `Quick
            test_lifecycle_matrix;
          Alcotest.test_case "detect_delay accepted uniformly" `Quick
            test_detect_delay_uniform;
        ] );
      ( "registry",
        [ Alcotest.test_case "contents and idempotence" `Quick
            test_registry_contents ] );
      ( "errors",
        [
          Alcotest.test_case "unsupported events -> clear Invalid_argument"
            `Quick test_unsupported_events_error;
        ] );
    ]
