(* Tests for the discrete-event simulation kernel. *)

(* --- Event_heap ------------------------------------------------------ *)

let test_heap_ordering () =
  let h = Event_heap.create () in
  Event_heap.push h ~time:3. "c";
  Event_heap.push h ~time:1. "a";
  Event_heap.push h ~time:2. "b";
  let pop () = Option.get (Event_heap.pop_min h) in
  Alcotest.(check (pair (float 0.) string)) "first" (1., "a") (pop ());
  Alcotest.(check (pair (float 0.) string)) "second" (2., "b") (pop ());
  Alcotest.(check (pair (float 0.) string)) "third" (3., "c") (pop ());
  Alcotest.(check bool) "empty" true (Event_heap.pop_min h = None)

let test_heap_fifo_ties () =
  let h = Event_heap.create () in
  for i = 0 to 9 do
    Event_heap.push h ~time:1. i
  done;
  for i = 0 to 9 do
    match Event_heap.pop_min h with
    | Some (_, x) -> Alcotest.(check int) "fifo" i x
    | None -> Alcotest.fail "heap empty"
  done

let test_heap_nan_rejected () =
  let h = Event_heap.create () in
  Alcotest.check_raises "nan" (Invalid_argument "Event_heap.push: NaN time")
    (fun () -> Event_heap.push h ~time:Float.nan ())

let test_heap_peek () =
  let h = Event_heap.create () in
  Alcotest.(check bool) "empty peek" true (Event_heap.peek_time h = None);
  Event_heap.push h ~time:5. ();
  Alcotest.(check bool) "peek" true (Event_heap.peek_time h = Some 5.);
  Alcotest.(check int) "size" 1 (Event_heap.size h)

let prop_heap_sorts =
  Test_support.qtest "heap pops in nondecreasing time order"
    QCheck2.Gen.(list_size (int_range 1 200) (float_range 0. 100.))
    QCheck2.Print.(list float)
    (fun times ->
      let h = Event_heap.create () in
      List.iter (fun t -> Event_heap.push h ~time:t ()) times;
      let rec drain last =
        match Event_heap.pop_min h with
        | None -> true
        | Some (t, ()) -> t >= last && drain t
      in
      drain neg_infinity)

(* --- Sim -------------------------------------------------------------- *)

let test_sim_schedule_order () =
  let sim = Sim.create () in
  let log = ref [] in
  Sim.schedule sim ~delay:2. (fun _ -> log := "b" :: !log);
  Sim.schedule sim ~delay:1. (fun s ->
      log := "a" :: !log;
      Sim.schedule s ~delay:0.5 (fun _ -> log := "a2" :: !log));
  Sim.run sim;
  Alcotest.(check (list string)) "order" [ "a"; "a2"; "b" ] (List.rev !log);
  Alcotest.(check (float 1e-9)) "clock" 2. (Sim.now sim);
  Alcotest.(check int) "events" 3 (Sim.events_processed sim)

let test_sim_until () =
  let sim = Sim.create () in
  let fired = ref 0 in
  for i = 1 to 10 do
    Sim.schedule sim ~delay:(float_of_int i) (fun _ -> incr fired)
  done;
  Sim.run ~until:5.5 sim;
  Alcotest.(check int) "fired" 5 !fired;
  Alcotest.(check int) "pending" 5 (Sim.pending sim);
  Sim.run sim;
  Alcotest.(check int) "all fired" 10 !fired

let test_sim_negative_delay () =
  let sim = Sim.create () in
  Alcotest.check_raises "negative"
    (Invalid_argument "Sim.schedule: negative or NaN delay") (fun () ->
      Sim.schedule sim ~delay:(-1.) (fun _ -> ()))

let test_sim_schedule_at_past () =
  let sim = Sim.create () in
  Sim.schedule sim ~delay:5. (fun s ->
      try
        Sim.schedule_at s ~time:1. (fun _ -> ());
        Alcotest.fail "expected failure"
      with Invalid_argument _ -> ());
  Sim.run sim

(* Regression: [run ~until] must not warp the clock past pending events
   when a [max_events] budget stops the run early. The old code set the
   clock to [until] unconditionally, so a subsequent [run] would have
   processed the remaining events "in the past". *)
let test_sim_no_clock_warp_on_budget () =
  let sim = Sim.create () in
  let times = ref [] in
  for i = 1 to 3 do
    Sim.schedule sim ~delay:(float_of_int i) (fun s ->
        times := Sim.now s :: !times)
  done;
  Sim.run ~until:10. ~max_events:1 sim;
  Alcotest.(check (float 1e-9)) "clock at last processed event" 1. (Sim.now sim);
  Alcotest.(check int) "two events still pending" 2 (Sim.pending sim);
  Sim.run sim;
  Alcotest.(check (list (float 1e-9))) "remaining events at their own times"
    [ 1.; 2.; 3. ] (List.rev !times);
  Alcotest.(check (float 1e-9)) "final clock" 3. (Sim.now sim)

let test_run_guarded_converged () =
  let sim = Sim.create () in
  let fired = ref 0 in
  for i = 1 to 5 do
    Sim.schedule sim ~delay:(float_of_int i) (fun _ -> incr fired)
  done;
  let v = Sim.run_guarded sim in
  Alcotest.(check string) "verdict" "converged" (Sim.verdict_name v);
  Alcotest.(check int) "all fired" 5 !fired;
  Alcotest.(check bool) "equal_verdict" true
    (Sim.equal_verdict v Sim.Converged)

let test_run_guarded_time_budget () =
  let sim = Sim.create () in
  let fired = ref 0 in
  for i = 1 to 10 do
    Sim.schedule sim ~delay:(float_of_int i) (fun _ -> incr fired)
  done;
  let v = Sim.run_guarded ~until:5.5 sim in
  Alcotest.(check string) "verdict" "time-budget-exhausted"
    (Sim.verdict_name v);
  Alcotest.(check int) "only due events fired" 5 !fired;
  Alcotest.(check int) "rest pending" 5 (Sim.pending sim);
  (* the clock stayed at the last processed event, not at [until] *)
  Alcotest.(check (float 1e-9)) "clock" 5. (Sim.now sim)

let test_run_guarded_event_budget () =
  (* a self-rescheduling tick never quiesces: without the event budget
     this run would never return *)
  let sim = Sim.create () in
  let rec tick s =
    Sim.schedule s ~delay:1. tick
  in
  Sim.schedule sim ~delay:1. tick;
  let v = Sim.run_guarded ~max_events:100 sim in
  Alcotest.(check string) "verdict" "event-budget-exhausted"
    (Sim.verdict_name v);
  Alcotest.(check int) "stopped at the budget" 100 (Sim.events_processed sim);
  Alcotest.(check int) "tick still pending" 1 (Sim.pending sim)

let test_sim_deterministic_rng () =
  let draw seed =
    let sim = Sim.create ~seed () in
    Random.State.float (Sim.rng sim) 1.
  in
  Alcotest.(check (float 0.)) "same seed" (draw 9) (draw 9);
  Alcotest.(check bool) "different seed" true (draw 9 <> draw 10)

(* The determinism contract in sim.mli rests on two kernel invariants:
   same-timestamp events fire in schedule order (FIFO ties, inherited
   from Event_heap but re-checked through the Sim API), and the
   processed/pending accounting stays exact under any interleaving of
   schedule, step and bounded run calls. *)

let prop_sim_fifo_same_time =
  Test_support.qtest "same-timestamp events fire in schedule order"
    QCheck2.Gen.(list_size (int_range 1 120) (int_range 0 3))
    QCheck2.Print.(list int)
    (fun buckets ->
      (* few distinct times over many events: ties are the common case *)
      let sim = Sim.create () in
      let log = ref [] in
      List.iteri
        (fun i b ->
          Sim.schedule sim
            ~delay:(float_of_int b /. 10.)
            (fun _ -> log := (b, i) :: !log))
        buckets;
      Sim.run sim;
      let fired = List.rev !log in
      let expected =
        (* stable sort by time keeps schedule order within each tie *)
        List.stable_sort
          (fun (b1, _) (b2, _) -> compare b1 b2)
          (List.mapi (fun i b -> (b, i)) buckets)
      in
      fired = expected)

type sim_op = Op_schedule of int | Op_step | Op_run_until of int

let print_sim_op = function
  | Op_schedule b -> Printf.sprintf "schedule(%d)" b
  | Op_step -> "step"
  | Op_run_until b -> Printf.sprintf "run_until(+%d)" b

let prop_sim_counters_consistent =
  Test_support.qtest
    "events_processed + pending = scheduled under any interleaving"
    QCheck2.Gen.(
      list_size (int_range 1 80)
        (oneof
           [
             map (fun b -> Op_schedule b) (int_range 0 20);
             return Op_step;
             map (fun b -> Op_run_until b) (int_range 0 10);
           ]))
    QCheck2.Print.(list print_sim_op)
    (fun ops ->
      let sim = Sim.create () in
      let scheduled = ref 0 in
      let ok = ref true in
      let last_now = ref (Sim.now sim) in
      let check () =
        ok :=
          !ok
          && Sim.events_processed sim + Sim.pending sim = !scheduled
          && Sim.now sim >= !last_now;
        last_now := Sim.now sim
      in
      List.iter
        (fun op ->
          (match op with
          | Op_schedule b ->
            (* schedule relative to now: never in the past *)
            Sim.schedule sim ~delay:(float_of_int b /. 7.) (fun _ -> ());
            incr scheduled
          | Op_step -> ignore (Sim.step sim)
          | Op_run_until b ->
            Sim.run ~until:(Sim.now sim +. (float_of_int b /. 3.)) sim);
          check ())
        ops;
      Sim.run sim;
      check ();
      !ok && Sim.pending sim = 0 && Sim.events_processed sim = !scheduled)

(* --- Channel ----------------------------------------------------------- *)

let test_channel_delay_bounds () =
  let sim = Sim.create ~seed:3 () in
  let received = ref [] in
  let ch = Channel.create sim ~deliver:(fun x -> received := (x, Sim.now sim) :: !received) in
  Channel.send ch 1;
  Sim.run sim;
  match !received with
  | [ (1, at) ] ->
    Alcotest.(check bool)
      (Printf.sprintf "delay %.4f in [0.010, 0.020]" at)
      true
      (at >= 0.010 && at <= 0.020)
  | _ -> Alcotest.fail "expected one message"

let test_channel_fifo () =
  (* send many messages back-to-back; each draws an independent delay but
     delivery order must match send order *)
  let sim = Sim.create ~seed:11 () in
  let received = ref [] in
  let ch = Channel.create sim ~deliver:(fun x -> received := x :: !received) in
  for i = 1 to 100 do
    Channel.send ch i
  done;
  Sim.run sim;
  Alcotest.(check (list int)) "fifo" (List.init 100 (fun i -> i + 1))
    (List.rev !received);
  Alcotest.(check int) "sent count" 100 (Channel.sent_count ch)

let test_channel_fifo_across_time () =
  let sim = Sim.create ~seed:4 () in
  let received = ref [] in
  let ch = Channel.create sim ~delay_lo:0.01 ~delay_hi:0.10
             ~deliver:(fun x -> received := x :: !received) in
  Channel.send ch "first";
  (* second message sent 1 ms later could draw a much smaller delay *)
  Sim.schedule sim ~delay:0.001 (fun _ -> Channel.send ch "second");
  Sim.run sim;
  Alcotest.(check (list string)) "order" [ "first"; "second" ] (List.rev !received)

let prop_channel_never_reorders =
  Test_support.qtest "channel preserves order for any send schedule"
    QCheck2.Gen.(
      tup2 small_nat (list_size (int_range 1 30) (float_range 0. 0.05)))
    QCheck2.Print.(tup2 int (list float))
    (fun (seed, gaps) ->
      let sim = Sim.create ~seed () in
      let received = ref [] in
      let ch = Channel.create sim ~deliver:(fun x -> received := x :: !received) in
      let t = ref 0. in
      List.iteri
        (fun i gap ->
          t := !t +. gap;
          Sim.schedule_at sim ~time:!t (fun _ -> Channel.send ch i))
        gaps;
      Sim.run sim;
      List.rev !received = List.init (List.length gaps) Fun.id)

let () =
  Alcotest.run "simkernel"
    [
      ( "event_heap",
        [
          Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "fifo ties" `Quick test_heap_fifo_ties;
          Alcotest.test_case "nan rejected" `Quick test_heap_nan_rejected;
          Alcotest.test_case "peek/size" `Quick test_heap_peek;
          prop_heap_sorts;
        ] );
      ( "sim",
        [
          Alcotest.test_case "schedule order" `Quick test_sim_schedule_order;
          Alcotest.test_case "run until" `Quick test_sim_until;
          Alcotest.test_case "negative delay" `Quick test_sim_negative_delay;
          Alcotest.test_case "schedule_at past" `Quick test_sim_schedule_at_past;
          Alcotest.test_case "deterministic rng" `Quick test_sim_deterministic_rng;
          Alcotest.test_case "no clock warp on budget" `Quick
            test_sim_no_clock_warp_on_budget;
          Alcotest.test_case "guarded: converged" `Quick
            test_run_guarded_converged;
          Alcotest.test_case "guarded: time budget" `Quick
            test_run_guarded_time_budget;
          Alcotest.test_case "guarded: event budget" `Quick
            test_run_guarded_event_budget;
          prop_sim_fifo_same_time;
          prop_sim_counters_consistent;
        ] );
      ( "channel",
        [
          Alcotest.test_case "delay bounds" `Quick test_channel_delay_bounds;
          Alcotest.test_case "fifo burst" `Quick test_channel_fifo;
          Alcotest.test_case "fifo across time" `Quick test_channel_fifo_across_time;
          prop_channel_never_reorders;
        ] );
    ]
