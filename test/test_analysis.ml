(* Tests for the analysis layer: the transient monitor, scenario
   generators, the runner and the figure-level experiments. *)

(* --- Transient monitor -------------------------------------------------- *)

(* Drive the monitor with a scripted probe: AS 1 is broken for the first
   two checkpoints then recovers; AS 2 is broken forever. *)
let test_transient_counting () =
  let sim = Sim.create () in
  (* schedule a few spaced events so the monitor takes checkpoints *)
  for i = 1 to 5 do
    Sim.schedule sim ~delay:(0.03 *. float_of_int i) (fun _ -> ())
  done;
  let calls = ref 0 in
  let probe () =
    incr calls;
    let broken1 = !calls <= 2 in
    [|
      Fwd_walk.Delivered;
      (if broken1 then Fwd_walk.Blackholed else Fwd_walk.Delivered);
      Fwd_walk.Looped;
    |]
  in
  let o = Transient.run sim ~interval:0.02 ~probe () in
  Alcotest.(check int) "one transient AS" 1 (Transient.transient_count o);
  Alcotest.(check bool) "AS1 transient" true o.Transient.transient.(1);
  Alcotest.(check bool) "AS2 permanent, not transient" false
    o.Transient.transient.(2);
  Alcotest.(check bool) "AS0 fine" false o.Transient.transient.(0)

let test_transient_none () =
  let sim = Sim.create () in
  Sim.schedule sim ~delay:0.01 (fun _ -> ());
  let probe () = [| Fwd_walk.Delivered; Fwd_walk.Delivered |] in
  let o = Transient.run sim ~probe () in
  Alcotest.(check int) "none" 0 (Transient.transient_count o)

let test_transient_event_budget () =
  let sim = Sim.create () in
  (* an event that reschedules itself forever *)
  let rec tick s = Sim.schedule s ~delay:0.001 tick in
  tick sim;
  let probe () = [| Fwd_walk.Delivered |] in
  Alcotest.check_raises "budget"
    (Failure "Transient.run: event budget exceeded (non-convergence?)")
    (fun () -> ignore (Transient.run sim ~max_events:100 ~probe ()))

(* --- Scenario generators ------------------------------------------------ *)

let topo200 = lazy (Topo_gen.generate (Topo_gen.default_params ~n:200 ()))

let test_single_link_shape () =
  let t = Lazy.force topo200 in
  let st = Random.State.make [| 1 |] in
  for _ = 1 to 50 do
    match Scenario.single_link st t with
    | { Scenario.dest; events = [ Scenario.Fail_link (u, v) ]; _ } ->
      Alcotest.(check bool) "dest multi-homed" true (Topology.is_multi_homed t dest);
      Alcotest.(check int) "link starts at dest" dest u;
      Alcotest.(check bool) "fails a provider link" true
        (Topology.rel t u v = Some Relationship.Provider)
    | _ -> Alcotest.fail "unexpected shape"
  done

let test_two_links_apart_shape () =
  let t = Lazy.force topo200 in
  let st = Random.State.make [| 2 |] in
  for _ = 1 to 50 do
    match Scenario.two_links_apart st t with
    | {
     Scenario.dest;
     events = [ Scenario.Fail_link (u1, v1); Scenario.Fail_link (u2, v2) ];
     _;
    } ->
      Alcotest.(check int) "first link at dest" dest u1;
      (* the two failed links share no AS *)
      let shared =
        List.exists (fun x -> x = u1 || x = v1) [ u2; v2 ]
      in
      Alcotest.(check bool) "links disjoint" false shared;
      Alcotest.(check bool) "second is a provider link" true
        (Topology.rel t u2 v2 = Some Relationship.Provider);
      (* second link lies in the destination's uphill cone *)
      let cone = Tiers.uphill_reachable t dest in
      Alcotest.(check bool) "second in cone" true cone.(u2)
    | _ -> Alcotest.fail "unexpected shape"
  done

let test_two_links_shared_shape () =
  let t = Lazy.force topo200 in
  let st = Random.State.make [| 3 |] in
  for _ = 1 to 50 do
    match Scenario.two_links_shared st t with
    | {
     Scenario.dest;
     events = [ Scenario.Fail_link (u1, v1); Scenario.Fail_link (u2, v2) ];
     _;
    } ->
      Alcotest.(check int) "first at dest" dest u1;
      Alcotest.(check int) "shared AS" v1 u2;
      Alcotest.(check bool) "second is provider link of the provider" true
        (Topology.rel t u2 v2 = Some Relationship.Provider)
    | _ -> Alcotest.fail "unexpected shape"
  done

let test_node_failure_shape () =
  let t = Lazy.force topo200 in
  let st = Random.State.make [| 4 |] in
  match Scenario.node_failure st t with
  | { Scenario.dest; events = [ Scenario.Fail_node p ]; _ } ->
    Alcotest.(check bool) "fails a provider of dest" true
      (Topology.rel t dest p = Some Relationship.Provider)
  | _ -> Alcotest.fail "unexpected shape"

let test_scenario_deterministic () =
  let t = Lazy.force topo200 in
  let gen seed =
    let st = Random.State.make [| seed |] in
    List.init 5 (fun _ -> Scenario.single_link st t)
  in
  Alcotest.(check bool) "same" true (gen 7 = gen 7);
  Alcotest.(check bool) "different" true (gen 7 <> gen 8)

(* --- Runner -------------------------------------------------------------- *)

let test_runner_deterministic () =
  let t = Lazy.force topo200 in
  let st = Random.State.make [| 5 |] in
  let spec = Scenario.single_link st t in
  let r1 = Runner.run ~seed:3 Runner.Bgp t spec in
  let r2 = Runner.run ~seed:3 Runner.Bgp t spec in
  Alcotest.(check bool) "identical" true (r1 = r2)

let test_runner_all_protocols_complete () =
  let t = Lazy.force topo200 in
  let st = Random.State.make [| 6 |] in
  let spec = Scenario.single_link st t in
  List.iter
    (fun proto ->
      let r = Runner.run proto t spec in
      Alcotest.(check bool)
        (Printf.sprintf "%s: no permanent loss" (Runner.protocol_name proto))
        true
        (r.Runner.broken_after = 0);
      Alcotest.(check bool) "messages counted" true (r.Runner.messages_initial > 0))
    Runner.all_protocols

let test_runner_node_failure_completes () =
  let t = Lazy.force topo200 in
  let st = Random.State.make [| 8 |] in
  let spec = Scenario.node_failure st t in
  List.iter
    (fun proto -> ignore (Runner.run proto t spec))
    Runner.all_protocols

(* --- Golden runner values ------------------------------------------------- *)

(* Full Runner.run records on the diamond_plus fixture, every protocol,
   fixed seed — pinned bit-for-bit (floats included) so that executor
   changes (e.g. the Parallel domain-pool refit) provably change no
   numbers. If a deliberate protocol/simulator change moves these values,
   re-pin them and say so in the commit. *)

let golden_result =
  Alcotest.testable
    (fun ppf (r : Runner.result) ->
      Format.fprintf ppf
        "{ transient=%d; broken=%d; conv=%.17g; rec=%.17g; mi=%d; me=%d; \
         cp=%d; %a; verdict=%s }"
        r.Runner.transient_count r.Runner.broken_after
        r.Runner.convergence_delay r.Runner.recovery_delay
        r.Runner.messages_initial r.Runner.messages_event r.Runner.checkpoints
        Counters.pp r.Runner.counters
        (Sim.verdict_name r.Runner.verdict))
    ( = )

let golden_expectations =
  (* (label, event-builder, per-protocol expected record) *)
  let mk transient_count broken_after convergence_delay recovery_delay
      messages_initial messages_event checkpoints (ann, wd, mrai, lost) =
    {
      Runner.transient_count;
      broken_after;
      convergence_delay;
      recovery_delay;
      messages_initial;
      messages_event;
      checkpoints;
      counters =
        {
          Counters.announcements = ann;
          withdrawals = wd;
          mrai_deferrals = mrai;
          lost_to_resets = lost;
        };
      verdict = Sim.Converged;
      (* golden runs pass ~validate:`Off so the record stays a pure
         function of the simulation; certificate threading is covered in
         test_staticcheck *)
      diagnostics = [];
      certificate = None;
      timeline = None;
    }
  in
  [
    ( "link",
      (fun vtx -> [ Scenario.Fail_link (vtx 3, vtx 1) ]),
      [
        (Runner.Bgp, mk 0 0 0.019184569160348566 0. 9 4 3 (10, 3, 0, 0));
        (Runner.Rbgp_no_rci, mk 0 0 0.012946428140732227 0. 11 6 3 (12, 5, 0, 0));
        (Runner.Rbgp, mk 0 0 0.012946428140732227 0. 11 6 3 (12, 5, 0, 0));
        (Runner.Stamp, mk 0 0 0.034618057854001807 0. 14 10 5 (19, 5, 1, 0));
      ] );
    ( "node",
      (fun vtx -> [ Scenario.Fail_node (vtx 1) ]),
      [
        (Runner.Bgp, mk 0 1 0. 0. 9 1 2 (9, 1, 0, 0));
        (Runner.Rbgp_no_rci, mk 0 1 0. 0. 11 2 3 (11, 2, 0, 0));
        (Runner.Rbgp, mk 0 1 0. 0. 11 2 3 (11, 2, 0, 0));
        (Runner.Stamp, mk 0 1 0.04159651006293702 0. 14 6 5 (17, 3, 1, 0));
      ] );
  ]

let test_runner_golden () =
  let topo = Test_support.diamond_plus () in
  let vtx = Test_support.vtx topo in
  List.iter
    (fun (label, events, expected) ->
      let spec =
        { Scenario.dest = vtx 3; events = events vtx; detect_delay = None }
      in
      List.iter
        (fun (protocol, want) ->
          let got = Runner.run ~seed:42 ~validate:`Off protocol topo spec in
          Alcotest.check golden_result
            (Printf.sprintf "%s/%s" label (Runner.protocol_name protocol))
            want got)
        expected)
    golden_expectations

let test_runner_golden_via_pool () =
  (* the same pinned records must come out of the domain pool, for any
     worker count *)
  let topo = Test_support.diamond_plus () in
  let vtx = Test_support.vtx topo in
  List.iter
    (fun workers ->
      Parallel.with_pool ~jobs:workers (fun pool ->
          List.iter
            (fun (label, events, expected) ->
              let spec =
                { Scenario.dest = vtx 3; events = events vtx; detect_delay = None }
              in
              let got =
                Parallel.map pool
                  (fun (protocol, _) ->
                    Runner.run ~seed:42 ~validate:`Off protocol topo spec)
                  expected
              in
              List.iter2
                (fun (protocol, want) got ->
                  Alcotest.check golden_result
                    (Printf.sprintf "jobs=%d %s/%s" workers label
                       (Runner.protocol_name protocol))
                    want got)
                expected got)
            golden_expectations))
    [ 1; 4 ]

(* --- Experiments ---------------------------------------------------------- *)

let test_fig1_fields_consistent () =
  let t = Topo_gen.generate (Topo_gen.default_params ~n:120 ()) in
  let f = Experiment.fig1 ~samples:30 ~intelligent_samples:10 t in
  Alcotest.(check bool) "mean in [0,1]" true
    (f.Experiment.mean_random >= 0. && f.Experiment.mean_random <= 1.);
  Alcotest.(check bool) "intelligent >= random - noise" true
    (f.Experiment.mean_intelligent >= f.Experiment.mean_random -. 0.1);
  Alcotest.(check bool) "fractions consistent" true
    (f.Experiment.frac_below_07 >= 0.
    && f.Experiment.frac_above_09 >= 0.
    && f.Experiment.frac_below_07 +. f.Experiment.frac_above_09 <= 1.);
  Alcotest.(check int) "cdf covers all destinations"
    (Topology.num_vertices t)
    (Cdf.size f.Experiment.cdf)

let test_failure_bars_ordering () =
  (* the paper's qualitative ordering on the single-link workload:
     BGP worst, R-BGP with RCI at zero, STAMP far below BGP *)
  let t = Topo_gen.generate (Topo_gen.default_params ~n:200 ()) in
  let bars =
    Experiment.failure_bars ~instances:6 ~scenario:Scenario.single_link t
  in
  let get p = List.assoc p bars in
  Alcotest.(check bool) "bgp >= norci" true
    (get Runner.Bgp >= get Runner.Rbgp_no_rci);
  Alcotest.(check (float 1e-9)) "rbgp with rci = 0" 0. (get Runner.Rbgp);
  Alcotest.(check bool) "stamp <= bgp" true (get Runner.Stamp <= get Runner.Bgp)

let test_overhead_and_delay () =
  let t = Topo_gen.generate (Topo_gen.default_params ~n:150 ()) in
  let rows = Experiment.overhead_and_delay ~instances:4 t in
  Alcotest.(check int) "four protocols" 4 (List.length rows);
  let find p =
    List.find (fun (r : Experiment.overhead_result) -> r.protocol = p) rows
  in
  let bgp = find Runner.Bgp and stamp = find Runner.Stamp in
  Alcotest.(check bool) "stamp < 2x bgp messages (Section 6.3)" true
    (stamp.Experiment.avg_messages_initial
    < 2. *. bgp.Experiment.avg_messages_initial);
  List.iter
    (fun r ->
      Alcotest.(check bool) "delay non-negative" true
        (r.Experiment.avg_delay >= 0.))
    rows

let () =
  Alcotest.run "analysis"
    [
      ( "transient",
        [
          Alcotest.test_case "counting" `Quick test_transient_counting;
          Alcotest.test_case "none" `Quick test_transient_none;
          Alcotest.test_case "event budget" `Quick test_transient_event_budget;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "single link" `Quick test_single_link_shape;
          Alcotest.test_case "two apart" `Quick test_two_links_apart_shape;
          Alcotest.test_case "two shared" `Quick test_two_links_shared_shape;
          Alcotest.test_case "node failure" `Quick test_node_failure_shape;
          Alcotest.test_case "deterministic" `Quick test_scenario_deterministic;
        ] );
      ( "runner",
        [
          Alcotest.test_case "deterministic" `Quick test_runner_deterministic;
          Alcotest.test_case "all protocols" `Quick
            test_runner_all_protocols_complete;
          Alcotest.test_case "node failure" `Quick
            test_runner_node_failure_completes;
          Alcotest.test_case "golden values (diamond_plus)" `Quick
            test_runner_golden;
          Alcotest.test_case "golden values via pool" `Quick
            test_runner_golden_via_pool;
        ] );
      ( "experiment",
        [
          Alcotest.test_case "fig1 fields" `Quick test_fig1_fields_consistent;
          Alcotest.test_case "bars ordering" `Quick test_failure_bars_ordering;
          Alcotest.test_case "overhead and delay" `Quick test_overhead_and_delay;
        ] );
    ]
