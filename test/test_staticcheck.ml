(* Tests for the static safety analyzer: each crafted bad topology
   triggers exactly its diagnostic id, every generated topology passes
   [`Strict], the Runner threads the convergence certificate, and the
   report/scenario serialisations round-trip. *)

let rel lines = Topo_io.parse_relationships (String.concat "\n" lines)

(* the shared fixtures, smallest instance of each defect *)
let diamond () =
  rel [ "10|20|0"; "10|1|-1"; "20|2|-1"; "1|3|-1"; "2|3|-1" ]

let provider_cycle () = rel [ "10|1|-1"; "1|2|-1"; "2|3|-1"; "3|1|-1" ]

let sibling_wheel () =
  rel [ "1|2|2"; "3|4|2"; "1|3|-1"; "4|2|-1"; "10|1|-1"; "10|4|-1" ]

let disconnected_tier1 () = rel [ "10|1|-1"; "20|2|-1"; "1|3|-1"; "2|3|-1" ]
let valley_leak () = rel [ "10|1|-1"; "10|2|-1"; "1|3|0" ]

let non_disjoint () =
  rel [ "10|1|-1"; "1|2|-1"; "1|3|-1"; "2|4|-1"; "3|4|-1"; "10|5|-1" ]

let error_ids report =
  Staticcheck.errors report
  |> List.map (fun d -> d.Diagnostic.check)
  |> List.sort_uniq String.compare

let warning_ids report =
  Staticcheck.warnings report
  |> List.map (fun d -> d.Diagnostic.check)
  |> List.sort_uniq String.compare

let check_errors name topo expected =
  let report = Staticcheck.analyze topo in
  Alcotest.(check (list string)) name expected (error_ids report)

(* --- one bad topology per check, firing exactly its id ----------------- *)

let test_good_topology_certified () =
  let report = Staticcheck.analyze (diamond ()) in
  Alcotest.(check (list string)) "no errors" [] (error_ids report);
  Alcotest.(check bool) "certified" true
    (report.Staticcheck.certificate = Staticcheck.Convergence_certified)

let test_provider_cycle () =
  check_errors "only topo.wellformed" (provider_cycle ()) [ "topo.wellformed" ]

let test_sibling_wheel () =
  (* the provider DAG alone is acyclic: the transit cycle closes through
     the two sibling groups, so only the dispute-wheel check can see it *)
  let topo = sibling_wheel () in
  Alcotest.(check bool) "provider DAG acyclic" true
    (Topology.provider_dag_is_acyclic topo);
  check_errors "only policy.dispute-wheel" topo [ "policy.dispute-wheel" ];
  let report = Staticcheck.analyze topo in
  (match report.Staticcheck.certificate with
  | Staticcheck.Not_certified why ->
    Alcotest.(check bool) "blames the dispute wheel" true
      (Astring.String.is_infix ~affix:"policy.dispute-wheel" why)
  | Staticcheck.Convergence_certified ->
    Alcotest.fail "a dispute wheel must block certification")

let test_disconnected_tier1 () =
  check_errors "only topo.tier1-clique" (disconnected_tier1 ())
    [ "topo.tier1-clique" ]

let test_valley_leak () =
  (* AS 3 peers below the core and buys no transit: no valley-free path
     from the rest of the graph reaches it *)
  check_errors "only policy.valley-free" (valley_leak ())
    [ "policy.valley-free" ]

let test_non_disjoint_warns () =
  let report = Staticcheck.analyze (non_disjoint ()) in
  Alcotest.(check (list string)) "capability gap is not an error" []
    (error_ids report);
  Alcotest.(check bool) "stamp.disjoint warning present" true
    (List.mem "stamp.disjoint" (warning_ids report));
  (* the warning names the origin whose uphill cone has the cut vertex *)
  Alcotest.(check bool) "located at the Φ = 0 origin" true
    (List.exists
       (fun d ->
         d.Diagnostic.check = "stamp.disjoint"
         && d.Diagnostic.location = Diagnostic.At_as 4)
       (Staticcheck.warnings report))

let test_lock_coverage_warns () =
  let chain = rel [ "1|2|-1"; "2|3|-1" ] in
  let report = Staticcheck.analyze chain in
  Alcotest.(check (list string)) "no errors on a chain" [] (error_ids report);
  Alcotest.(check bool) "stamp.lock-coverage warning present" true
    (List.mem "stamp.lock-coverage" (warning_ids report))

let test_scenario_sanity () =
  let topo = diamond () in
  let v asn = Option.get (Topology.vertex_of_asn topo asn) in
  let spec =
    {
      Scenario.dest = v 3;
      events =
        [
          (* recovering a link that never failed *)
          Scenario.Recover_link (v 1, v 3);
          (* a link the topology does not contain *)
          Scenario.Fail_link (v 10, v 2);
          (* negative offset *)
          Scenario.At (-1.0, Scenario.Fail_node (v 3));
        ];
      detect_delay = Some (-2.0);
    }
  in
  let report = Staticcheck.analyze ~spec topo in
  let sanity_errors =
    List.filter
      (fun d -> d.Diagnostic.check = "scenario.sanity")
      (Staticcheck.errors report)
  in
  Alcotest.(check int) "all four problems reported" 4
    (List.length sanity_errors);
  (* a well-formed scenario on the same topology is silent *)
  let ok =
    {
      Scenario.dest = v 3;
      events = [ Scenario.Fail_link (v 3, v 1) ];
      detect_delay = None;
    }
  in
  Alcotest.(check (list string)) "clean scenario, clean report" []
    (error_ids (Staticcheck.analyze ~spec:ok topo))

let test_registry_complete () =
  let expected =
    [
      "policy.dispute-wheel";
      "policy.valley-free";
      "scenario.sanity";
      "stamp.disjoint";
      "stamp.lock-coverage";
      "topo.tier1-clique";
      "topo.wellformed";
    ]
  in
  Alcotest.(check (list string)) "all built-in checks registered" expected
    (List.sort String.compare (Check.Registry.names ()));
  (* timings cover every registered check *)
  let report = Staticcheck.analyze (diamond ()) in
  Alcotest.(check (list string)) "one timing per check" expected
    (List.sort String.compare (List.map fst report.Staticcheck.timings))

(* --- every generated topology passes `Strict --------------------------- *)

let prop_generated_topologies_pass_strict =
  Test_support.qtest ~count:100 "Topo_gen output passes `Strict"
    Test_support.gen_params Test_support.print_params (fun params ->
      let topo = Topo_gen.generate params in
      let report = Staticcheck.analyze topo in
      Staticcheck.enforce ~what:"generated topology" `Strict report;
      not (Staticcheck.has_errors report))

(* --- enforcement and Runner threading ---------------------------------- *)

let test_enforce_strict_raises () =
  let report = Staticcheck.analyze (provider_cycle ()) in
  (match Staticcheck.enforce ~what:"test input" `Strict report with
  | () -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument msg ->
    Alcotest.(check bool) "names what and the check" true
      (Astring.String.is_infix ~affix:"test input" msg
      && Astring.String.is_infix ~affix:"topo.wellformed" msg));
  (* `Warn and `Off never raise, whatever the report *)
  Staticcheck.enforce `Warn report;
  Staticcheck.enforce `Off report

let test_runner_threads_certificate () =
  let topo = Test_support.diamond () in
  let vtx = Test_support.vtx topo in
  let spec =
    {
      Scenario.dest = vtx 3;
      events = [ Scenario.Fail_link (vtx 3, vtx 1) ];
      detect_delay = None;
    }
  in
  (* default `Warn: diagnostics and certificate ride on the result *)
  let r = Runner.run ~seed:1 Runner.Bgp topo spec in
  Alcotest.(check bool) "certified" true
    (r.Runner.certificate = Some Staticcheck.Convergence_certified);
  (* `Off: the result carries no analysis output *)
  let r_off = Runner.run ~seed:1 ~validate:`Off Runner.Bgp topo spec in
  Alcotest.(check bool) "no certificate under `Off" true
    (r_off.Runner.certificate = None && r_off.Runner.diagnostics = []);
  (* identical simulation either way *)
  Alcotest.(check bool) "analysis never perturbs the run" true
    ({ r with Runner.diagnostics = []; certificate = None } = r_off)

let test_runner_strict_rejects_bad_topology () =
  let topo = provider_cycle () in
  let v asn = Option.get (Topology.vertex_of_asn topo asn) in
  let spec =
    { Scenario.dest = v 3; events = []; detect_delay = None }
  in
  match Runner.run ~validate:`Strict Runner.Bgp topo spec with
  | _ -> Alcotest.fail "expected Invalid_argument before simulation"
  | exception Invalid_argument msg ->
    Alcotest.(check bool) "names the failing check" true
      (Astring.String.is_infix ~affix:"topo.wellformed" msg)

let test_preflight_matches_inline () =
  let topo = Test_support.diamond () in
  let vtx = Test_support.vtx topo in
  let specs =
    List.map
      (fun (u, v) ->
        {
          Scenario.dest = vtx 3;
          events = [ Scenario.Fail_link (vtx u, vtx v) ];
          detect_delay = None;
        })
      [ (3, 1); (3, 2); (1, 10) ]
  in
  let strip (r : Staticcheck.report) =
    (* timings are wall-clock-ish (Sys.time), so compare the analysis *)
    (r.Staticcheck.diagnostics, r.Staticcheck.certificate)
  in
  let inline = List.map strip (Staticcheck.preflight topo specs) in
  let pooled =
    Parallel.with_pool ~jobs:4 (fun pool ->
        List.map strip (Staticcheck.preflight ~pool topo specs))
  in
  Alcotest.(check bool) "pool = inline" true (inline = pooled);
  Alcotest.(check int) "one report per spec" (List.length specs)
    (List.length inline)

(* --- serialisations ----------------------------------------------------- *)

let test_report_json_shape () =
  let good = Staticcheck.report_to_json (Staticcheck.analyze (diamond ())) in
  Alcotest.(check bool) "good topology certified in JSON" true
    (Astring.String.is_infix ~affix:"\"certified\":true" good);
  let bad =
    Staticcheck.report_to_json (Staticcheck.analyze (provider_cycle ()))
  in
  Alcotest.(check bool) "bad topology: not certified, check named" true
    (Astring.String.is_infix ~affix:"\"certified\":false" bad
    && Astring.String.is_infix ~affix:"topo.wellformed" bad)

(* the golden for `stamp_check --json` on the shipped example pair: the
   report prefix is a pure function of the input (only the trailing
   timings_ms object varies run to run, so it is cut before comparing) *)
let test_examples_json_golden () =
  let dir =
    match
      List.find_opt Sys.file_exists
        [ "../examples/data"; "examples/data"; "_build/default/examples/data" ]
    with
    | Some d -> d
    | None ->
      Alcotest.fail
        "examples/data not found (missing source_tree dep in test/dune?)"
  in
  let topo = Topo_io.load_relationships (Filename.concat dir "backbone.rel") in
  let spec = Scenario_io.load topo (Filename.concat dir "provider_failure.scn") in
  let json = Staticcheck.report_to_json (Staticcheck.analyze ~spec topo) in
  let prefix =
    match Astring.String.cut ~sep:{|,"timings_ms"|} json with
    | Some (p, _) -> p
    | None -> json
  in
  Alcotest.(check string) "shipped example analyzes clean, bit for bit"
    {|{"errors":0,"warnings":0,"certified":true,"diagnostics":[]|} prefix;
  (* every shipped bad input still trips the analyzer *)
  List.iter
    (fun (file, id) ->
      let topo =
        Topo_io.load_relationships (Filename.concat dir ("bad/" ^ file))
      in
      let report = Staticcheck.analyze topo in
      Alcotest.(check bool)
        (Printf.sprintf "%s trips %s" file id)
        true
        (List.exists
           (fun d -> d.Diagnostic.check = id)
           report.Staticcheck.diagnostics))
    [
      ("provider_cycle.rel", "topo.wellformed");
      ("sibling_wheel.rel", "policy.dispute-wheel");
      ("disconnected_tier1.rel", "topo.tier1-clique");
      ("valley_leak.rel", "policy.valley-free");
      ("non_disjoint.rel", "stamp.disjoint");
      ("unlocked_origin.rel", "stamp.lock-coverage");
    ]

let test_scenario_io_roundtrip () =
  let topo = diamond () in
  let v asn = Option.get (Topology.vertex_of_asn topo asn) in
  let spec =
    {
      Scenario.dest = v 3;
      events =
        [
          Scenario.Fail_link (v 3, v 1);
          Scenario.At (2.5, Scenario.Recover_link (v 3, v 1));
          Scenario.At (4.0, Scenario.At (1.0, Scenario.Fail_node (v 20)));
          Scenario.Deny_export (v 10, v 1);
        ];
      detect_delay = Some 0.5;
    }
  in
  let text = Scenario_io.to_string topo spec in
  Alcotest.(check bool) "round-trips" true (Scenario_io.parse topo text = spec)

let test_scenario_io_rejects () =
  let topo = diamond () in
  let reject name text =
    match Scenario_io.parse topo text with
    | _ -> Alcotest.failf "%s: expected Invalid_argument" name
    | exception Invalid_argument _ -> ()
  in
  reject "missing dest" "fail_link 3 1\n";
  reject "duplicate dest" "dest 3\ndest 1\n";
  reject "unknown ASN" "dest 3\nfail_node 999\n";
  reject "malformed line" "dest 3\nfail_link 3\n"

let () =
  Alcotest.run "staticcheck"
    [
      ( "bad topologies",
        [
          Alcotest.test_case "good topology certified" `Quick
            test_good_topology_certified;
          Alcotest.test_case "provider cycle" `Quick test_provider_cycle;
          Alcotest.test_case "sibling dispute wheel" `Quick test_sibling_wheel;
          Alcotest.test_case "disconnected tier-1 core" `Quick
            test_disconnected_tier1;
          Alcotest.test_case "valley leak" `Quick test_valley_leak;
          Alcotest.test_case "Φ = 0 origin warns" `Quick
            test_non_disjoint_warns;
          Alcotest.test_case "no colouring point warns" `Quick
            test_lock_coverage_warns;
          Alcotest.test_case "scenario sanity" `Quick test_scenario_sanity;
          Alcotest.test_case "registry complete" `Quick test_registry_complete;
        ] );
      ( "generated topologies",
        [ prop_generated_topologies_pass_strict ] );
      ( "enforcement",
        [
          Alcotest.test_case "`Strict raises, `Warn/`Off do not" `Quick
            test_enforce_strict_raises;
          Alcotest.test_case "Runner threads the certificate" `Quick
            test_runner_threads_certificate;
          Alcotest.test_case "Runner `Strict rejects bad input" `Quick
            test_runner_strict_rejects_bad_topology;
          Alcotest.test_case "preflight pool = inline" `Quick
            test_preflight_matches_inline;
        ] );
      ( "serialisation",
        [
          Alcotest.test_case "report JSON shape" `Quick test_report_json_shape;
          Alcotest.test_case "examples/data golden" `Quick
            test_examples_json_golden;
          Alcotest.test_case "scenario round-trip" `Quick
            test_scenario_io_roundtrip;
          Alcotest.test_case "scenario parse errors" `Quick
            test_scenario_io_rejects;
        ] );
    ]
