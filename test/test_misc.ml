(* Edge cases and smaller components: generator validation, printers,
   Mrai bookkeeping, Sim stepping, and cross-cutting smoke tests. *)

let vtx = Test_support.vtx

(* --- Topo_gen parameter validation ----------------------------------- *)

let expect_invalid name f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  | exception Invalid_argument _ -> ()

let test_gen_validation () =
  let base = Topo_gen.default_params ~n:50 () in
  expect_invalid "n too small" (fun () ->
      Topo_gen.generate { base with Topo_gen.n = 2; n_tier1 = 5 });
  expect_invalid "tier1 zero" (fun () ->
      Topo_gen.generate { base with Topo_gen.n_tier1 = 0 });
  expect_invalid "mid fraction" (fun () ->
      Topo_gen.generate { base with Topo_gen.mid_fraction = 1.5 });
  expect_invalid "stub prob" (fun () ->
      Topo_gen.generate { base with Topo_gen.stub_extra_provider_prob = 1.0 });
  expect_invalid "max providers" (fun () ->
      Topo_gen.generate { base with Topo_gen.max_providers = 0 });
  expect_invalid "peers negative" (fun () ->
      Topo_gen.generate { base with Topo_gen.peers_per_mid = -1. })

let test_gen_tiny () =
  (* smallest legal configurations still satisfy the invariants *)
  List.iter
    (fun (n, t1) ->
      let t =
        Topo_gen.generate
          { (Topo_gen.default_params ~n ()) with Topo_gen.n_tier1 = t1 }
      in
      Alcotest.(check int) "size" n (Topology.num_vertices t);
      Alcotest.(check bool) "connected" true (Topology.is_connected t);
      Alcotest.(check bool) "acyclic" true (Topology.provider_dag_is_acyclic t))
    [ (3, 1); (4, 2); (10, 1); (12, 10) ]

(* --- printers ----------------------------------------------------------- *)

let render pp v = Format.asprintf "%a" pp v

let test_route_pp () =
  let r = { Route.as_path = [ 1; 2; 3 ]; cls = Relationship.Peer } in
  Alcotest.(check string) "route" "[1 2 3] via peer" (render Route.pp r)

let test_relationship_pp () =
  List.iter
    (fun (r, s) -> Alcotest.(check string) s s (render Relationship.pp r))
    [
      (Relationship.Customer, "customer");
      (Relationship.Provider, "provider");
      (Relationship.Peer, "peer");
      (Relationship.Sibling, "sibling");
    ]

let test_scenario_pp () =
  let t = Test_support.diamond () in
  let spec =
    {
      Scenario.dest = vtx t 3;
      events =
        [
          Scenario.Fail_link (vtx t 3, vtx t 1);
          Scenario.Fail_node (vtx t 2);
          Scenario.Deny_export (vtx t 3, vtx t 2);
        ];
      detect_delay = None;
    }
  in
  Alcotest.(check string) "spec" "dest=3 fail=[link 3-1; node 2; policy 3-x->2]"
    (render (Scenario.pp_spec t) spec)

let test_topology_pp_stats () =
  let s = render Topology.pp_stats (Test_support.diamond ()) in
  Alcotest.(check bool) "mentions ASes" true
    (Astring.String.is_infix ~affix:"ASes=5" s);
  Alcotest.(check bool) "mentions tier1" true
    (Astring.String.is_infix ~affix:"tier1=2" s)

let test_fwd_status_pp () =
  List.iter
    (fun (st, s) -> Alcotest.(check string) s s (render Fwd_walk.pp_status st))
    [
      (Fwd_walk.Delivered, "delivered");
      (Fwd_walk.Looped, "looped");
      (Fwd_walk.Blackholed, "blackholed");
    ]

let test_report_printers_smoke () =
  (* the report printers must render without raising on real results *)
  let t = Topo_gen.generate (Topo_gen.default_params ~n:60 ()) in
  let f1 = Experiment.fig1 ~samples:10 ~intelligent_samples:5 t in
  let s = render Report.pp_fig1 f1 in
  Alcotest.(check bool) "fig1 mentions paper" true
    (Astring.String.is_infix ~affix:"paper" s);
  let bars =
    Experiment.failure_bars ~instances:2 ~scenario:Scenario.single_link t
  in
  let s = render (Report.pp_bars ~paper:Report.paper_fig2) bars in
  Alcotest.(check bool) "bars mention BGP" true
    (Astring.String.is_infix ~affix:"BGP" s);
  let s = render Report.pp_bars_plain bars in
  Alcotest.(check bool) "plain bars mention STAMP" true
    (Astring.String.is_infix ~affix:"STAMP" s);
  let rows = Experiment.overhead_and_delay ~instances:2 t in
  let s = render Report.pp_overhead rows in
  Alcotest.(check bool) "overhead mentions recover" true
    (Astring.String.is_infix ~affix:"recover" s)

(* --- Mrai flush bookkeeping ---------------------------------------------- *)

let test_mrai_flush_flag () =
  let st = Random.State.make [| 2 |] in
  let m = Mrai.create st () in
  Alcotest.(check bool) "initially unscheduled" false (Mrai.flush_scheduled m);
  Mrai.set_flush_scheduled m true;
  Alcotest.(check bool) "scheduled" true (Mrai.flush_scheduled m);
  Mrai.set_flush_scheduled m false;
  Alcotest.(check bool) "cleared" false (Mrai.flush_scheduled m)

(* --- Sim stepping ----------------------------------------------------------- *)

let test_sim_step () =
  let sim = Sim.create () in
  Alcotest.(check bool) "empty step" false (Sim.step sim);
  Sim.schedule sim ~delay:1. (fun _ -> ());
  Sim.schedule sim ~delay:2. (fun _ -> ());
  Alcotest.(check bool) "step 1" true (Sim.step sim);
  Alcotest.(check (float 1e-9)) "clock" 1. (Sim.now sim);
  Alcotest.(check int) "pending" 1 (Sim.pending sim)

let test_sim_run_advances_clock_without_events () =
  let sim = Sim.create () in
  Sim.run ~until:5. sim;
  Alcotest.(check (float 1e-9)) "clock advanced" 5. (Sim.now sim);
  (* but an unbounded run with an empty queue must not jump to infinity *)
  Sim.run sim;
  Alcotest.(check (float 1e-9)) "still finite" 5. (Sim.now sim)

let test_channel_bad_bounds () =
  let sim = Sim.create () in
  Alcotest.check_raises "bad delays"
    (Invalid_argument "Channel.create: bad delay bounds") (fun () ->
      ignore (Channel.create sim ~delay_lo:0.02 ~delay_hi:0.01 ~deliver:ignore))

(* --- instant-delivery property (Theorem 5.1 corollary) -------------------- *)

let test_instant_delivery_when_fully_covered () =
  (* whenever every AS holds both colours before a single provider-link
     failure of the destination, the forwarding plane survives the failure
     instant unharmed *)
  let checked = ref 0 in
  let seed = ref 0 in
  while !checked < 5 && !seed < 25 do
    incr seed;
    let t = Topo_gen.generate (Topo_gen.default_params ~seed:!seed ~n:120 ()) in
    let st = Random.State.make [| !seed |] in
    let spec = Scenario.single_link st t in
    let dest = spec.Scenario.dest in
    let sim = Sim.create ~seed:!seed () in
    let coloring = Coloring.create Coloring.Random_choice ~seed:!seed t ~dest in
    let net = Stamp_net.create sim t ~dest ~coloring () in
    Stamp_net.start net;
    Sim.run sim;
    let fully_covered =
      Array.for_all (fun v -> Stamp_net.has_both net v) (Topology.vertices t)
    in
    if fully_covered then begin
      incr checked;
      List.iter
        (function
          | Scenario.Fail_link (u, v) -> Stamp_net.fail_link net u v
          | _ -> assert false (* single_link only emits link failures *))
        spec.Scenario.events;
      Array.iter
        (fun s ->
          Alcotest.(check bool) "instant delivery" true
            (Fwd_walk.equal_status s Fwd_walk.Delivered))
        (Stamp_net.walk_all net)
    end
  done;
  Alcotest.(check bool) "found fully covered instances" true (!checked >= 5)

(* --- Runner option plumbing -------------------------------------------------- *)

let test_runner_detect_delay_increases_bgp_damage () =
  let t = Topo_gen.generate (Topo_gen.default_params ~n:150 ()) in
  let st = Random.State.make [| 2 |] in
  let spec = Scenario.single_link st t in
  let fast = Runner.run ~seed:1 Runner.Bgp t spec in
  let slow = Runner.run ~seed:1 ~detect_delay:5. Runner.Bgp t spec in
  Alcotest.(check bool)
    (Printf.sprintf "slow (%d) >= fast (%d)" slow.Runner.transient_count
       fast.Runner.transient_count)
    true
    (slow.Runner.transient_count >= fast.Runner.transient_count)

let test_runner_stamp_variants_complete () =
  let t = Topo_gen.generate (Topo_gen.default_params ~n:100 ()) in
  let st = Random.State.make [| 3 |] in
  let spec = Scenario.single_link st t in
  let baseline = Runner.run_stamp ~seed:1 t spec in
  let spread = Runner.run_stamp ~seed:1 ~spread_unlocked_blue:true t spec in
  let smart =
    Runner.run_stamp ~seed:1
      ~strategy:(Coloring.Intelligent { samples = 10 })
      t spec
  in
  List.iter
    (fun (r : Runner.result) ->
      Alcotest.(check int) "no permanent loss" 0 r.Runner.broken_after)
    [ baseline; spread; smart ]

let () =
  Alcotest.run "misc"
    [
      ( "topo_gen",
        [
          Alcotest.test_case "validation" `Quick test_gen_validation;
          Alcotest.test_case "tiny configs" `Quick test_gen_tiny;
        ] );
      ( "printers",
        [
          Alcotest.test_case "route" `Quick test_route_pp;
          Alcotest.test_case "relationship" `Quick test_relationship_pp;
          Alcotest.test_case "scenario" `Quick test_scenario_pp;
          Alcotest.test_case "topology stats" `Quick test_topology_pp_stats;
          Alcotest.test_case "walk status" `Quick test_fwd_status_pp;
          Alcotest.test_case "report smoke" `Quick test_report_printers_smoke;
        ] );
      ( "kernel",
        [
          Alcotest.test_case "mrai flush flag" `Quick test_mrai_flush_flag;
          Alcotest.test_case "sim step" `Quick test_sim_step;
          Alcotest.test_case "clock advance" `Quick
            test_sim_run_advances_clock_without_events;
          Alcotest.test_case "channel bounds" `Quick test_channel_bad_bounds;
        ] );
      ( "stamp-instant",
        [
          Alcotest.test_case "instant delivery when covered" `Quick
            test_instant_delivery_when_fully_covered;
        ] );
      ( "runner",
        [
          Alcotest.test_case "detect delay" `Quick
            test_runner_detect_delay_increases_bgp_damage;
          Alcotest.test_case "stamp variants" `Quick
            test_runner_stamp_variants_complete;
        ] );
    ]
