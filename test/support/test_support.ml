(* Shared fixtures and generators for the test suites. *)

(* A hand-built mini-Internet used across suites:

        10 ----peer---- 20        (tier-1 clique)
        |               |
        1               2         (mid-tier)
         \             /
          \           /
               3                  (multi-homed stub)

   10 is provider of 1, 20 of 2; 1 and 2 are providers of 3. *)
let diamond () =
  let b = Topology.Builder.create () in
  Topology.Builder.add_p2p b 10 20;
  Topology.Builder.add_p2c b ~provider:10 ~customer:1;
  Topology.Builder.add_p2c b ~provider:20 ~customer:2;
  Topology.Builder.add_p2c b ~provider:1 ~customer:3;
  Topology.Builder.add_p2c b ~provider:2 ~customer:3;
  Topology.Builder.build b

(* Same as diamond but with an extra lateral peer link 1--2, which creates
   peer routes, and a single-homed stub 4 under 3. *)
let diamond_plus () =
  let b = Topology.Builder.create () in
  Topology.Builder.add_p2p b 10 20;
  Topology.Builder.add_p2c b ~provider:10 ~customer:1;
  Topology.Builder.add_p2c b ~provider:20 ~customer:2;
  Topology.Builder.add_p2c b ~provider:1 ~customer:3;
  Topology.Builder.add_p2c b ~provider:2 ~customer:3;
  Topology.Builder.add_p2p b 1 2;
  Topology.Builder.add_p2c b ~provider:3 ~customer:4;
  Topology.Builder.build b

(* A provider chain 1 <- 2 <- ... <- n (1 is the single tier-1). *)
let chain n =
  let b = Topology.Builder.create () in
  for i = 1 to n - 1 do
    Topology.Builder.add_p2c b ~provider:i ~customer:(i + 1)
  done;
  Topology.Builder.build b

let vtx topo asn =
  match Topology.vertex_of_asn topo asn with
  | Some v -> v
  | None -> Alcotest.failf "ASN %d not in topology" asn

let asns_of_path topo path = List.map (Topology.asn topo) path

(* Random topologies for property tests: small enough for exhaustive
   cross-checks, structurally diverse. *)
let gen_params =
  QCheck2.Gen.(
    let* n = int_range 15 70 in
    let* n_tier1 = int_range 1 4 in
    let* mid_fraction = float_range 0.05 0.5 in
    let* stub_q = float_range 0.0 0.7 in
    let* mid_q = float_range 0.0 0.7 in
    let* peers = float_range 0.0 3.0 in
    let* seed = int_range 0 1_000_000 in
    return
      {
        Topo_gen.n;
        n_tier1;
        mid_fraction;
        stub_extra_provider_prob = stub_q;
        mid_extra_provider_prob = mid_q;
        max_providers = 5;
        peers_per_mid = peers;
        seed;
      })

(* Valid tiered topologies: at least two tier-1 ASes, so the top of the
   hierarchy is a genuine peering clique. The STAMP lemma properties use
   this — the paper's Section 3 guarantees presume the tiered structure,
   and degenerate single-tier-1 graphs leave blue-only ASes with no
   disjoint fallback during recovery churn. *)
let gen_params_tiered =
  QCheck2.Gen.map
    (fun p -> { p with Topo_gen.n_tier1 = max 2 p.Topo_gen.n_tier1 })
    gen_params

let gen_topology = QCheck2.Gen.map Topo_gen.generate gen_params

let print_params (p : Topo_gen.params) =
  (* full float precision: a %.2f counterexample does not reproduce *)
  Printf.sprintf
    "{n=%d; t1=%d; mid=%.17g; stub_q=%.17g; mid_q=%.17g; peers=%.17g; seed=%d}"
    p.n p.n_tier1 p.mid_fraction p.stub_extra_provider_prob
    p.mid_extra_provider_prob p.peers_per_mid p.seed

(* Run a freshly created network to convergence and return it. *)
let converge_bgp ?(seed = 7) ?detect_delay topo ~dest =
  let sim = Sim.create ~seed () in
  let net = Bgp_net.create sim topo ~dest ?detect_delay () in
  Bgp_net.start net;
  Sim.run sim;
  (sim, net)

(* Alcotest/QCheck glue: register a QCheck2 property as an alcotest case. *)
let qtest ?(count = 50) name gen print prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name ~count ~print gen prop)
