(* Tests for the partial-deployment engine: the control plane must be
   byte-for-byte plain BGP, the blue table must hold the most disjoint
   alternate, and deflection must save packets when an upgraded AS loses
   its route. *)

let diamond = Test_support.diamond
let vtx = Test_support.vtx

let converge ?(seed = 7) ?detect_delay ~deployed topo ~dest =
  let sim = Sim.create ~seed () in
  let net = Hybrid_net.create sim topo ~dest ~deployed ?detect_delay () in
  Hybrid_net.start net;
  Sim.run sim;
  (sim, net)

(* --- control plane == plain BGP ---------------------------------------- *)

let prop_control_plane_is_bgp =
  Test_support.qtest ~count:10
    "hybrid control plane equals plain BGP regardless of deployment"
    Test_support.gen_params Test_support.print_params (fun p ->
      let t = Topo_gen.generate p in
      let st = Random.State.make [| p.Topo_gen.seed + 61 |] in
      let dest = Random.State.int st (Topology.num_vertices t) in
      let tiers = Tiers.classify t in
      let _, net = converge ~seed:p.Topo_gen.seed t ~dest
                     ~deployed:(fun v -> tiers.(v) <= 1) in
      let oracle = Static_route.compute t ~dest in
      Array.for_all
        (fun v ->
          match (oracle.(v), Hybrid_net.best net v) with
          | None, None -> true
          | Some e, Some b -> e.Static_route.as_path = b.Route.as_path
          | (Some _ | None), _ -> false)
        (Topology.vertices t))

let test_message_count_equals_bgp () =
  let t = Topo_gen.generate (Topo_gen.default_params ~n:120 ()) in
  let dest = (Topology.multi_homed t).(0) in
  let _, hybrid = converge ~seed:3 t ~dest ~deployed:(fun _ -> true) in
  let _, bgp = Test_support.converge_bgp ~seed:3 t ~dest in
  Alcotest.(check int) "same update count" (Bgp_net.message_count bgp)
    (Hybrid_net.message_count hybrid)

(* --- blue table ----------------------------------------------------------- *)

let test_backup_disjoint_on_diamond () =
  let t = diamond () in
  let dest = vtx t 3 in
  let _, net = converge t ~dest ~deployed:(Topology.is_tier1 t) in
  (* tier-1 10: best 10>1>3, backup must be via peer 20 avoiding 1 *)
  (match Hybrid_net.backup net (vtx t 10) with
  | Some r ->
    Alcotest.(check (list int)) "backup path" [ 20; 2; 3 ]
      (Test_support.asns_of_path t r.Route.as_path)
  | None -> Alcotest.fail "no backup at AS 10");
  Alcotest.(check bool) "disjoint backup" true
    (Hybrid_net.has_disjoint_backup net (vtx t 10));
  (* legacy ASes expose no backup *)
  Alcotest.(check bool) "legacy has none" true
    (Hybrid_net.backup net (vtx t 1) = None)

let test_backup_absent_without_alternates () =
  let t = Test_support.chain 4 in
  let dest = vtx t 4 in
  let _, net = converge t ~dest ~deployed:(fun _ -> true) in
  (* a chain has a single route everywhere: no backups *)
  Array.iter
    (fun v ->
      if v <> dest then
        Alcotest.(check bool)
          (Printf.sprintf "AS %d no backup" (Topology.asn t v))
          true
          (Hybrid_net.backup net v = None))
    (Topology.vertices t)

(* --- deflection -------------------------------------------------------------- *)

let test_deflection_saves_at_failure_instant () =
  (* deflection engages when the AS holding the backup loses its own best:
     fail the link 10-1, whose upstream end (tier-1 10) holds the disjoint
     backup 10>20>2>3. Under plain BGP AS 10 is blackholed at that instant;
     upgraded, it re-colours packets onto the backup and survives. Note the
     converse case — the failure breaking a *remote* hop of a healthy-looking
     best — is exactly what partial deployment cannot detect without the ET
     attribute (see Experiment.partial_deployment_dynamic). *)
  let t = diamond () in
  let dest = vtx t 3 in
  let sim, net = converge t ~dest ~deployed:(Topology.is_tier1 t) in
  ignore sim;
  Hybrid_net.fail_link net (vtx t 10) (vtx t 1);
  let statuses = Hybrid_net.walk_all net in
  Alcotest.(check bool) "AS 10 delivered" true
    (Fwd_walk.equal_status statuses.(vtx t 10) Fwd_walk.Delivered);
  (* the data-plane nature of the backup shows under slow control-plane
     detection: BGP cannot reroute before the session drops and blackholes
     AS 10, while the upgraded AS deflects on the interface-down signal *)
  let sim', bgp = Test_support.converge_bgp ~detect_delay:5. t ~dest in
  ignore sim';
  Bgp_net.fail_link bgp (vtx t 10) (vtx t 1);
  Alcotest.(check bool) "BGP AS 10 broken under slow detection" false
    (Fwd_walk.equal_status (Bgp_net.walk_all bgp).(vtx t 10) Fwd_walk.Delivered);
  let sim'', net' =
    converge ~detect_delay:5. t ~dest ~deployed:(Topology.is_tier1 t)
  in
  ignore sim'';
  Hybrid_net.fail_link net' (vtx t 10) (vtx t 1);
  Alcotest.(check bool) "hybrid AS 10 survives slow detection" true
    (Fwd_walk.equal_status
       (Hybrid_net.walk_all net').(vtx t 10)
       Fwd_walk.Delivered)

let prop_partial_never_worse_than_bgp =
  Test_support.qtest ~count:8
    "partial deployment never increases transient problems"
    Test_support.gen_params Test_support.print_params (fun p ->
      let t = Topo_gen.generate p in
      QCheck2.assume (Array.length (Topology.multi_homed t) > 0);
      let st = Random.State.make [| p.Topo_gen.seed + 62 |] in
      let spec = Scenario.single_link st t in
      let tiers = Tiers.classify t in
      let bgp = Runner.run ~seed:p.Topo_gen.seed Runner.Bgp t spec in
      let hybrid =
        Runner.run_hybrid ~seed:p.Topo_gen.seed
          ~deployed:(fun v -> tiers.(v) <= 1)
          t spec
      in
      hybrid.Runner.transient_count <= bgp.Runner.transient_count)

let test_full_deployment_converges_and_delivers () =
  let t = Topo_gen.generate (Topo_gen.default_params ~n:150 ()) in
  let st = Random.State.make [| 4 |] in
  let spec = Scenario.single_link st t in
  let r = Runner.run_hybrid ~deployed:(fun _ -> true) t spec in
  Alcotest.(check int) "no permanent loss" 0 r.Runner.broken_after

let () =
  Alcotest.run "hybrid"
    [
      ( "control-plane",
        [
          prop_control_plane_is_bgp;
          Alcotest.test_case "message count" `Quick test_message_count_equals_bgp;
        ] );
      ( "blue-table",
        [
          Alcotest.test_case "diamond backup" `Quick
            test_backup_disjoint_on_diamond;
          Alcotest.test_case "no alternates" `Quick
            test_backup_absent_without_alternates;
        ] );
      ( "deflection",
        [
          Alcotest.test_case "saves at failure instant" `Quick
            test_deflection_saves_at_failure_instant;
          prop_partial_never_worse_than_bgp;
          Alcotest.test_case "full deployment" `Quick
            test_full_deployment_converges_and_delivers;
        ] );
    ]
