(* Mechanised checks of the paper's Section 3 lemmas.

   Lemma 3.1: no transient routing loops or failures occur after route
   change or route addition events — nobody loses a route, so the
   forwarding plane never breaks while the improvement propagates.

   Lemma 3.2: a route withdrawal event in the uphill portion of an AS path
   does not produce transient loops or failures during convergence — only
   downhill events hurt, which is why STAMP needs disjointness only there. *)

let all_delivered_throughout sim probe =
  (* monitor the forwarding plane at fine checkpoints until the queue
     drains; true iff no probe ever shows a problem *)
  let ok = ref true in
  let check () =
    Array.iter
      (fun s ->
        if not (Fwd_walk.equal_status s Fwd_walk.Delivered) then ok := false)
      (probe ())
  in
  check ();
  while Sim.pending sim > 0 do
    let before = Sim.events_processed sim in
    Sim.run ~until:(Sim.now sim +. 0.02) sim;
    if Sim.events_processed sim > before then check ()
  done;
  check ();
  !ok

(* A recovery of a previously failed link is the canonical route addition
   event: converge, fail, reconverge, recover, and watch the forwarding
   plane during the final reconvergence. *)
let recovery_scenario topo ~seed =
  let st = Random.State.make [| seed |] in
  let spec = Scenario.single_link st topo in
  match spec.Scenario.events with
  | [ Scenario.Fail_link (u, v) ] -> (spec.Scenario.dest, u, v)
  | _ -> assert false

let prop_lemma_3_1_bgp =
  Test_support.qtest ~count:10
    "Lemma 3.1 (BGP): link recovery causes no transient problems"
    Test_support.gen_params Test_support.print_params (fun p ->
      let topo = Topo_gen.generate p in
      QCheck2.assume (Array.length (Topology.multi_homed topo) > 0);
      let dest, u, v = recovery_scenario topo ~seed:(p.Topo_gen.seed + 31) in
      let sim = Sim.create ~seed:p.Topo_gen.seed () in
      let net = Bgp_net.create sim topo ~dest () in
      Bgp_net.start net;
      Sim.run sim;
      Bgp_net.fail_link net u v;
      Sim.run sim;
      Bgp_net.recover_link net u v;
      all_delivered_throughout sim (fun () -> Bgp_net.walk_all net))

(* STAMP's recovery guarantee presumes the tiered hierarchy: on
   single-tier-1 graphs an AS can be blue-only (no red fallback), and the
   locked-blue re-designation after recovery then briefly blackholes it.
   Generate valid tiered topologies only ({!Test_support.gen_params_tiered})
   — the structural hypothesis the static analyzer's [stamp.*] checks
   enforce. *)
let prop_lemma_3_1_stamp =
  Test_support.qtest ~count:10
    "Lemma 3.1 (STAMP): link recovery causes no transient problems"
    Test_support.gen_params_tiered Test_support.print_params (fun p ->
      let topo = Topo_gen.generate p in
      QCheck2.assume (Array.length (Topology.multi_homed topo) > 0);
      let dest, u, v = recovery_scenario topo ~seed:(p.Topo_gen.seed + 32) in
      let sim = Sim.create ~seed:p.Topo_gen.seed () in
      let coloring =
        Coloring.create Coloring.Random_choice ~seed:p.Topo_gen.seed topo ~dest
      in
      let net = Stamp_net.create sim topo ~dest ~coloring () in
      Stamp_net.start net;
      Sim.run sim;
      Stamp_net.fail_link net u v;
      Sim.run sim;
      Stamp_net.recover_link net u v;
      all_delivered_throughout sim (fun () -> Stamp_net.walk_all net))

let prop_lemma_3_1_rbgp =
  Test_support.qtest ~count:8
    "Lemma 3.1 (R-BGP): link recovery causes no transient problems"
    Test_support.gen_params Test_support.print_params (fun p ->
      let topo = Topo_gen.generate p in
      QCheck2.assume (Array.length (Topology.multi_homed topo) > 0);
      let dest, u, v = recovery_scenario topo ~seed:(p.Topo_gen.seed + 33) in
      let sim = Sim.create ~seed:p.Topo_gen.seed () in
      let net = Rbgp_net.create sim topo ~dest ~rci:true () in
      Rbgp_net.start net;
      Sim.run sim;
      Rbgp_net.fail_link net u v;
      Sim.run sim;
      Rbgp_net.recover_link net u v;
      all_delivered_throughout sim (fun () -> Rbgp_net.walk_all net))

(* Lemma 3.2: fail a link strictly in the uphill portion of every affected
   path — i.e. a link both of whose endpoints only reach the destination
   through their providers (so for every AS the lost segment was uphill).
   Concretely: fail a peer link between two tier-1 ASes; for any viewer the
   tier-1 peering crossing is the top of the path, never in the downhill
   portion, so BGP must reconverge without transient problems. *)
let prop_lemma_3_2_tier1_peer_failure =
  Test_support.qtest ~count:10
    "Lemma 3.2 (BGP): tier-1 peer-link failure causes no transient problems"
    Test_support.gen_params Test_support.print_params (fun p ->
      let p = { p with Topo_gen.n_tier1 = max 3 p.Topo_gen.n_tier1 } in
      let topo = Topo_gen.generate p in
      let t1s = Topology.tier1s topo in
      QCheck2.assume (Array.length t1s >= 3);
      let st = Random.State.make [| p.Topo_gen.seed + 34 |] in
      let dest =
        let mh = Topology.multi_homed topo in
        QCheck2.assume (Array.length mh > 0);
        mh.(Random.State.int st (Array.length mh))
      in
      let sim = Sim.create ~seed:p.Topo_gen.seed () in
      let net = Bgp_net.create sim topo ~dest () in
      Bgp_net.start net;
      Sim.run sim;
      (* fail one tier-1 peer link *)
      let a = t1s.(0) and b = t1s.(1) in
      Bgp_net.fail_link net a b;
      all_delivered_throughout sim (fun () -> Bgp_net.walk_all net))

let () =
  Alcotest.run "lemmas"
    [
      ( "lemma-3.1",
        [ prop_lemma_3_1_bgp; prop_lemma_3_1_stamp; prop_lemma_3_1_rbgp ] );
      ("lemma-3.2", [ prop_lemma_3_2_tier1_peer_failure ]);
    ]
