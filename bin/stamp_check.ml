(* Lint a topology (and optionally a scenario) with the static safety
   analyzer — no simulation, just the verdict.

     # whole-topology lint, human-readable report
     dune exec bin/stamp_check.exe -- examples/data/clique4.rel

     # scenario-scoped, machine-readable, fail on warnings too
     dune exec bin/stamp_check.exe -- --json --strict \
         examples/data/clique4.rel examples/data/provider_failure.scn

   Exit codes: 0 — clean (warnings allowed unless --strict); 1 — the
   analyzer found errors (or warnings under --strict), the report names
   the check ids; 2 — the input files could not be parsed. *)

open Cmdliner

let run topo_file scenario_file json strict quiet mrai detect =
  match
    let topo = Topo_io.load_relationships topo_file in
    let spec = Option.map (Scenario_io.load topo) scenario_file in
    (topo, spec)
  with
  | exception (Invalid_argument msg | Sys_error msg) ->
    Printf.eprintf "stamp_check: %s\n" msg;
    2
  | topo, spec ->
    let report =
      Staticcheck.analyze ?spec ?mrai_base:mrai ?detect_delay:detect topo
    in
    if json then print_endline (Staticcheck.report_to_json report)
    else if not quiet then Format.printf "%a" Staticcheck.pp_report report;
    let failing =
      if strict then report.Staticcheck.diagnostics
      else Staticcheck.errors report
    in
    let failing =
      List.filter
        (fun d -> d.Diagnostic.severity <> Diagnostic.Info)
        failing
    in
    if failing = [] then 0
    else begin
      if not (json || quiet) then
        Format.eprintf "stamp_check: %d failing diagnostic%s (%s)@."
          (List.length failing)
          (if List.length failing = 1 then "" else "s")
          (String.concat ", "
             (List.sort_uniq String.compare
                (List.map (fun d -> d.Diagnostic.check) failing)));
      1
    end

let topo_file =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"TOPOLOGY"
        ~doc:"CAIDA serial-1 relationship file to analyze.")

let scenario_file =
  Arg.(
    value
    & pos 1 (some file) None
    & info [] ~docv:"SCENARIO"
        ~doc:
          "Optional scenario file; adds the scenario.sanity check and \
           scopes the per-origin checks to its destination.")

let json =
  Arg.(
    value & flag
    & info [ "json" ] ~doc:"Emit the report as one JSON object on stdout.")

let strict =
  Arg.(
    value & flag
    & info [ "strict" ]
        ~doc:"Exit non-zero on warnings too, not only errors.")

let quiet =
  Arg.(
    value & flag
    & info [ "quiet"; "q" ] ~doc:"Suppress the report; exit code only.")

let mrai =
  Arg.(
    value
    & opt (some float) None
    & info [ "mrai" ] ~docv:"SECONDS"
        ~doc:"MRAI base interval to validate (scenario.sanity range check).")

let detect =
  Arg.(
    value
    & opt (some float) None
    & info [ "detect" ] ~docv:"SECONDS"
        ~doc:"Failure-detection delay to validate.")

let cmd =
  let doc = "statically verify a topology and scenario before simulating" in
  Cmd.v
    (Cmd.info "stamp_check" ~doc)
    Term.(
      const run $ topo_file $ scenario_file $ json $ strict $ quiet $ mrai
      $ detect)

let () = exit (Cmd.eval' cmd)
