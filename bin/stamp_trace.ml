(* Record, inspect and compare simulation traces.

     # record a traced run to JSONL (and print its timeline)
     dune exec bin/stamp_trace.exe -- record -n 500 --protocol stamp \
         -o run.jsonl --summary

     # events touching AS 64500 between t=10 and t=40, as JSONL
     dune exec bin/stamp_trace.exe -- filter run.jsonl --as 64500 \
         --from 10 --until 40 --json

     # reconstruct the convergence timeline from a trace alone
     dune exec bin/stamp_trace.exe -- timeline run.jsonl

     # compare two traces after normalisation (exit 1 when they differ)
     dune exec bin/stamp_trace.exe -- diff a.jsonl b.jsonl *)

open Cmdliner

let protocol_conv =
  let parse = function
    | "bgp" -> Ok Runner.Bgp
    | "rbgp" -> Ok Runner.Rbgp
    | "rbgp-norci" -> Ok Runner.Rbgp_no_rci
    | "stamp" -> Ok Runner.Stamp
    | s -> Error (`Msg (Printf.sprintf "unknown protocol %S" s))
  in
  let print ppf p = Format.pp_print_string ppf (Runner.protocol_name p) in
  Arg.conv (parse, print)

let link_conv =
  let parse s =
    match String.split_on_char ':' s with
    | [ a; b ] -> begin
      match (int_of_string_opt a, int_of_string_opt b) with
      | Some a, Some b -> Ok (a, b)
      | _ -> Error (`Msg "expected ASN:ASN")
    end
    | _ -> Error (`Msg "expected ASN:ASN")
  in
  let print ppf (a, b) = Format.fprintf ppf "%d:%d" a b in
  Arg.conv (parse, print)

let scenario_conv =
  let parse = function
    | "single" -> Ok `Single
    | "two-apart" -> Ok `Two_apart
    | "two-shared" -> Ok `Two_shared
    | "node" -> Ok `Node
    | "policy" -> Ok `Policy
    | s -> Error (`Msg (Printf.sprintf "unknown scenario %S" s))
  in
  let print ppf s =
    Format.pp_print_string ppf
      (match s with
      | `Single -> "single"
      | `Two_apart -> "two-apart"
      | `Two_shared -> "two-shared"
      | `Node -> "node"
      | `Policy -> "policy")
  in
  Arg.conv (parse, print)

let vertex_of_asn_exn topo asn =
  match Topology.vertex_of_asn topo asn with
  | Some v -> v
  | None -> Fmt.failwith "ASN %d not in topology" asn

(* Read one event per non-empty line; the parse error of a bad line is
   re-raised with its line number so truncated or hand-edited files fail
   with a usable message. *)
let load_trace path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go lineno acc =
        match input_line ic with
        | exception End_of_file -> List.rev acc
        | line when String.trim line = "" -> go (lineno + 1) acc
        | line ->
          let ev =
            try Trace.of_json line
            with Invalid_argument msg ->
              Fmt.failwith "%s:%d: %s" path lineno msg
          in
          go (lineno + 1) (ev :: acc)
      in
      go 1 [])

let print_events ~json events =
  if json then List.iter (fun e -> print_endline (Trace.to_json e)) events
  else List.iter (Format.printf "%a@." Trace.pp) events

(* --- record ------------------------------------------------------------- *)

let record topo_file n seed protocol dest_asn fails scenario_kind mrai output
    summary =
  let topo =
    match topo_file with
    | Some path -> Topo_io.load_relationships path
    | None -> Topo_gen.generate (Topo_gen.default_params ~seed ~n ())
  in
  let st = Random.State.make [| seed |] in
  let spec =
    match (dest_asn, fails) with
    | Some asn, (_ :: _ as links) ->
      {
        Scenario.dest = vertex_of_asn_exn topo asn;
        events =
          List.map
            (fun (a, b) ->
              Scenario.Fail_link
                (vertex_of_asn_exn topo a, vertex_of_asn_exn topo b))
            links;
        detect_delay = None;
      }
    | Some _, [] | None, _ -> begin
      match scenario_kind with
      | `Single -> Scenario.single_link st topo
      | `Two_apart -> Scenario.two_links_apart st topo
      | `Two_shared -> Scenario.two_links_shared st topo
      | `Node -> Scenario.node_failure st topo
      | `Policy -> Scenario.policy_withdraw st topo
    end
  in
  (* record into memory (so --summary can reconstruct the timeline), then
     write the JSONL file from the buffer *)
  let trace = Trace.memory () in
  let r = Runner.run ~seed ~mrai_base:mrai ~trace protocol topo spec in
  let events = Trace.events trace in
  (match output with
  | None -> print_events ~json:true events
  | Some path ->
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        List.iter
          (fun e ->
            output_string oc (Trace.to_json e);
            output_char oc '\n')
          events);
    Format.eprintf "wrote %d events to %s (%s, %a)@." (List.length events)
      path
      (Runner.protocol_name protocol)
      (Scenario.pp_spec topo) spec);
  if summary then begin
    match r.Runner.timeline with
    | Some tl -> Format.printf "%a@." Timeline.pp tl
    | None -> ()
  end;
  0

(* --- filter ------------------------------------------------------------- *)

let filter file ases links kinds from_t until_t json =
  let events = load_trace file in
  let link_matches (a, b) = function
    | Trace.Link (u, v) -> (u = a && v = b) || (u = b && v = a)
    | Trace.Net | Trace.Node _ -> false
  in
  let keep e =
    (ases = [] || List.exists (Trace.mentions_node e) ases)
    && (links = [] || List.exists (fun l -> link_matches l e.Trace.loc) links)
    && (kinds = [] || List.mem (Trace.kind_label e) kinds)
    && (match from_t with None -> true | Some t -> e.Trace.vtime >= t)
    && match until_t with None -> true | Some t -> e.Trace.vtime <= t
  in
  print_events ~json (List.filter keep events);
  0

(* --- timeline ----------------------------------------------------------- *)

let timeline file json =
  let tl = Timeline.of_events (load_trace file) in
  if json then print_endline (Timeline.to_json tl)
  else Format.printf "%a@." Timeline.pp tl;
  0

(* --- diff --------------------------------------------------------------- *)

let diff file_a file_b json =
  let a = Trace.normalize (load_trace file_a)
  and b = Trace.normalize (load_trace file_b) in
  let ds = Trace.diff a b in
  if ds = [] then begin
    if not json then Format.printf "traces identical (%d events)@."
        (List.length a);
    0
  end
  else begin
    if json then begin
      let side = function
        | None -> "null"
        | Some e -> Trace.to_json e
      in
      print_endline
        ("["
        ^ String.concat ",\n "
            (List.map
               (fun (i, l, r) ->
                 Printf.sprintf "{\"index\": %d, \"left\": %s, \"right\": %s}"
                   i (side l) (side r))
               ds)
        ^ "]")
    end
    else
      List.iter
        (fun (i, l, r) ->
          Format.printf "@[<v 2>#%d:@ " i;
          (match l with
          | Some e -> Format.printf "< %a@ " Trace.pp e
          | None -> Format.printf "< (absent)@ ");
          (match r with
          | Some e -> Format.printf "> %a" Trace.pp e
          | None -> Format.printf "> (absent)");
          Format.printf "@]@.")
        ds;
    1
  end

(* --- command line ------------------------------------------------------- *)

let trace_file_pos n doc =
  Arg.(required & pos n (some file) None & info [] ~docv:"TRACE" ~doc)

let json_flag =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit JSONL instead of prose.")

let record_cmd =
  let topo_file =
    Arg.(
      value
      & opt (some file) None
      & info [ "topo" ] ~docv:"FILE" ~doc:"CAIDA relationship file to load.")
  in
  let n =
    Arg.(
      value & opt int 1000
      & info [ "n" ] ~docv:"N" ~doc:"Generated topology size (without --topo).")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"S" ~doc:"RNG seed.")
  in
  let protocol =
    Arg.(
      value
      & opt protocol_conv Runner.Stamp
      & info [ "protocol" ] ~docv:"P"
          ~doc:"Protocol: bgp, rbgp, rbgp-norci or stamp.")
  in
  let dest =
    Arg.(
      value
      & opt (some int) None
      & info [ "dest" ] ~docv:"ASN"
          ~doc:"Destination AS (random multi-homed AS if omitted).")
  in
  let fails =
    Arg.(
      value & opt_all link_conv []
      & info [ "fail" ] ~docv:"ASN:ASN"
          ~doc:"Link to fail after convergence (repeatable; needs --dest).")
  in
  let scenario =
    Arg.(
      value & opt scenario_conv `Single
      & info [ "scenario" ] ~docv:"KIND"
          ~doc:
            "Random scenario kind: single, two-apart, two-shared, node or \
             policy.")
  in
  let mrai =
    Arg.(
      value & opt float 30.
      & info [ "mrai" ] ~docv:"SECONDS" ~doc:"MRAI base interval.")
  in
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write the JSONL trace here (stdout if omitted).")
  in
  let summary =
    Arg.(
      value & flag
      & info [ "summary" ]
          ~doc:"Also print the reconstructed convergence timeline.")
  in
  let doc = "run one scenario with tracing on and dump the JSONL trace" in
  Cmd.v (Cmd.info "record" ~doc)
    Term.(
      const record $ topo_file $ n $ seed $ protocol $ dest $ fails $ scenario
      $ mrai $ output $ summary)

let filter_cmd =
  let ases =
    Arg.(
      value & opt_all int []
      & info [ "as" ] ~docv:"ASN"
          ~doc:"Keep events mentioning this AS (repeatable, OR).")
  in
  let links =
    Arg.(
      value & opt_all link_conv []
      & info [ "link" ] ~docv:"ASN:ASN"
          ~doc:"Keep events on this link, either direction (repeatable, OR).")
  in
  let kinds =
    Arg.(
      value & opt_all string []
      & info [ "kind" ] ~docv:"KIND"
          ~doc:
            "Keep events of this kind (repeatable, OR): enqueue, deliver, \
             drop, mrai-defer, mrai-flush, decision, recolor, session-reset, \
             session-up, scenario, status or phase.")
  in
  let from_t =
    Arg.(
      value
      & opt (some float) None
      & info [ "from" ] ~docv:"T" ~doc:"Drop events before virtual time T.")
  in
  let until_t =
    Arg.(
      value
      & opt (some float) None
      & info [ "until" ] ~docv:"T" ~doc:"Drop events after virtual time T.")
  in
  let doc = "select events from a JSONL trace" in
  Cmd.v (Cmd.info "filter" ~doc)
    Term.(
      const filter
      $ trace_file_pos 0 "JSONL trace file."
      $ ases $ links $ kinds $ from_t $ until_t $ json_flag)

let timeline_cmd =
  let doc = "reconstruct the convergence timeline from a JSONL trace" in
  Cmd.v (Cmd.info "timeline" ~doc)
    Term.(const timeline $ trace_file_pos 0 "JSONL trace file." $ json_flag)

let diff_cmd =
  let doc =
    "compare two JSONL traces after normalisation; exit 1 when they differ"
  in
  Cmd.v (Cmd.info "diff" ~doc)
    Term.(
      const diff
      $ trace_file_pos 0 "Left trace."
      $ trace_file_pos 1 "Right trace."
      $ json_flag)

let cmd =
  let doc = "record, inspect and compare simulation traces" in
  Cmd.group (Cmd.info "stamp_trace" ~doc)
    [ record_cmd; filter_cmd; timeline_cmd; diff_cmd ]

let () = exit (Cmd.eval' cmd)
