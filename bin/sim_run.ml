(* Run one failure scenario under one protocol and report the paper's
   metrics (transient problems, convergence delay, message counts).

     # random single-link scenario under STAMP on a generated topology
     dune exec bin/sim_run.exe -- --protocol stamp -n 1000

     # explicit scenario on a CAIDA relationship file
     dune exec bin/sim_run.exe -- --topo rel.txt --dest 64500 \
         --fail 64500:3356 --protocol bgp *)

open Cmdliner

let protocol_conv =
  let parse = function
    | "bgp" -> Ok Runner.Bgp
    | "rbgp" -> Ok Runner.Rbgp
    | "rbgp-norci" -> Ok Runner.Rbgp_no_rci
    | "stamp" -> Ok Runner.Stamp
    | s -> Error (`Msg (Printf.sprintf "unknown protocol %S" s))
  in
  let print ppf p = Format.pp_print_string ppf (Runner.protocol_name p) in
  Arg.conv (parse, print)

let link_conv =
  let parse s =
    match String.split_on_char ':' s with
    | [ a; b ] -> begin
      match (int_of_string_opt a, int_of_string_opt b) with
      | Some a, Some b -> Ok (a, b)
      | _ -> Error (`Msg "expected ASN:ASN")
    end
    | _ -> Error (`Msg "expected ASN:ASN")
  in
  let print ppf (a, b) = Format.fprintf ppf "%d:%d" a b in
  Arg.conv (parse, print)

let scenario_conv =
  let parse = function
    | "single" -> Ok `Single
    | "two-apart" -> Ok `Two_apart
    | "two-shared" -> Ok `Two_shared
    | "node" -> Ok `Node
    | "policy" -> Ok `Policy
    | s -> Error (`Msg (Printf.sprintf "unknown scenario %S" s))
  in
  let print ppf s =
    Format.pp_print_string ppf
      (match s with
      | `Single -> "single"
      | `Two_apart -> "two-apart"
      | `Two_shared -> "two-shared"
      | `Node -> "node"
      | `Policy -> "policy")
  in
  Arg.conv (parse, print)

let vertex_of_asn_exn topo asn =
  match Topology.vertex_of_asn topo asn with
  | Some v -> v
  | None -> Fmt.failwith "ASN %d not in topology" asn

let run topo_file n seed protocol dest_asn fails scenario_kind mrai =
  let topo =
    match topo_file with
    | Some path -> Topo_io.load_relationships path
    | None -> Topo_gen.generate (Topo_gen.default_params ~seed ~n ())
  in
  Format.printf "topology: %a@." Topology.pp_stats topo;
  let st = Random.State.make [| seed |] in
  let spec =
    match (dest_asn, fails) with
    | Some asn, (_ :: _ as links) ->
      {
        Scenario.dest = vertex_of_asn_exn topo asn;
        events =
          List.map
            (fun (a, b) ->
              Scenario.Fail_link
                (vertex_of_asn_exn topo a, vertex_of_asn_exn topo b))
            links;
        detect_delay = None;
      }
    | Some _, [] | None, _ -> begin
      match scenario_kind with
      | `Single -> Scenario.single_link st topo
      | `Two_apart -> Scenario.two_links_apart st topo
      | `Two_shared -> Scenario.two_links_shared st topo
      | `Node -> Scenario.node_failure st topo
      | `Policy -> Scenario.policy_withdraw st topo
    end
  in
  Format.printf "scenario: %a@." (Scenario.pp_spec topo) spec;
  let r = Runner.run ~seed ~mrai_base:mrai protocol topo spec in
  Format.printf "protocol:            %s@." (Runner.protocol_name protocol);
  Format.printf "transient problems:  %d ASes@." r.Runner.transient_count;
  Format.printf "disconnected after:  %d ASes@." r.Runner.broken_after;
  Format.printf "convergence delay:   %.2f s@." r.Runner.convergence_delay;
  Format.printf "messages (initial):  %d@." r.Runner.messages_initial;
  Format.printf "messages (event):    %d@." r.Runner.messages_event;
  0

let topo_file =
  Arg.(
    value
    & opt (some file) None
    & info [ "topo" ] ~docv:"FILE" ~doc:"CAIDA relationship file to load.")

let n =
  Arg.(
    value & opt int 1000
    & info [ "n" ] ~docv:"N" ~doc:"Generated topology size (without --topo).")

let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"S" ~doc:"RNG seed.")

let protocol =
  Arg.(
    value
    & opt protocol_conv Runner.Stamp
    & info [ "protocol" ] ~docv:"P"
        ~doc:"Protocol: bgp, rbgp, rbgp-norci or stamp.")

let dest =
  Arg.(
    value
    & opt (some int) None
    & info [ "dest" ] ~docv:"ASN"
        ~doc:"Destination AS (random multi-homed AS if omitted).")

let fails =
  Arg.(
    value & opt_all link_conv []
    & info [ "fail" ] ~docv:"ASN:ASN"
        ~doc:"Link to fail after convergence (repeatable; needs --dest).")

let scenario =
  Arg.(
    value & opt scenario_conv `Single
    & info [ "scenario" ] ~docv:"KIND"
        ~doc:"Random scenario kind: single, two-apart, two-shared, node or policy.")

let mrai =
  Arg.(
    value & opt float 30.
    & info [ "mrai" ] ~docv:"SECONDS" ~doc:"MRAI base interval.")

let cmd =
  let doc = "simulate a routing failure under BGP, R-BGP or STAMP" in
  Cmd.v
    (Cmd.info "sim_run" ~doc)
    Term.(
      const run $ topo_file $ n $ seed $ protocol $ dest $ fails $ scenario
      $ mrai)

let () = exit (Cmd.eval' cmd)
