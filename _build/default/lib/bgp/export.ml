let allowed ~route_cls ~to_rel =
  match (route_cls : Relationship.t) with
  | Customer | Sibling -> true
  | Peer | Provider -> begin
    match (to_rel : Relationship.t) with
    | Customer | Sibling -> true
    | Peer | Provider -> false
  end

let exportable (r : Route.t) ~to_rel = allowed ~route_cls:r.cls ~to_rel
