(** The valley-free export policy (Gao–Rexford): routes learned from a
    customer (or self-originated) are announced to everyone; routes learned
    from a peer or provider are announced only to customers (and
    siblings). *)

val allowed : route_cls:Relationship.t -> to_rel:Relationship.t -> bool
(** [allowed ~route_cls ~to_rel] — may a route of class [route_cls]
    (relationship of the neighbour it was learned from; [Customer] for
    self-originated routes) be exported to a neighbour whose relationship
    is [to_rel]? *)

val exportable : Route.t -> to_rel:Relationship.t -> bool
(** {!allowed} applied to a route. *)
