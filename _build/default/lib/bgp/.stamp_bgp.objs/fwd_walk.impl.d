lib/bgp/fwd_walk.ml: Array Format
