lib/bgp/mrai.ml: Random
