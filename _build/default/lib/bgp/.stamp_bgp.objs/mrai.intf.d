lib/bgp/mrai.mli: Random
