lib/bgp/export.ml: Relationship Route
