lib/bgp/decision.ml: Hashtbl List Relationship Route
