lib/bgp/export.mli: Relationship Route
