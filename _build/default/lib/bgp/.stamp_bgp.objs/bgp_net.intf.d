lib/bgp/bgp_net.mli: Fwd_walk Route Sim Static_route Topology
