lib/bgp/link_state.mli: Topology
