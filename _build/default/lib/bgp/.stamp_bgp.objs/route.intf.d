lib/bgp/route.mli: Format Relationship Topology
