lib/bgp/route.ml: Format List Relationship Topology
