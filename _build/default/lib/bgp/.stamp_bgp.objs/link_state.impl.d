lib/bgp/link_state.ml: Array Hashtbl List
