lib/bgp/bgp_net.ml: Array Channel Decision Export Fwd_walk Hashtbl Link_state List Mrai Route Sim Static_route Topology
