lib/bgp/decision.mli: Hashtbl Route Topology
