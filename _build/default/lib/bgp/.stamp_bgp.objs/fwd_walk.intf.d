lib/bgp/fwd_walk.mli: Format Topology
