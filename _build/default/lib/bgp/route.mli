(** Routes as stored in a router's Adj-RIB-In.

    A route held by router [v] and learned from neighbour [u] has
    [as_path = u :: ... :: dest]; its [cls] is the business relationship of
    [u] as seen from [v], which determines local preference
    (prefer-customer). The destination's own route has an empty path and
    class [Customer]. *)

type t = {
  as_path : Topology.vertex list;
      (** first element is the neighbour the route was learned from; last
          is the destination; empty only for the destination's own route *)
  cls : Relationship.t;
      (** relationship of the first path element as seen from the route's
          owner; [Customer] for a self-originated route *)
}

val origin : t
(** The destination's route to itself: empty path, customer class. *)

val learned_from : t -> Topology.vertex option
(** Head of the path; [None] for the origin route. *)

val length : t -> int
(** AS-path length. *)

val contains : t -> Topology.vertex -> bool
(** Loop check: whether a vertex appears in the path. *)

val pp : Format.formatter -> t -> unit
