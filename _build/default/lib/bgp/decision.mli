(** The BGP decision process shared by every protocol engine in this
    repository: higher local preference (prefer-customer), then shorter AS
    path, then lowest next-hop vertex. Matches {!Static_route.better}. *)

val better : Route.t -> Route.t -> bool
(** [better a b] iff [a] beats [b]. Total and antisymmetric for routes with
    distinct next hops; the origin route beats everything. *)

val select : Route.t list -> Route.t option
(** Best route of a candidate list ([None] on the empty list). *)

val select_tbl : (Topology.vertex, Route.t) Hashtbl.t -> Route.t option
(** Best route among an Adj-RIB-In table's values. Deterministic regardless
    of hash order. *)
