type t = { as_path : Topology.vertex list; cls : Relationship.t }

let origin = { as_path = []; cls = Relationship.Customer }
let learned_from r = match r.as_path with [] -> None | nh :: _ -> Some nh
let length r = List.length r.as_path
let contains r v = List.mem v r.as_path

let pp ppf r =
  Format.fprintf ppf "[%a] via %a"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
       Format.pp_print_int)
    r.as_path Relationship.pp r.cls
