let better (a : Route.t) (b : Route.t) =
  let pa = Relationship.local_pref a.cls and pb = Relationship.local_pref b.cls in
  if pa <> pb then pa > pb
  else
    let la = Route.length a and lb = Route.length b in
    if la <> lb then la < lb
    else
      match (Route.learned_from a, Route.learned_from b) with
      | None, _ -> true
      | Some _, None -> false
      | Some x, Some y -> x < y

let select = function
  | [] -> None
  | r :: rest ->
    Some (List.fold_left (fun acc r -> if better r acc then r else acc) r rest)

let select_tbl tbl = select (Hashtbl.fold (fun _ r acc -> r :: acc) tbl [])
