(** Static computation of the unique stable BGP routing under the paper's
    policy assumptions (Gao–Rexford): prefer-customer route selection and
    valley-free export, with shortest-AS-path then lowest-next-hop
    tie-breaking.

    Under these policies BGP is safe and converges to a unique fixed point
    [Gao & Rexford, SIGMETRICS 2000]; this module computes that fixed point
    directly in three phases (customer routes up the provider DAG, then
    peer routes, then provider routes in increasing length order), without
    running the event-driven simulator. It serves as

    - the ground-truth oracle the simulator is tested against, and
    - the fast substrate for static experiments (Figure 1, partial
      deployment).

    The tie-breaking order — higher local-pref (customer 100 / peer 90 /
    provider 80), then shorter AS path, then lowest next-hop vertex —
    matches {!Stamp_bgp.Decision} exactly. *)

type entry = {
  as_path : Topology.vertex list;
      (** AS-level path from (excluding) the route owner to (including) the
          destination; empty for the destination itself *)
  cls : Relationship.t;
      (** relationship of the neighbour the route was learned from;
          [Customer] for the destination's own entry *)
}

type table = entry option array
(** One optional entry per vertex ([None] = destination unreachable, which
    cannot happen when the topology satisfies {!Topology.all_reach_tier1}). *)

val compute : Topology.t -> dest:Topology.vertex -> table
(** Stable routing towards [dest] for every AS.
    @raise Invalid_argument if the topology contains sibling links (the
    oracle's phase structure assumes pure customer/peer/provider
    relationships, which both the generator and the paper do). *)

val next_hop : table -> Topology.vertex -> Topology.vertex option
(** First AS of the entry's path, if any. [None] for the destination itself
    and for unreachable vertices. *)

val path_from : table -> Topology.vertex -> Topology.vertex list option
(** Full forwarding path including the source vertex itself:
    [Some (v :: as_path)] — or [Some [v]] for the destination. *)

val pref : entry -> int
(** Local preference of an entry, per {!Relationship.local_pref}. *)

val better : entry -> entry -> bool
(** [better a b] iff [a] wins the decision process against [b]:
    higher pref, then shorter path, then lowest next hop. The destination's
    own entry beats everything. *)
