(** Uphill-path machinery over the provider DAG: random locked-blue walks,
    blocked reachability and exhaustive enumeration.

    These are the building blocks of the paper's Section 6.1 analysis
    (Figure 1): a "locked blue path" is an uphill path from an origin to a
    tier-1 AS obtained by letting each AS choose one provider; the path is
    {e good} when a node-disjoint uphill path from the origin to another
    tier-1 AS still exists. *)

val random_uphill_path :
  Random.State.t -> Topology.t -> src:Topology.vertex -> Topology.vertex list
(** Walk from [src] to a tier-1 AS, choosing uniformly at random among the
    current AS's providers at each step — exactly the distribution induced
    by every AS picking its locked blue provider at random. The result
    starts with [src] and ends at a tier-1 vertex ([[src]] itself when
    [src] is tier-1). Termination is guaranteed on acyclic provider DAGs
    where every AS reaches tier-1. *)

val reaches_tier1_avoiding :
  Topology.t -> src:Topology.vertex -> blocked:(Topology.vertex -> bool) -> bool
(** Whether [src] has an uphill (customer→provider) path to some tier-1 AS
    that traverses no blocked vertex. [src] itself is exempt from the
    blocking predicate; a blocked tier-1 does not count as a valid
    endpoint. *)

val exists_disjoint_uphill :
  Topology.t -> src:Topology.vertex -> Topology.vertex list -> bool
(** [exists_disjoint_uphill t ~src path] holds when an uphill path from
    [src] to a tier-1 AS exists that shares no vertex with [path] except
    [src] itself — the "good locked blue path" test. [path] must start at
    [src]. *)

val enumerate_uphill_paths :
  ?limit:int -> Topology.t -> src:Topology.vertex -> Topology.vertex list list
(** All uphill paths from [src] to tier-1 ASes (each path starts at [src]
    and ends at a tier-1 vertex). Exponential in general: raises
    [Invalid_argument] once more than [limit] paths (default 100_000) have
    been produced. Intended for tests and small graphs, where it
    cross-checks the Monte-Carlo Φ estimates. *)

val count_uphill_paths : Topology.t -> src:Topology.vertex -> float
(** Number of uphill paths from [src] to tier-1 ASes, computed by dynamic
    programming over the provider DAG (as a float: counts can exceed
    integer range on large graphs). *)
