(** Longest-prefix-match forwarding tables: a binary trie from IPv4
    prefixes to arbitrary values, as used by a router's FIB. *)

type 'a t
(** Immutable trie. *)

val empty : 'a t

val add : Prefix.t -> 'a -> 'a t -> 'a t
(** Insert or replace the entry for a prefix. *)

val remove : Prefix.t -> 'a t -> 'a t
(** Remove the exact entry for a prefix (no-op if absent). *)

val find : Prefix.t -> 'a t -> 'a option
(** Exact-match lookup. *)

val lookup : 'a t -> int32 -> (Prefix.t * 'a) option
(** Longest-prefix match for an address: the most specific entry whose
    prefix contains it. *)

val of_list : (Prefix.t * 'a) list -> 'a t
val to_list : 'a t -> (Prefix.t * 'a) list
(** All entries in increasing {!Prefix.compare} order. *)

val cardinal : 'a t -> int
