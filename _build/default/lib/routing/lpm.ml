(* Binary trie on address bits, most significant first. A node may carry a
   value (an entry whose prefix ends there) and two children for the next
   bit. *)
type 'a t = Leaf | Node of { value : 'a option; zero : 'a t; one : 'a t }

let empty = Leaf

let node value zero one =
  match (value, zero, one) with
  | None, Leaf, Leaf -> Leaf
  | _ -> Node { value; zero; one }

let bit addr i = Int32.logand (Int32.shift_right_logical addr (31 - i)) 1l = 1l

let add prefix v t =
  let addr = Prefix.network prefix and len = Prefix.length prefix in
  let rec go t depth =
    match t with
    | Leaf ->
      if depth = len then node (Some v) Leaf Leaf
      else if bit addr depth then node None Leaf (go Leaf (depth + 1))
      else node None (go Leaf (depth + 1)) Leaf
    | Node { value; zero; one } ->
      if depth = len then node (Some v) zero one
      else if bit addr depth then node value zero (go one (depth + 1))
      else node value (go zero (depth + 1)) one
  in
  go t 0

let remove prefix t =
  let addr = Prefix.network prefix and len = Prefix.length prefix in
  let rec go t depth =
    match t with
    | Leaf -> Leaf
    | Node { value; zero; one } ->
      if depth = len then node None zero one
      else if bit addr depth then node value zero (go one (depth + 1))
      else node value (go zero (depth + 1)) one
  in
  go t 0

let find prefix t =
  let addr = Prefix.network prefix and len = Prefix.length prefix in
  let rec go t depth =
    match t with
    | Leaf -> None
    | Node { value; zero; one } ->
      if depth = len then value
      else if bit addr depth then go one (depth + 1)
      else go zero (depth + 1)
  in
  go t 0

let lookup t addr =
  let rec go t depth best =
    match t with
    | Leaf -> best
    | Node { value; zero; one } ->
      let best =
        match value with
        | Some v -> Some (Prefix.make addr depth, v)
        | None -> best
      in
      if depth = 32 then best
      else if bit addr depth then go one (depth + 1) best
      else go zero (depth + 1) best
  in
  go t 0 None

let of_list entries =
  List.fold_left (fun t (p, v) -> add p v t) empty entries

let to_list t =
  (* walk the trie reconstructing prefixes *)
  let rec go t depth addr acc =
    match t with
    | Leaf -> acc
    | Node { value; zero; one } ->
      let acc =
        go one (depth + 1)
          (Int32.logor addr (Int32.shift_left 1l (31 - depth)))
          acc
      in
      let acc = go zero (depth + 1) addr acc in
      match value with
      | Some v -> (Prefix.make addr depth, v) :: acc
      | None -> acc
  in
  go t 0 0l [] |> List.sort (fun (p, _) (q, _) -> Prefix.compare p q)

let cardinal t = List.length (to_list t)
