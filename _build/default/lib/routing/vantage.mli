(** Synthetic route-collector feeds: the AS paths that vantage-point ASes
    would contribute to a RouteViews-style collector, computed from the
    stable routing.

    Combined with {!Gao_inference} this closes the paper's data pipeline
    without real table dumps: plant a topology, export what k vantage ASes
    see, infer the relationships back, measure agreement. *)

val paths_from : Topology.t -> vantage:Topology.vertex -> int list list
(** The vantage AS's stable path (as an ASN list, vantage first, origin
    last) towards every other AS. *)

val collect : Topology.t -> vantage:Topology.vertex list -> int list list
(** Union of {!paths_from} over several vantage points, in order. *)

val default_vantages : Topology.t -> count:int -> Topology.vertex list
(** A deterministic spread of vantage ASes: the [count] highest-degree
    ASes (route collectors peer with well-connected networks).
    @raise Invalid_argument if [count] exceeds the AS count. *)
