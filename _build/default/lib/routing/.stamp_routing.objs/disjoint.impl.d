lib/routing/disjoint.ml: Array Float Int List Queue Random Set Topology
