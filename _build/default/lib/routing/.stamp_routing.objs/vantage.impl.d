lib/routing/vantage.ml: Array List Static_route Topology
