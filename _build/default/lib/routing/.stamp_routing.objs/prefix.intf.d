lib/routing/prefix.mli: Format Random
