lib/routing/static_route.ml: Array List Option Queue Relationship Set Topology
