lib/routing/lpm.ml: Int32 List Prefix
