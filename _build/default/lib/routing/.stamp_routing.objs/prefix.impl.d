lib/routing/prefix.ml: Format Int32 Printf Random Stdlib String
