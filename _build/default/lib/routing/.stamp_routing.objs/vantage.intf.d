lib/routing/vantage.mli: Topology
