lib/routing/disjoint.mli: Random Topology
