lib/routing/static_route.mli: Relationship Topology
