lib/routing/lpm.mli: Prefix
