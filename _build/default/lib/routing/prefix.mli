(** IPv4 prefixes — the objects BGP actually announces.

    The simulators in this repository are per-destination-AS (routing under
    Gao–Rexford policies is independent across prefixes), but the
    data-plane machinery ({!Lpm} forwarding tables, the {!Fleet}
    any-to-any forwarding layer, the examples) works on real prefixes and
    addresses. *)

type t
(** A prefix in canonical form: host bits are zero. *)

val make : int32 -> int -> t
(** [make addr len] with [len] in [[0, 32]]; host bits of [addr] are
    silently cleared. @raise Invalid_argument on a bad length. *)

val of_string : string -> t
(** Parse ["a.b.c.d/len"] (or a bare address, read as a /32).
    @raise Invalid_argument on malformed input. *)

val to_string : t -> string

val addr_of_string : string -> int32
(** Parse a dotted-quad address. @raise Invalid_argument if malformed. *)

val addr_to_string : int32 -> string

val network : t -> int32
val length : t -> int

val mem : t -> int32 -> bool
(** Whether an address falls inside the prefix. *)

val subsumes : t -> t -> bool
(** [subsumes p q] iff every address of [q] lies in [p] (and [p] is no
    longer than [q]). *)

val compare : t -> t -> int
(** Total order: by network address, then by length. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val of_asn : int -> t
(** Deterministic /24 assigned to an AS number for simulation purposes:
    ASN [a] owns [10.(a lsr 8).(a land 255).0/24]. Distinct ASNs below
    65536 receive disjoint prefixes.
    @raise Invalid_argument for ASNs outside [[1, 65535]]. *)

val random_member : Random.State.t -> t -> int32
(** A uniformly random address inside the prefix. *)
