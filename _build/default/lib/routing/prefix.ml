type t = { network : int32; length : int }

(* mask with the top [len] bits set *)
let mask_of len =
  if len = 0 then 0l else Int32.shift_left (-1l) (32 - len)

let make addr len =
  if len < 0 || len > 32 then invalid_arg "Prefix.make: length out of [0, 32]";
  { network = Int32.logand addr (mask_of len); length = len }

let addr_of_string s =
  match String.split_on_char '.' s with
  | [ a; b; c; d ] -> begin
    let byte x =
      match int_of_string_opt x with
      | Some v when v >= 0 && v <= 255 -> v
      | _ -> invalid_arg (Printf.sprintf "Prefix.addr_of_string: %S" s)
    in
    let a = byte a and b = byte b and c = byte c and d = byte d in
    Int32.of_int ((a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d)
  end
  | _ -> invalid_arg (Printf.sprintf "Prefix.addr_of_string: %S" s)

let addr_to_string addr =
  let i = Int32.to_int (Int32.logand addr 0xFFFFFFFFl) land 0xFFFFFFFF in
  Printf.sprintf "%d.%d.%d.%d"
    ((i lsr 24) land 255)
    ((i lsr 16) land 255)
    ((i lsr 8) land 255)
    (i land 255)

let of_string s =
  match String.index_opt s '/' with
  | None -> make (addr_of_string s) 32
  | Some i ->
    let addr = addr_of_string (String.sub s 0 i) in
    let len =
      match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
      | Some l -> l
      | None -> invalid_arg (Printf.sprintf "Prefix.of_string: %S" s)
    in
    make addr len

let to_string p = Printf.sprintf "%s/%d" (addr_to_string p.network) p.length
let network p = p.network
let length p = p.length

let mem p addr = Int32.logand addr (mask_of p.length) = p.network

let subsumes p q =
  p.length <= q.length && Int32.logand q.network (mask_of p.length) = p.network

let compare a b =
  (* compare network addresses as unsigned *)
  let ua = Int32.to_int (Int32.logand a.network 0xFFFFFFFFl) land 0xFFFFFFFF in
  let ub = Int32.to_int (Int32.logand b.network 0xFFFFFFFFl) land 0xFFFFFFFF in
  if ua <> ub then Stdlib.compare ua ub else Stdlib.compare a.length b.length

let equal a b = compare a b = 0
let pp ppf p = Format.pp_print_string ppf (to_string p)

let of_asn asn =
  if asn < 1 || asn > 65535 then
    invalid_arg "Prefix.of_asn: ASN outside [1, 65535]";
  let b = (asn lsr 8) land 255 and c = asn land 255 in
  make (Int32.of_int ((10 lsl 24) lor (b lsl 16) lor (c lsl 8))) 24

let random_member st p =
  let host_bits = 32 - p.length in
  if host_bits = 0 then p.network
  else
    let host =
      if host_bits >= 30 then Random.State.bits st
      else Random.State.int st (1 lsl host_bits)
    in
    Int32.logor p.network (Int32.of_int (host land ((1 lsl host_bits) - 1)))
