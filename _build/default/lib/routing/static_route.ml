type entry = { as_path : Topology.vertex list; cls : Relationship.t }
type table = entry option array

let pref e = Relationship.local_pref e.cls
let path_len e = List.length e.as_path

let next_hop_of_entry e =
  match e.as_path with [] -> None | nh :: _ -> Some nh

let better a b =
  (* destination's own entry has an empty path and wins on length within
     the top preference class *)
  if pref a <> pref b then pref a > pref b
  else if path_len a <> path_len b then path_len a < path_len b
  else
    match (next_hop_of_entry a, next_hop_of_entry b) with
    | None, _ -> true
    | Some _, None -> false
    | Some x, Some y -> x < y

(* Dijkstra priority queue keyed by (length, next_hop); a simple module
   over Set is enough at this scale. *)
module Pq = Set.Make (struct
  type t = int * int * int (* length, next_hop, vertex *)

  let compare = compare
end)

let compute t ~dest =
  let n = Topology.num_vertices t in
  (* reject sibling links: the phase structure below assumes none *)
  for v = 0 to n - 1 do
    Array.iter
      (fun (_, r) ->
        if Relationship.equal r Relationship.Sibling then
          invalid_arg "Static_route.compute: sibling links unsupported")
      (Topology.neighbors t v)
  done;
  (* Per-vertex best length and next hop for the currently decided class;
     cls.(v) records which phase decided v. *)
  let best_len = Array.make n max_int in
  let best_nh = Array.make n (-1) in
  let best_cls = Array.make n None in
  (* Phase 1: customer routes = BFS from dest up customer→provider links.
     A provider learns from its customer; the customer only exports if its
     own best is a customer route, which in this phase is exactly the BFS
     tree. Tie-break on lowest next hop is realised by scanning customers
     in a second pass once distances are known. *)
  let dist_up = Array.make n max_int in
  dist_up.(dest) <- 0;
  let queue = Queue.create () in
  Queue.add dest queue;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    Array.iter
      (fun p ->
        if dist_up.(p) = max_int then begin
          dist_up.(p) <- dist_up.(v) + 1;
          Queue.add p queue
        end)
      (Topology.providers t v)
  done;
  best_len.(dest) <- 0;
  best_cls.(dest) <- Some Relationship.Customer;
  for v = 0 to n - 1 do
    if v <> dest && dist_up.(v) < max_int then begin
      (* pick the lowest-id customer at distance dist_up(v) - 1 *)
      Array.iter
        (fun c ->
          if dist_up.(c) = dist_up.(v) - 1 && (best_nh.(v) < 0 || c < best_nh.(v))
          then best_nh.(v) <- c)
        (Topology.customers t v);
      best_len.(v) <- dist_up.(v);
      best_cls.(v) <- Some Relationship.Customer
    end
  done;
  (* Phase 2: peer routes, for vertices with no customer route. A peer
     exports only customer routes (and the destination exports its own). *)
  for v = 0 to n - 1 do
    if v <> dest && best_cls.(v) = None then
      Array.iter
        (fun p ->
          if p = dest || dist_up.(p) < max_int then begin
            let len = (if p = dest then 0 else dist_up.(p)) + 1 in
            let better_nh =
              best_cls.(v) <> None
              && (len, p) < (best_len.(v), best_nh.(v))
            in
            if best_cls.(v) = None || better_nh then begin
              best_len.(v) <- len;
              best_nh.(v) <- p;
              best_cls.(v) <- Some Relationship.Peer
            end
          end)
        (Topology.peers t v)
  done;
  (* Phase 3: provider routes. Every vertex already decided (customer or
     peer class, or the destination) exports its best to its customers;
     undecided vertices take the provider route minimising
     (provider's best length + 1, provider id), where the provider's best
     may itself be a provider route — resolved in increasing length by
     Dijkstra. *)
  let pq = ref Pq.empty in
  let push v = pq := Pq.add (best_len.(v), max 0 best_nh.(v), v) !pq in
  for v = 0 to n - 1 do
    if best_cls.(v) <> None then push v
  done;
  let settled = Array.make n false in
  while not (Pq.is_empty !pq) do
    let ((len, _, u) as elt) = Pq.min_elt !pq in
    pq := Pq.remove elt !pq;
    if not settled.(u) then begin
      settled.(u) <- true;
      (* u's best is now final; offer it to u's customers that lack a
         customer/peer route *)
      Array.iter
        (fun v ->
          if
            (not settled.(v))
            && (best_cls.(v) = None || best_cls.(v) = Some Relationship.Provider)
          then begin
            let cand = (len + 1, u) in
            let current =
              if best_cls.(v) = Some Relationship.Provider then
                (best_len.(v), best_nh.(v))
              else (max_int, max_int)
            in
            if cand < current then begin
              best_len.(v) <- len + 1;
              best_nh.(v) <- u;
              best_cls.(v) <- Some Relationship.Provider;
              push v
            end
          end)
        (Topology.customers t u)
    end
  done;
  (* Reconstruct full AS paths by following next hops. *)
  let table : table = Array.make n None in
  let rec entry_of v =
    match table.(v) with
    | Some _ as e -> e
    | None ->
      if best_cls.(v) = None then None
      else if v = dest then begin
        let e = Some { as_path = []; cls = Relationship.Customer } in
        table.(v) <- e;
        e
      end
      else begin
        let nh = best_nh.(v) in
        match entry_of nh with
        | None -> None (* cannot happen: next hops are decided vertices *)
        | Some nh_entry ->
          let e =
            Some
              {
                as_path = nh :: nh_entry.as_path;
                cls = Option.get best_cls.(v);
              }
          in
          table.(v) <- e;
          e
      end
  in
  for v = 0 to n - 1 do
    ignore (entry_of v)
  done;
  table

let next_hop (table : table) v =
  match table.(v) with
  | None -> None
  | Some e -> ( match e.as_path with [] -> None | nh :: _ -> Some nh)

let path_from (table : table) v =
  match table.(v) with None -> None | Some e -> Some (v :: e.as_path)
