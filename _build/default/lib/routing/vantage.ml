let paths_from topo ~vantage =
  let paths = ref [] in
  Array.iter
    (fun dest ->
      if dest <> vantage then begin
        let table = Static_route.compute topo ~dest in
        match Static_route.path_from table vantage with
        | Some path when List.length path >= 2 ->
          paths := List.map (Topology.asn topo) path :: !paths
        | Some _ | None -> ()
      end)
    (Topology.vertices topo);
  List.rev !paths

(* one oracle computation per destination, shared by all vantage points *)
let collect topo ~vantage =
  let paths = ref [] in
  Array.iter
    (fun dest ->
      let table = Static_route.compute topo ~dest in
      List.iter
        (fun v ->
          if v <> dest then
            match Static_route.path_from table v with
            | Some path when List.length path >= 2 ->
              paths := List.map (Topology.asn topo) path :: !paths
            | Some _ | None -> ())
        vantage)
    (Topology.vertices topo);
  List.rev !paths

let default_vantages topo ~count =
  let n = Topology.num_vertices topo in
  if count > n then invalid_arg "Vantage.default_vantages: count > ASes";
  Array.to_list (Topology.vertices topo)
  |> List.sort (fun a b ->
         compare (Topology.degree topo b, a) (Topology.degree topo a, b))
  |> List.filteri (fun i _ -> i < count)
