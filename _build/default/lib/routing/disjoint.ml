let random_uphill_path st t ~src =
  let rec climb v acc =
    let provs = Topology.providers t v in
    if Array.length provs = 0 then List.rev (v :: acc)
    else
      let p = provs.(Random.State.int st (Array.length provs)) in
      climb p (v :: acc)
  in
  climb src []

let reaches_tier1_avoiding t ~src ~blocked =
  let n = Topology.num_vertices t in
  let visited = Array.make n false in
  let queue = Queue.create () in
  visited.(src) <- true;
  Queue.add src queue;
  let found = ref false in
  while (not !found) && not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    if Topology.is_tier1 t v && (v = src || not (blocked v)) then found := true
    else
      Array.iter
        (fun p ->
          if (not visited.(p)) && not (blocked p) then begin
            visited.(p) <- true;
            Queue.add p queue
          end)
        (Topology.providers t v)
  done;
  !found

let exists_disjoint_uphill t ~src path =
  (match path with
  | v :: _ when v = src -> ()
  | _ -> invalid_arg "Disjoint.exists_disjoint_uphill: path must start at src");
  let module S = Set.Make (Int) in
  let blocked_set = S.remove src (S.of_list path) in
  (* src must have at least one provider outside the path; the blocked
     predicate covers it, but a tier-1 src has no disjoint second path by
     definition (its "path" is itself). *)
  if Topology.is_tier1 t src then false
  else
    reaches_tier1_avoiding t ~src ~blocked:(fun v -> S.mem v blocked_set)

let enumerate_uphill_paths ?(limit = 100_000) t ~src =
  let results = ref [] in
  let count = ref 0 in
  let rec climb v acc =
    let provs = Topology.providers t v in
    if Array.length provs = 0 then begin
      incr count;
      if !count > limit then
        invalid_arg "Disjoint.enumerate_uphill_paths: limit exceeded";
      results := List.rev (v :: acc) :: !results
    end
    else Array.iter (fun p -> climb p (v :: acc)) provs
  in
  climb src [];
  List.rev !results

let count_uphill_paths t ~src =
  let n = Topology.num_vertices t in
  let memo = Array.make n nan in
  let rec count v =
    if Float.is_nan memo.(v) then begin
      let provs = Topology.providers t v in
      let total =
        if Array.length provs = 0 then 1.
        else Array.fold_left (fun acc p -> acc +. count p) 0. provs
      in
      memo.(v) <- total
    end;
    memo.(v)
  in
  count src
