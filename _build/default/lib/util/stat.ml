type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
}

let mean = function
  | [] -> nan
  | xs ->
    let sum = List.fold_left ( +. ) 0. xs in
    sum /. float_of_int (List.length xs)

let variance = function
  | [] | [ _ ] -> 0.
  | xs ->
    let m = mean xs in
    let sq = List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. xs in
    sq /. float_of_int (List.length xs)

let stddev xs = sqrt (variance xs)

let percentile p xs =
  if xs = [] then invalid_arg "Stat.percentile: empty sample";
  if p < 0. || p > 100. then invalid_arg "Stat.percentile: p out of [0,100]";
  let a = Array.of_list xs in
  Array.sort compare a;
  let n = Array.length a in
  if n = 1 then a.(0)
  else begin
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    let frac = rank -. float_of_int lo in
    (a.(lo) *. (1. -. frac)) +. (a.(hi) *. frac)
  end

let median xs = percentile 50. xs

let summarize xs =
  if xs = [] then invalid_arg "Stat.summarize: empty sample";
  {
    n = List.length xs;
    mean = mean xs;
    stddev = stddev xs;
    min = List.fold_left Float.min infinity xs;
    max = List.fold_left Float.max neg_infinity xs;
    median = median xs;
  }

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.4g sd=%.4g min=%.4g med=%.4g max=%.4g" s.n
    s.mean s.stddev s.min s.median s.max
