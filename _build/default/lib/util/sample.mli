(** Deterministic sampling helpers over an explicit [Random.State].

    All randomness in the repository flows through explicitly threaded
    [Random.State] values so that simulations and experiments are exactly
    reproducible from a seed. *)

val uniform : Random.State.t -> lo:float -> hi:float -> float
(** Uniform draw in [[lo, hi)]. @raise Invalid_argument if [hi < lo]. *)

val choose : Random.State.t -> 'a array -> 'a
(** Uniform choice from a non-empty array.
    @raise Invalid_argument on an empty array. *)

val choose_list : Random.State.t -> 'a list -> 'a
(** Uniform choice from a non-empty list.
    @raise Invalid_argument on an empty list. *)

val weighted_index : Random.State.t -> float array -> int
(** [weighted_index st w] draws index [i] with probability proportional to
    [w.(i)]. Weights must be non-negative with a positive sum.
    @raise Invalid_argument otherwise. *)

val shuffle : Random.State.t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick_distinct : Random.State.t -> int -> 'a array -> 'a list
(** [pick_distinct st k a] returns [k] elements drawn without replacement.
    @raise Invalid_argument if [k] exceeds the array length. *)
