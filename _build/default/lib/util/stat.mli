(** Basic descriptive statistics over float samples.

    All functions operating on possibly-empty inputs state their behaviour
    explicitly; none of them mutate their input. *)

type summary = {
  n : int;  (** number of samples *)
  mean : float;
  stddev : float;  (** population standard deviation; 0 when [n <= 1] *)
  min : float;
  max : float;
  median : float;
}
(** One-pass summary of a sample set. *)

val mean : float list -> float
(** Arithmetic mean. Returns [nan] on the empty list. *)

val variance : float list -> float
(** Population variance (divides by [n]). Returns [0.] when fewer than two
    samples are given. *)

val stddev : float list -> float
(** Square root of {!variance}. *)

val percentile : float -> float list -> float
(** [percentile p xs] returns the [p]-th percentile of [xs] using linear
    interpolation between closest ranks, with [p] in [[0., 100.]].
    @raise Invalid_argument on an empty list or [p] outside the range. *)

val median : float list -> float
(** [median xs = percentile 50. xs]. *)

val summarize : float list -> summary
(** Full {!summary} of the sample.
    @raise Invalid_argument on the empty list. *)

val pp_summary : Format.formatter -> summary -> unit
(** Human-readable one-line rendering of a {!summary}. *)
