type t = { sorted : float array }

let of_samples xs =
  if xs = [] then invalid_arg "Cdf.of_samples: empty sample";
  let sorted = Array.of_list xs in
  Array.sort compare sorted;
  { sorted }

let size t = Array.length t.sorted

(* Number of samples <= x, via binary search for the rightmost index with
   sorted.(i) <= x. *)
let count_le t x =
  let a = t.sorted in
  let n = Array.length a in
  let rec loop lo hi =
    (* invariant: all indices < lo are <= x; all >= hi are > x *)
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if a.(mid) <= x then loop (mid + 1) hi else loop lo mid
  in
  loop 0 n

let eval t x = float_of_int (count_le t x) /. float_of_int (size t)

let quantile t q =
  if q < 0. || q > 1. then invalid_arg "Cdf.quantile: q out of [0,1]";
  let n = size t in
  let k = int_of_float (Float.ceil (q *. float_of_int n)) in
  let k = if k <= 0 then 1 else if k > n then n else k in
  t.sorted.(k - 1)

let points t =
  let n = size t in
  let rec loop i acc =
    if i < 0 then acc
    else
      let v = t.sorted.(i) in
      (* keep only the last occurrence of each distinct value *)
      let acc =
        match acc with
        | (v', _) :: _ when v' = v -> acc
        | _ -> (v, float_of_int (i + 1) /. float_of_int n) :: acc
      in
      loop (i - 1) acc
  in
  loop (n - 1) []

let mean t =
  Array.fold_left ( +. ) 0. t.sorted /. float_of_int (size t)

let fraction_at_most = eval

let pp ?(bins = 10) ppf t =
  let lo = t.sorted.(0) and hi = t.sorted.(size t - 1) in
  Format.fprintf ppf "@[<v>";
  for i = 0 to bins do
    let x = lo +. ((hi -. lo) *. float_of_int i /. float_of_int bins) in
    Format.fprintf ppf "%8.4f  %6.4f@," x (eval t x)
  done;
  Format.fprintf ppf "@]"
