(** Empirical cumulative distribution functions.

    Used to reproduce the paper's Figure 1 (CDF of the per-destination
    probability {m Φ}) and other distributional results. *)

type t
(** An empirical CDF over a finite sample. Immutable once built. *)

val of_samples : float list -> t
(** Build the empirical CDF of the given samples.
    @raise Invalid_argument on the empty list. *)

val size : t -> int
(** Number of underlying samples. *)

val eval : t -> float -> float
(** [eval cdf x] is the fraction of samples [<= x], in [[0., 1.]]. *)

val quantile : t -> float -> float
(** [quantile cdf q] with [q] in [[0., 1.]] returns the smallest sample [x]
    such that [eval cdf x >= q].
    @raise Invalid_argument if [q] is outside [[0., 1.]]. *)

val points : t -> (float * float) list
(** The CDF as a step-function series: one [(value, cumulative_fraction)]
    point per distinct sample value, in increasing value order. Suitable for
    plotting or for printing a figure's series. *)

val mean : t -> float
(** Mean of the underlying samples. *)

val fraction_at_most : t -> float -> float
(** Alias of {!eval}, named for readability in experiment reports. *)

val pp : ?bins:int -> Format.formatter -> t -> unit
(** Render the CDF as an ASCII table of [bins] evenly spaced value points
    (default 10). *)
