lib/util/cdf.mli: Format
