lib/util/stat.mli: Format
