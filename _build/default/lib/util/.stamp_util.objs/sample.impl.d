lib/util/sample.ml: Array List Random
