lib/util/cdf.ml: Array Float Format
