lib/util/stat.ml: Array Float Format List
