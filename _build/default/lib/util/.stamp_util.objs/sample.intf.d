lib/util/sample.mli: Random
