let uniform st ~lo ~hi =
  if hi < lo then invalid_arg "Sample.uniform: hi < lo";
  lo +. Random.State.float st (hi -. lo)

let choose st a =
  if Array.length a = 0 then invalid_arg "Sample.choose: empty array";
  a.(Random.State.int st (Array.length a))

let choose_list st = function
  | [] -> invalid_arg "Sample.choose_list: empty list"
  | xs -> List.nth xs (Random.State.int st (List.length xs))

let weighted_index st w =
  let total = Array.fold_left ( +. ) 0. w in
  if total <= 0. then invalid_arg "Sample.weighted_index: non-positive sum";
  Array.iter
    (fun x -> if x < 0. then invalid_arg "Sample.weighted_index: negative weight")
    w;
  let r = Random.State.float st total in
  let rec loop i acc =
    if i = Array.length w - 1 then i
    else
      let acc = acc +. w.(i) in
      if r < acc then i else loop (i + 1) acc
  in
  loop 0 0.

let shuffle st a =
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick_distinct st k a =
  let n = Array.length a in
  if k > n then invalid_arg "Sample.pick_distinct: k > length";
  let copy = Array.copy a in
  (* partial Fisher–Yates: the first k slots end up uniformly distinct *)
  for i = 0 to k - 1 do
    let j = i + Random.State.int st (n - i) in
    let tmp = copy.(i) in
    copy.(i) <- copy.(j);
    copy.(j) <- tmp
  done;
  Array.to_list (Array.sub copy 0 k)
