type t = Red | Blue

let other = function Red -> Blue | Blue -> Red

let equal a b =
  match (a, b) with Red, Red | Blue, Blue -> true | (Red | Blue), _ -> false

let to_int = function Red -> 0 | Blue -> 1

let of_int = function
  | 0 -> Red
  | 1 -> Blue
  | n -> invalid_arg (Printf.sprintf "Color.of_int: %d" n)

let all = [ Red; Blue ]
let to_string = function Red -> "red" | Blue -> "blue"
let pp ppf c = Format.pp_print_string ppf (to_string c)
