type selection = Random_selection | Intelligent_selection

let phi ?(samples = 100) ?(selection = Random_selection) st topo ~dest =
  match Coloring.effective_origin topo dest with
  | None -> 1.0
  | Some m ->
    let sample_from p =
      (* one locked blue path with first hop fixed to provider [p] *)
      let tail = Disjoint.random_uphill_path st topo ~src:p in
      let path = m :: tail in
      Disjoint.exists_disjoint_uphill topo ~src:m path
    in
    let estimate p k =
      let good = ref 0 in
      for _ = 1 to k do
        if sample_from p then incr good
      done;
      float_of_int !good /. float_of_int k
    in
    let provs = Topology.providers topo m in
    (match selection with
    | Random_selection ->
      (* the origin picks uniformly too: plain random walks from m *)
      let good = ref 0 in
      for _ = 1 to samples do
        let path = Disjoint.random_uphill_path st topo ~src:m in
        if Disjoint.exists_disjoint_uphill topo ~src:m path then incr good
      done;
      float_of_int !good /. float_of_int samples
    | Intelligent_selection ->
      (* the origin picks the provider with the best estimated odds; the
         rest of the walk stays random *)
      Array.fold_left
        (fun acc p -> Float.max acc (estimate p samples))
        0. provs)

let phi_exact topo ~dest =
  match Coloring.effective_origin topo dest with
  | None -> 1.0
  | Some m ->
    let paths = Disjoint.enumerate_uphill_paths topo ~src:m in
    (* weight of a path = product over hops of 1/(provider count) *)
    let weight path =
      let rec loop = function
        | v :: (_ :: _ as rest) ->
          loop rest /. float_of_int (Array.length (Topology.providers topo v))
        | [ _ ] | [] -> 1.
      in
      loop path
    in
    List.fold_left
      (fun acc path ->
        if Disjoint.exists_disjoint_uphill topo ~src:m path then
          acc +. weight path
        else acc)
      0. paths

let phi_all ?(samples = 100) ?(selection = Random_selection) st topo =
  Array.map
    (fun dest -> phi ~samples ~selection st topo ~dest)
    (Topology.vertices topo)

let partial_deployment ~deployed topo =
  let n = Topology.num_vertices topo in
  let deployed_list =
    List.filter deployed (List.init n Fun.id)
  in
  let protected_count = ref 0 in
  for dest = 0 to n - 1 do
    if deployed dest then incr protected_count
    else begin
      let table = Static_route.compute topo ~dest in
      let downhill_of v =
        match Static_route.path_from table v with
        | None -> None
        | Some path -> Some (Valley.downhill_nodes topo path ())
      in
      let downs =
        deployed_list
        |> List.filter_map downhill_of
        |> List.map (fun nodes -> List.filter (fun x -> x <> dest) nodes)
      in
      let disjoint_pair =
        let rec pairs = function
          | [] -> false
          | d1 :: rest ->
            List.exists
              (fun d2 -> not (List.exists (fun x -> List.mem x d2) d1))
              rest
            || pairs rest
        in
        pairs downs
      in
      if disjoint_pair then incr protected_count
    end
  done;
  float_of_int !protected_count /. float_of_int n

let partial_deployment_tier1 topo =
  partial_deployment ~deployed:(Topology.is_tier1 topo) topo

let deployment_curve topo ~max_tier =
  let tiers = Tiers.classify topo in
  List.init (max_tier + 1) (fun k ->
      (k, partial_deployment ~deployed:(fun v -> tiers.(v) <= k) topo))
