lib/core/color.mli: Format
