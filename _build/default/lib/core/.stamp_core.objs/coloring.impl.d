lib/core/coloring.ml: Array Disjoint Random Sample Topology
