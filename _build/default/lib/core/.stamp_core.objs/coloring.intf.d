lib/core/coloring.mli: Topology
