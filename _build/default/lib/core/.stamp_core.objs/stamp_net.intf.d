lib/core/stamp_net.mli: Color Coloring Fwd_walk Route Sim Static_route Topology
