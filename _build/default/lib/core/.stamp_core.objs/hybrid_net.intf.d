lib/core/hybrid_net.mli: Fwd_walk Route Sim Topology
