lib/core/phi.mli: Random Topology
