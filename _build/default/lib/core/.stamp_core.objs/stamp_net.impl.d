lib/core/stamp_net.ml: Array Bool Channel Color Coloring Decision Export Fwd_walk Hashtbl Link_state List Mrai Option Relationship Route Sim Static_route Topology
