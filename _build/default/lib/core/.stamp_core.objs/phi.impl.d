lib/core/phi.ml: Array Coloring Disjoint Float Fun List Static_route Tiers Topology Valley
