lib/core/hybrid_net.ml: Array Bool Channel Decision Export Fwd_walk Hashtbl Link_state List Mrai Route Sim Topology Valley
