lib/core/color.ml: Format Printf
