(** Static analysis of STAMP's disjoint-path success probability Φ
    (Section 6.1, Figure 1 of the paper).

    For a destination whose effective origin [m] is multi-homed, a {e
    locked blue path} is the uphill path from [m] to a tier-1 AS obtained
    by letting every AS pick its locked blue provider; it is {e good} when
    a node-disjoint uphill path from [m] to another tier-1 AS remains, in
    which case STAMP finds a red path and every AS obtains both colours.
    Φ is the probability that the locked blue path is good.

    The paper computes Φ as the fraction λ′/λ of good paths among all
    uphill paths; enumerating λ is exponential, so {!phi} estimates Φ by
    Monte-Carlo over the protocol's own randomness (each AS picks its
    locked blue provider uniformly — exactly the distribution induced by
    {!Coloring.Random_choice}). The test suite cross-checks the estimate
    against exhaustive enumeration on small graphs. *)

type selection = Random_selection | Intelligent_selection
(** How the effective origin picks its locked blue provider: uniformly at
    random like every other AS, or greedily by estimated goodness (the
    paper's §6.1 improvement from ≈ 0.92 to ≈ 0.97). *)

val phi :
  ?samples:int ->
  ?selection:selection ->
  Random.State.t ->
  Topology.t ->
  dest:Topology.vertex ->
  float
(** Estimate Φ for one destination (default 100 samples, random
    selection). Destinations whose single-provider chain reaches a tier-1
    AS before any multi-homed AS have no colouring point; Φ is defined as
    1.0 for them (a documented convention — redundancy at the tier-1 core
    is outside STAMP's mechanism). *)

val phi_exact : Topology.t -> dest:Topology.vertex -> float
(** Exact Φ by exhaustive enumeration of all locked blue paths, weighting
    each by the probability the per-hop uniform choices select it. Only
    for small topologies (raises [Invalid_argument] beyond 100_000
    paths). *)

val phi_all :
  ?samples:int ->
  ?selection:selection ->
  Random.State.t ->
  Topology.t ->
  float array
(** Φ for every destination AS — the population of the paper's Figure 1
    CDF. Indexed by vertex. *)

val partial_deployment :
  deployed:(Topology.vertex -> bool) -> Topology.t -> float
(** Fraction of destination ASes protected when STAMP runs only at the
    ASes satisfying [deployed]: a destination is protected when two
    distinct deployed ASes have standard-BGP (oracle) paths to it whose
    downhill portions share no AS other than the destination — the
    deployed layer can then offer two complementary downhill paths and
    re-colour packets between them. Deployed destinations count as
    protected (they colour their own announcements). *)

val partial_deployment_tier1 : Topology.t -> float
(** {!partial_deployment} with the tier-1 clique as the deployment set —
    the scenario of Section 6.3, for which the paper reports ≈ 75 %. *)

val deployment_curve : Topology.t -> max_tier:int -> (int * float) list
(** The incremental-deployment curve: protection fraction when every AS of
    tier ≤ k runs STAMP, for k from 0 (tier-1 only) to [max_tier]. *)
