(** Locked-blue-provider selection (Section 4.1 of the paper).

    Every AS that holds a locked blue route must re-announce its blue route,
    with the [Lock] attribute set, to exactly one of its providers. This
    module fixes, per AS, the preference order in which providers are tried
    for that role (the first alive candidate is used, so the choice heals
    around failures).

    Two strategies are provided, matching Section 6.1:

    - {!Random_choice}: every AS orders its providers by an independent
      seeded random permutation — the paper's baseline assumption;
    - {!Intelligent}: same, except the destination's {e effective origin}
      (the AS that performs the initial colouring) orders its providers by
      the estimated probability that a locked blue path through that
      provider leaves a disjoint red path — the paper's "intelligent
      selection", which raises the success rate from ≈ 0.92 to ≈ 0.97. *)

type strategy =
  | Random_choice
  | Intelligent of { samples : int }
      (** per-provider Monte-Carlo sample count for the origin's estimate *)

type t

val create : strategy -> seed:int -> Topology.t -> dest:Topology.vertex -> t
(** Fix the per-AS provider orders for one destination's routing run. The
    same [(strategy, seed, topology, dest)] always yields the same
    orders. *)

val preference : t -> Topology.vertex -> Topology.vertex array
(** Providers of an AS in locked-blue preference order (shared array; do
    not mutate). Empty for tier-1 ASes. *)

val effective_origin : Topology.t -> Topology.vertex -> Topology.vertex option
(** The AS performing the initial colouring for a destination: the
    destination itself if multi-homed, otherwise its first multi-homed
    direct or indirect provider (paper footnote 4). [None] when the
    single-provider chain reaches a tier-1 AS without meeting a multi-homed
    AS — no colouring point exists and redundancy is moot. *)
