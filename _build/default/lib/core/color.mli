(** The two STAMP routing processes: red and blue.

    Blue is the colour whose downhill propagation is guaranteed by the
    [Lock] attribute; red is the complementary process whose propagation is
    given precedence on non-locked providers. *)

type t = Red | Blue

val other : t -> t
val equal : t -> t -> bool

val to_int : t -> int
(** [Red -> 0], [Blue -> 1]; used to index per-process state arrays. *)

val of_int : int -> t
(** Inverse of {!to_int}. @raise Invalid_argument on other integers. *)

val all : t list
(** [[Red; Blue]]. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
