type event =
  | Fail_link of Topology.vertex * Topology.vertex
  | Fail_node of Topology.vertex
  | Deny_export of Topology.vertex * Topology.vertex

type spec = { dest : Topology.vertex; events : event list }

let pp_spec topo ppf s =
  let pp_event ppf = function
    | Fail_link (u, v) ->
      Format.fprintf ppf "link %d-%d" (Topology.asn topo u) (Topology.asn topo v)
    | Fail_node v -> Format.fprintf ppf "node %d" (Topology.asn topo v)
    | Deny_export (u, v) ->
      Format.fprintf ppf "policy %d-x->%d" (Topology.asn topo u)
        (Topology.asn topo v)
  in
  Format.fprintf ppf "dest=%d fail=[%a]" (Topology.asn topo s.dest)
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       pp_event)
    s.events

let random_multi_homed st topo =
  let mh = Topology.multi_homed topo in
  if Array.length mh = 0 then
    invalid_arg "Scenario: topology has no multi-homed AS";
  mh.(Random.State.int st (Array.length mh))

let single_link st topo =
  let dest = random_multi_homed st topo in
  let provs = Topology.providers topo dest in
  let p = provs.(Random.State.int st (Array.length provs)) in
  { dest; events = [ Fail_link (dest, p) ] }

(* Provider links in the uphill cone of [dest], excluding any link touching
   one of the [avoid] vertices. *)
let cone_provider_links topo ~dest ~avoid =
  let reach = Tiers.uphill_reachable topo dest in
  let links = ref [] in
  Array.iteri
    (fun v in_cone ->
      if in_cone && (not (List.mem v avoid)) && v <> dest then
        Array.iter
          (fun p -> if not (List.mem p avoid) then links := (v, p) :: !links)
          (Topology.providers topo v))
    reach;
  List.rev !links

let with_resampling name f st topo =
  let rec attempt k =
    if k = 0 then
      invalid_arg (Printf.sprintf "Scenario.%s: no suitable instance found" name)
    else match f st topo with Some s -> s | None -> attempt (k - 1)
  in
  attempt 1000

let two_links_apart =
  with_resampling "two_links_apart" (fun st topo ->
      let dest = random_multi_homed st topo in
      let provs = Topology.providers topo dest in
      let p = provs.(Random.State.int st (Array.length provs)) in
      match cone_provider_links topo ~dest ~avoid:[ dest; p ] with
      | [] -> None (* cone too small: resample *)
      | links ->
        let x, px = List.nth links (Random.State.int st (List.length links)) in
        Some { dest; events = [ Fail_link (dest, p); Fail_link (x, px) ] })

let two_links_shared =
  with_resampling "two_links_shared" (fun st topo ->
      let dest = random_multi_homed st topo in
      let provs =
        Array.to_list (Topology.providers topo dest)
        |> List.filter (fun p -> Array.length (Topology.providers topo p) > 0)
      in
      match provs with
      | [] -> None (* all providers are tier-1: resample *)
      | _ ->
        let p = List.nth provs (Random.State.int st (List.length provs)) in
        let pps = Topology.providers topo p in
        let pp = pps.(Random.State.int st (Array.length pps)) in
        Some { dest; events = [ Fail_link (dest, p); Fail_link (p, pp) ] })

let node_failure st topo =
  let dest = random_multi_homed st topo in
  let provs = Topology.providers topo dest in
  let p = provs.(Random.State.int st (Array.length provs)) in
  { dest; events = [ Fail_node p ] }

let policy_withdraw st topo =
  let dest = random_multi_homed st topo in
  let provs = Topology.providers topo dest in
  let p = provs.(Random.State.int st (Array.length provs)) in
  { dest; events = [ Deny_export (dest, p) ] }
