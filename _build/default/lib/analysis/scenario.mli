(** Failure workloads of the paper's Section 6.2.

    Every scenario picks a random multi-homed destination (the paper's
    "origin AS"), lets routing converge, then injects one compound routing
    event. Scenario sampling is deterministic in the supplied RNG. *)

type event =
  | Fail_link of Topology.vertex * Topology.vertex
  | Fail_node of Topology.vertex
  | Deny_export of Topology.vertex * Topology.vertex
      (** policy change: first AS stops exporting to the second *)

type spec = {
  dest : Topology.vertex;  (** the origin/destination AS *)
  events : event list;  (** injected simultaneously after convergence *)
}

val pp_spec : Topology.t -> Format.formatter -> spec -> unit

val single_link : Random.State.t -> Topology.t -> spec
(** Figure 2: a multi-homed origin fails one of its provider links. *)

val two_links_apart : Random.State.t -> Topology.t -> spec
(** Figure 3(a): the origin fails one provider link, and a randomly
    selected indirect-provider link (a provider link in the origin's uphill
    cone, multiple hops away and sharing no AS with the first) fails
    simultaneously. *)

val two_links_shared : Random.State.t -> Topology.t -> spec
(** Figure 3(b): the origin fails a link to one of its providers, and that
    provider simultaneously fails one of its own provider links. *)

val node_failure : Random.State.t -> Topology.t -> spec
(** Section 6.2.2's nod: a single AS failure adjacent to the origin — one
    of the origin's providers fails entirely (withdrawing routes from all
    its neighbours). *)

val policy_withdraw : Random.State.t -> Topology.t -> spec
(** The paper's policy-change event class: a multi-homed origin stops
    announcing its prefix to one of its providers. Same withdrawal
    semantics as a link failure, but the link stays physically up. *)
