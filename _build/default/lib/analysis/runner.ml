type protocol = Bgp | Rbgp_no_rci | Rbgp | Stamp

let all_protocols = [ Bgp; Rbgp_no_rci; Rbgp; Stamp ]

let protocol_name = function
  | Bgp -> "BGP"
  | Rbgp_no_rci -> "R-BGP without RCI"
  | Rbgp -> "R-BGP"
  | Stamp -> "STAMP"

type result = {
  transient_count : int;
  broken_after : int;
  convergence_delay : float;
  recovery_delay : float;
  messages_initial : int;
  messages_event : int;
  checkpoints : int;
}

(* The per-protocol operations the driver needs, bundled as a record of
   closures over the protocol's network value. *)
type driver = {
  start : unit -> unit;
  fail_link : Topology.vertex -> Topology.vertex -> unit;
  fail_node : Topology.vertex -> unit;
  deny_export : Topology.vertex -> Topology.vertex -> unit;
  probe : unit -> Fwd_walk.status array;
  messages : unit -> int;
  last_change : unit -> float;
}

let make_driver ~seed ~mrai_base ?(detect_delay = 0.) protocol sim topo ~dest
    : driver =
  match protocol with
  | Bgp ->
    let net = Bgp_net.create sim topo ~dest ~mrai_base () in
    {
      start = (fun () -> Bgp_net.start net);
      fail_link = (fun u v -> Bgp_net.fail_link ~detect_delay net u v);
      fail_node = Bgp_net.fail_node net;
      deny_export = Bgp_net.deny_export net;
      probe = (fun () -> Bgp_net.walk_all net);
      messages = (fun () -> Bgp_net.message_count net);
      last_change = (fun () -> Bgp_net.last_change net);
    }
  | Rbgp_no_rci | Rbgp ->
    let rci = protocol = Rbgp in
    let net = Rbgp_net.create sim topo ~dest ~rci ~mrai_base () in
    {
      start = (fun () -> Rbgp_net.start net);
      fail_link = (fun u v -> Rbgp_net.fail_link ~detect_delay net u v);
      fail_node = Rbgp_net.fail_node net;
      deny_export = Rbgp_net.deny_export net;
      probe = (fun () -> Rbgp_net.walk_all net);
      messages = (fun () -> Rbgp_net.message_count net);
      last_change = (fun () -> Rbgp_net.last_change net);
    }
  | Stamp ->
    let coloring = Coloring.create Coloring.Random_choice ~seed topo ~dest in
    let net = Stamp_net.create sim topo ~dest ~coloring ~mrai_base () in
    {
      start = (fun () -> Stamp_net.start net);
      fail_link = (fun u v -> Stamp_net.fail_link ~detect_delay net u v);
      fail_node = Stamp_net.fail_node net;
      deny_export = Stamp_net.deny_export net;
      probe = (fun () -> Stamp_net.walk_all net);
      messages = (fun () -> Stamp_net.message_count net);
      last_change = (fun () -> Stamp_net.last_change net);
    }

let make_stamp_driver ~seed ~mrai_base ?(detect_delay = 0.)
    ~spread_unlocked_blue ~strategy sim topo ~dest : driver =
  let coloring = Coloring.create strategy ~seed topo ~dest in
  let net =
    Stamp_net.create sim topo ~dest ~coloring ~mrai_base ~spread_unlocked_blue
      ()
  in
    {
      start = (fun () -> Stamp_net.start net);
      fail_link = (fun u v -> Stamp_net.fail_link ~detect_delay net u v);
      fail_node = Stamp_net.fail_node net;
      deny_export = Stamp_net.deny_export net;
      probe = (fun () -> Stamp_net.walk_all net);
      messages = (fun () -> Stamp_net.message_count net);
      last_change = (fun () -> Stamp_net.last_change net);
    }

let measure ~interval (spec : Scenario.spec) sim (d : driver) =
  d.start ();
  Sim.run sim;
  let messages_initial = d.messages () in
  let event_time = Sim.now sim in
  List.iter
    (function
      | Scenario.Fail_link (u, v) -> d.fail_link u v
      | Scenario.Fail_node v -> d.fail_node v
      | Scenario.Deny_export (u, v) -> d.deny_export u v)
    spec.events;
  let outcome = Transient.run sim ~interval ~probe:d.probe () in
  let broken_after =
    Array.fold_left
      (fun acc s ->
        if Fwd_walk.equal_status s Fwd_walk.Delivered then acc else acc + 1)
      0 outcome.final
  in
  {
    transient_count = Transient.transient_count outcome;
    broken_after;
    convergence_delay = Float.max 0. (d.last_change () -. event_time);
    recovery_delay = Float.max 0. (outcome.last_status_change -. event_time);
    messages_initial;
    messages_event = d.messages () - messages_initial;
    checkpoints = outcome.checkpoints;
  }

let run ?(seed = 0) ?(mrai_base = 30.) ?(interval = 0.02) ?(detect_delay = 0.)
    protocol topo (spec : Scenario.spec) =
  let sim = Sim.create ~seed () in
  let d =
    make_driver ~seed ~mrai_base ~detect_delay protocol sim topo
      ~dest:spec.dest
  in
  measure ~interval spec sim d

let run_stamp ?(seed = 0) ?(mrai_base = 30.) ?(interval = 0.02)
    ?(spread_unlocked_blue = false) ?(strategy = Coloring.Random_choice) topo
    (spec : Scenario.spec) =
  let sim = Sim.create ~seed () in
  let d =
    make_stamp_driver ~seed ~mrai_base ~spread_unlocked_blue ~strategy sim topo
      ~dest:spec.dest
  in
  measure ~interval spec sim d

let run_hybrid ?(seed = 0) ?(mrai_base = 30.) ?(interval = 0.02) ~deployed
    topo (spec : Scenario.spec) =
  let sim = Sim.create ~seed () in
  let net =
    Hybrid_net.create sim topo ~dest:spec.dest ~deployed ~mrai_base ()
  in
  let d =
    {
      start = (fun () -> Hybrid_net.start net);
      fail_link = Hybrid_net.fail_link net;
      fail_node =
        (fun _ -> invalid_arg "Runner.run_hybrid: node failures unsupported");
      deny_export =
        (fun _ _ -> invalid_arg "Runner.run_hybrid: policy events unsupported");
      probe = (fun () -> Hybrid_net.walk_all net);
      messages = (fun () -> Hybrid_net.message_count net);
      last_change = (fun () -> Hybrid_net.last_change net);
    }
  in
  measure ~interval spec sim d

let run_traffic ?(seed = 0) ?(mrai_base = 30.) ?(interval = 0.02) protocol topo
    (spec : Scenario.spec) =
  let sim = Sim.create ~seed () in
  let d = make_driver ~seed ~mrai_base protocol sim topo ~dest:spec.dest in
  d.start ();
  Sim.run sim;
  List.iter
    (function
      | Scenario.Fail_link (u, v) -> d.fail_link u v
      | Scenario.Fail_node v -> d.fail_node v
      | Scenario.Deny_export (u, v) -> d.deny_export u v)
    spec.events;
  Traffic.observe sim ~interval ~probe:d.probe ()
