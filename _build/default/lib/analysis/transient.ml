type outcome = {
  transient : bool array;
  final : Fwd_walk.status array;
  checkpoints : int;
  converged_at : float;
  last_status_change : float;
}

let transient_count o =
  Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 o.transient

let run sim ?(interval = 0.02) ?(max_events = 50_000_000) ~probe () =
  if interval <= 0. then invalid_arg "Transient.run: non-positive interval";
  let first = probe () in
  let n = Array.length first in
  let troubled = Array.make n false in
  let prev = ref first in
  let last_status_change = ref (Sim.now sim) in
  let note statuses =
    Array.iteri
      (fun v s ->
        if not (Fwd_walk.equal_status s Fwd_walk.Delivered) then
          troubled.(v) <- true)
      statuses;
    if not (Array.for_all2 Fwd_walk.equal_status statuses !prev) then
      last_status_change := Sim.now sim;
    prev := statuses
  in
  note first;
  let checkpoints = ref 1 in
  let events_budget = ref max_events in
  while Sim.pending sim > 0 do
    let before = Sim.events_processed sim in
    Sim.run ~until:(Sim.now sim +. interval) ~max_events:!events_budget sim;
    let processed = Sim.events_processed sim - before in
    events_budget := !events_budget - processed;
    if !events_budget <= 0 then
      failwith "Transient.run: event budget exceeded (non-convergence?)";
    (* nothing happened, nothing changed: skip the redundant probe *)
    if processed > 0 && Sim.pending sim > 0 then begin
      note (probe ());
      incr checkpoints
    end
  done;
  let final = probe () in
  incr checkpoints;
  let transient =
    Array.mapi
      (fun v bad ->
        bad && Fwd_walk.equal_status final.(v) Fwd_walk.Delivered)
      troubled
  in
  {
    transient;
    final;
    checkpoints = !checkpoints;
    converged_at = Sim.now sim;
    last_status_change = !last_status_change;
  }
