type fig1_result = {
  cdf : Cdf.t;
  mean_random : float;
  mean_intelligent : float;
  frac_below_07 : float;
  frac_above_09 : float;
}

let fig1 ?(samples = 100) ?(intelligent_samples = 30) ?(seed = 1) topo =
  let st = Random.State.make [| seed |] in
  let phis = Phi.phi_all ~samples st topo in
  let st' = Random.State.make [| seed + 1 |] in
  let phis_intelligent =
    Phi.phi_all ~samples:intelligent_samples
      ~selection:Phi.Intelligent_selection st' topo
  in
  let values = Array.to_list phis in
  let cdf = Cdf.of_samples values in
  {
    cdf;
    mean_random = Cdf.mean cdf;
    mean_intelligent = Stat.mean (Array.to_list phis_intelligent);
    frac_below_07 = Cdf.fraction_at_most cdf 0.7;
    frac_above_09 = 1. -. Cdf.fraction_at_most cdf 0.9;
  }

type bars = (Runner.protocol * float) list

let failure_bars ?(instances = 20) ?(seed = 1) ?(mrai_base = 30.)
    ?(interval = 0.02) ~scenario topo =
  let st = Random.State.make [| seed |] in
  let specs = List.init instances (fun _ -> scenario st topo) in
  List.map
    (fun protocol ->
      let total =
        List.fold_left
          (fun acc (i, spec) ->
            let r =
              Runner.run ~seed:(seed + i) ~mrai_base ~interval protocol topo
                spec
            in
            acc + r.Runner.transient_count)
          0
          (List.mapi (fun i s -> (i, s)) specs)
      in
      (protocol, float_of_int total /. float_of_int instances))
    Runner.all_protocols

let failure_bars_stats ?(instances = 20) ?(seed = 1) ?(mrai_base = 30.)
    ?(interval = 0.02) ~scenario topo =
  let st = Random.State.make [| seed |] in
  let specs = List.init instances (fun i -> (i, scenario st topo)) in
  List.map
    (fun protocol ->
      let counts =
        List.map
          (fun (i, spec) ->
            float_of_int
              (Runner.run ~seed:(seed + i) ~mrai_base ~interval protocol topo
                 spec)
                .Runner.transient_count)
          specs
      in
      (protocol, Stat.summarize counts))
    Runner.all_protocols

type overhead_result = {
  protocol : Runner.protocol;
  avg_messages_initial : float;
  avg_messages_event : float;
  avg_delay : float;
  avg_recovery : float;
}

let overhead_and_delay ?(instances = 20) ?(seed = 1) ?(mrai_base = 30.)
    ?(interval = 0.02) topo =
  let st = Random.State.make [| seed |] in
  let specs = List.init instances (fun _ -> Scenario.single_link st topo) in
  List.map
    (fun protocol ->
      let results =
        List.mapi
          (fun i spec ->
            Runner.run ~seed:(seed + i) ~mrai_base ~interval protocol topo spec)
          specs
      in
      let favg f =
        Stat.mean (List.map (fun r -> float_of_int (f r)) results)
      in
      {
        protocol;
        avg_messages_initial = favg (fun r -> r.Runner.messages_initial);
        avg_messages_event = favg (fun r -> r.Runner.messages_event);
        avg_delay =
          Stat.mean (List.map (fun r -> r.Runner.convergence_delay) results);
        avg_recovery =
          Stat.mean (List.map (fun r -> r.Runner.recovery_delay) results);
      })
    Runner.all_protocols

let partial_deployment = Phi.partial_deployment_tier1

let single_link_specs ~instances ~seed topo =
  let st = Random.State.make [| seed |] in
  List.init instances (fun i -> (i, Scenario.single_link st topo))

let partial_deployment_dynamic ?(instances = 10) ?(seed = 1) ?(mrai_base = 30.)
    ~max_tier topo =
  let specs = single_link_specs ~instances ~seed topo in
  let tiers = Tiers.classify topo in
  List.init (max_tier + 1) (fun k ->
      let total =
        List.fold_left
          (fun acc (i, spec) ->
            acc
            + (Runner.run_hybrid ~seed:(seed + i) ~mrai_base
                 ~deployed:(fun v -> tiers.(v) <= k)
                 topo spec)
                .Runner.transient_count)
          0 specs
      in
      (k, float_of_int total /. float_of_int instances))

let ablation_mrai ?(instances = 10) ?(seed = 1) ~values topo =
  let specs = single_link_specs ~instances ~seed topo in
  List.map
    (fun mrai_base ->
      let rows =
        List.map
          (fun protocol ->
            let results =
              List.map
                (fun (i, spec) ->
                  Runner.run ~seed:(seed + i) ~mrai_base protocol topo spec)
                specs
            in
            let avg f = Stat.mean (List.map f results) in
            ( protocol,
              avg (fun r -> float_of_int r.Runner.transient_count),
              avg (fun r -> r.Runner.convergence_delay) ))
          Runner.all_protocols
      in
      (mrai_base, rows))
    values

let ablation_stamp_variants ?(instances = 15) ?(seed = 1) topo =
  let specs = single_link_specs ~instances ~seed topo in
  let avg run =
    let total =
      List.fold_left
        (fun acc (i, spec) ->
          acc + (run ~seed:(seed + i) spec).Runner.transient_count)
        0 specs
    in
    float_of_int total /. float_of_int instances
  in
  [
    ( "baseline (lock-only blue, random colouring)",
      avg (fun ~seed spec -> Runner.run_stamp ~seed topo spec) );
    ( "spread unlocked blue to providers",
      avg (fun ~seed spec ->
          Runner.run_stamp ~seed ~spread_unlocked_blue:true topo spec) );
    ( "intelligent locked-blue colouring",
      avg (fun ~seed spec ->
          Runner.run_stamp ~seed
            ~strategy:(Coloring.Intelligent { samples = 30 })
            topo spec) );
  ]

let ablation_probe_interval ?(instances = 10) ?(seed = 1) ~values topo =
  let specs = single_link_specs ~instances ~seed topo in
  List.map
    (fun interval ->
      let total =
        List.fold_left
          (fun acc (i, spec) ->
            acc
            + (Runner.run ~seed:(seed + i) ~interval Runner.Bgp topo spec)
                .Runner.transient_count)
          0 specs
      in
      (interval, float_of_int total /. float_of_int instances))
    values

let ablation_detection ?(instances = 10) ?(seed = 1) ~values topo =
  let specs = single_link_specs ~instances ~seed topo in
  List.map
    (fun detect_delay ->
      let bars =
        List.map
          (fun protocol ->
            let total =
              List.fold_left
                (fun acc (i, spec) ->
                  acc
                  + (Runner.run ~seed:(seed + i) ~detect_delay protocol topo
                       spec)
                      .Runner.transient_count)
                0 specs
            in
            (protocol, float_of_int total /. float_of_int instances))
          Runner.all_protocols
      in
      (detect_delay, bars))
    values

let motivation_loss_composition ?(instances = 15) ?(seed = 1) topo =
  let specs = single_link_specs ~instances ~seed topo in
  List.map
    (fun protocol ->
      let loss = ref 0 and loops = ref 0 in
      List.iter
        (fun (i, spec) ->
          let s = Runner.run_traffic ~seed:(seed + i) protocol topo spec in
          loss := !loss + s.Traffic.loss_events;
          loops := !loops + s.Traffic.loop_events)
        specs;
      let share =
        if !loss = 0 then nan else float_of_int !loops /. float_of_int !loss
      in
      (protocol, share))
    Runner.all_protocols

let ablation_topology ?(instances = 8) ?(seed = 1) ~n () =
  let base = Topo_gen.default_params ~seed ~n () in
  let variants =
    [
      ("default", base);
      ( "sparse multi-homing",
        { base with Topo_gen.stub_extra_provider_prob = 0.15 } );
      ( "dense multi-homing",
        { base with Topo_gen.stub_extra_provider_prob = 0.7 } );
      ("no mid-tier peering", { base with Topo_gen.peers_per_mid = 0. });
      ("heavy peering", { base with Topo_gen.peers_per_mid = 5. });
    ]
  in
  List.map
    (fun (label, params) ->
      let topo = Topo_gen.generate params in
      ( label,
        failure_bars ~instances ~seed ~scenario:Scenario.single_link topo ))
    variants
