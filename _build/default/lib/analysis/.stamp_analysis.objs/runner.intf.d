lib/analysis/runner.mli: Coloring Scenario Topology Traffic
