lib/analysis/report.ml: Buffer Cdf Experiment Float Format List Printf Runner Stat
