lib/analysis/transient.ml: Array Fwd_walk Sim
