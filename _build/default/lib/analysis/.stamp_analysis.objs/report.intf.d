lib/analysis/report.mli: Experiment Format Runner Stat
