lib/analysis/experiment.ml: Array Cdf Coloring List Phi Random Runner Scenario Stat Tiers Topo_gen Traffic
