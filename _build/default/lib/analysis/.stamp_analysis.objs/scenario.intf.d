lib/analysis/scenario.mli: Format Random Topology
