lib/analysis/fleet.ml: Array List Lpm Option Prefix Static_route Topology
