lib/analysis/fleet.mli: Lpm Prefix Topology
