lib/analysis/experiment.mli: Cdf Random Runner Scenario Stat Topology
