lib/analysis/scenario.ml: Array Format List Printf Random Tiers Topology
