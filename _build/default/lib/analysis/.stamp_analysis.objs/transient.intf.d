lib/analysis/transient.mli: Fwd_walk Sim
