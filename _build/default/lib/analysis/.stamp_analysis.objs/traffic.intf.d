lib/analysis/traffic.mli: Fwd_walk Sim
