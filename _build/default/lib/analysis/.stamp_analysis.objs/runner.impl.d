lib/analysis/runner.ml: Array Bgp_net Coloring Float Fwd_walk Hybrid_net List Rbgp_net Scenario Sim Stamp_net Topology Traffic Transient
