lib/analysis/traffic.ml: Array Fwd_walk Hashtbl List Sim
