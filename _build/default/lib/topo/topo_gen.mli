(** Synthetic Internet-like AS topology generator.

    Substitute for the paper's RouteViews-derived AS graph (see DESIGN.md
    §4). The generator reproduces the structural properties the paper's
    results depend on:

    - a fully meshed tier-1 clique (peer links);
    - an acyclic provider hierarchy (every AS picks its providers among
      ASes created earlier — the Gao–Rexford safety precondition);
    - preferential attachment, yielding a heavy-tailed customer-degree
      distribution as observed in the real AS graph;
    - tunable multi-homing (how many providers stubs and mid-tier ASes
      have) and peering density.

    The output is guaranteed connected, acyclic in its provider DAG, and
    such that every AS has an uphill path to a tier-1 AS. *)

type params = {
  n : int;  (** total number of ASes (>= n_tier1 + 2) *)
  n_tier1 : int;  (** size of the tier-1 clique (>= 1) *)
  mid_fraction : float;
      (** fraction of non-tier-1 ASes that are mid-tier transit providers,
          in [[0., 1.]] *)
  stub_extra_provider_prob : float;
      (** probability that a stub takes each additional provider beyond the
          first (geometric tail), in [[0., 1.)] *)
  mid_extra_provider_prob : float;
      (** same for mid-tier ASes, which start at two providers *)
  max_providers : int;  (** hard cap on providers per AS *)
  peers_per_mid : float;
      (** expected number of lateral peer links attached to each mid-tier
          AS *)
  seed : int;  (** RNG seed; same params + seed => identical topology *)
}

val default_params : ?seed:int -> n:int -> unit -> params
(** Reasonable Internet-like defaults for a topology of [n] ASes:
    10 tier-1 ASes (or fewer for tiny graphs), 15 % mid-tier,
    stubs with 1–4 providers (60 % multi-homed), mid-tier with 2–6
    providers, two peer links per mid-tier AS on average. *)

val generate : params -> Topology.t
(** Generate a topology. External AS numbers are [1..n]; tier-1 ASes get
    the smallest numbers.
    @raise Invalid_argument on inconsistent parameters. *)
