(** AS-level Internet topology: ASes connected by links annotated with
    business relationships.

    Vertices are dense integers in [[0, num_vertices - 1]]; every vertex
    carries an external AS number (arbitrary positive integer) used for I/O
    and display. The structure is immutable once built — link and node
    failures are modelled by the simulator as overlays, never by mutating
    the topology. *)

type vertex = int
(** Dense vertex index in [[0, num_vertices - 1]]. *)

type t

(** {1 Construction} *)

module Builder : sig
  type topology := t

  type t
  (** Mutable accumulator of AS links. *)

  val create : unit -> t

  val add_p2c : t -> provider:int -> customer:int -> unit
  (** Record a provider→customer link between two external AS numbers.
      Duplicate consistent declarations are ignored.
      @raise Invalid_argument if the link was already declared with a
      different relationship, or if [provider = customer]. *)

  val add_p2p : t -> int -> int -> unit
  (** Record a peer–peer link. Same duplicate rules as {!add_p2c}. *)

  val add_sibling : t -> int -> int -> unit
  (** Record a sibling (mutual transit) link. *)

  val build : t -> topology
  (** Intern AS numbers into dense vertices and freeze the topology. *)
end

(** {1 Size and identity} *)

val num_vertices : t -> int

val vertices : t -> vertex array
(** All vertices, in increasing index order. A fresh array per call. *)

val asn : t -> vertex -> int
(** External AS number of a vertex. *)

val vertex_of_asn : t -> int -> vertex option
(** Inverse of {!asn}. *)

(** {1 Adjacency} *)

val neighbors : t -> vertex -> (vertex * Relationship.t) array
(** All neighbours of a vertex together with their relationship {e as seen
    from that vertex}: [(v, Provider)] means [v] is a provider of the
    queried vertex. The returned array is shared; do not mutate. *)

val providers : t -> vertex -> vertex array
(** Providers of a vertex (shared array; do not mutate). *)

val customers : t -> vertex -> vertex array
(** Customers of a vertex (shared array; do not mutate). *)

val peers : t -> vertex -> vertex array
(** Peers of a vertex (shared array; do not mutate). *)

val rel : t -> vertex -> vertex -> Relationship.t option
(** [rel t u v] is the relationship of [v] as seen from [u], if the link
    exists. *)

val degree : t -> vertex -> int
(** Total number of neighbours. *)

val num_links : t -> int
(** Number of undirected AS links. *)

(** {1 Classification} *)

val is_tier1 : t -> vertex -> bool
(** A tier-1 AS has no providers. *)

val tier1s : t -> vertex array
(** All tier-1 vertices (shared array; do not mutate). *)

val is_multi_homed : t -> vertex -> bool
(** At least two providers. *)

val multi_homed : t -> vertex array
(** All multi-homed vertices (shared array; do not mutate). *)

val is_stub : t -> vertex -> bool
(** No customers. *)

(** {1 Validation} *)

val provider_dag_is_acyclic : t -> bool
(** Check the Gao–Rexford safety precondition: the directed
    customer→provider graph has no cycle ("the provider of any AS cannot be
    a customer of that AS' customers, and so on"). Sibling links are ignored
    by this check. *)

val is_connected : t -> bool
(** Whether the underlying undirected graph is connected. *)

val all_reach_tier1 : t -> bool
(** Whether every vertex has an all-uphill (customer→provider) path to some
    tier-1 AS — required for global reachability under valley-free export. *)

val pp_stats : Format.formatter -> t -> unit
(** One-line summary: vertex count, link count by kind, tier-1 count, etc. *)
