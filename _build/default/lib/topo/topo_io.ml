let strip_comment line =
  match String.index_opt line '#' with
  | None -> line
  | Some i -> String.sub line 0 i

let lines_of content =
  String.split_on_char '\n' content
  |> List.mapi (fun i l -> (i + 1, String.trim (strip_comment l)))
  |> List.filter (fun (_, l) -> l <> "")

let parse_relationships content =
  let b = Topology.Builder.create () in
  List.iter
    (fun (lineno, line) ->
      match String.split_on_char '|' line with
      | [ a; a'; code ] -> begin
        let parse_asn s =
          match int_of_string_opt (String.trim s) with
          | Some n when n > 0 -> n
          | _ ->
            invalid_arg
              (Printf.sprintf "Topo_io: bad AS number %S on line %d" s lineno)
        in
        let a = parse_asn a and a' = parse_asn a' in
        match String.trim code with
        | "-1" -> Topology.Builder.add_p2c b ~provider:a ~customer:a'
        | "0" -> Topology.Builder.add_p2p b a a'
        | "2" -> Topology.Builder.add_sibling b a a'
        | c ->
          invalid_arg
            (Printf.sprintf "Topo_io: unknown relationship code %S on line %d"
               c lineno)
      end
      | _ ->
        invalid_arg
          (Printf.sprintf "Topo_io: malformed relationship line %d" lineno))
    (lines_of content);
  Topology.Builder.build b

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_relationships path = parse_relationships (read_file path)

let relationships_to_string t =
  let buf = Buffer.create 4096 in
  let n = Topology.num_vertices t in
  for u = 0 to n - 1 do
    Array.iter
      (fun (v, r) ->
        (* emit each undirected link once, from the side that gives a
           canonical direction *)
        match (r : Relationship.t) with
        | Customer ->
          Buffer.add_string buf
            (Printf.sprintf "%d|%d|-1\n" (Topology.asn t u) (Topology.asn t v))
        | Peer ->
          if u < v then
            Buffer.add_string buf
              (Printf.sprintf "%d|%d|0\n" (Topology.asn t u) (Topology.asn t v))
        | Sibling ->
          if u < v then
            Buffer.add_string buf
              (Printf.sprintf "%d|%d|2\n" (Topology.asn t u) (Topology.asn t v))
        | Provider -> ())
      (Topology.neighbors t u)
  done;
  Buffer.contents buf

let save_relationships t path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (relationships_to_string t))

let parse_paths content =
  List.map
    (fun (lineno, line) ->
      String.split_on_char ' ' line
      |> List.concat_map (String.split_on_char '\t')
      |> List.filter (fun s -> s <> "")
      |> List.map (fun s ->
             match int_of_string_opt s with
             | Some n when n > 0 -> n
             | _ ->
               invalid_arg
                 (Printf.sprintf "Topo_io: bad AS number %S on line %d" s
                    lineno)))
    (lines_of content)

let load_paths path = parse_paths (read_file path)

let paths_to_string paths =
  let buf = Buffer.create 4096 in
  List.iter
    (fun path ->
      Buffer.add_string buf (String.concat " " (List.map string_of_int path));
      Buffer.add_char buf '\n')
    paths;
  Buffer.contents buf

let save_paths paths path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (paths_to_string paths))
