type vertex = int

type t = {
  asn_of_vertex : int array;
  vertex_of_asn : (int, int) Hashtbl.t;
  adj : (vertex * Relationship.t) array array;
  providers : vertex array array;
  customers : vertex array array;
  peers : vertex array array;
  tier1s : vertex array;
  multi_homed : vertex array;
  num_links : int;
}

module Builder = struct
  (* Links are keyed on the (smaller ASN, larger ASN) pair; the stored
     relationship is that of the larger-ASN side as seen from the smaller. *)
  type nonrec t = { links : (int * int, Relationship.t) Hashtbl.t }

  let create () = { links = Hashtbl.create 1024 }

  let add b a a' rel_of_a'_seen_from_a =
    if a = a' then invalid_arg "Topology.Builder: self link";
    if a <= 0 || a' <= 0 then invalid_arg "Topology.Builder: ASN must be > 0";
    let key, stored =
      if a < a' then ((a, a'), rel_of_a'_seen_from_a)
      else ((a', a), Relationship.invert rel_of_a'_seen_from_a)
    in
    match Hashtbl.find_opt b.links key with
    | None -> Hashtbl.replace b.links key stored
    | Some prev ->
      if not (Relationship.equal prev stored) then
        invalid_arg
          (Printf.sprintf
             "Topology.Builder: conflicting relationship for link %d-%d"
             (fst key) (snd key))

  let add_p2c b ~provider ~customer = add b provider customer Relationship.Customer
  let add_p2p b a a' = add b a a' Relationship.Peer
  let add_sibling b a a' = add b a a' Relationship.Sibling

  let build b =
    let asns = Hashtbl.create 1024 in
    Hashtbl.iter
      (fun (a, a') _ ->
        Hashtbl.replace asns a ();
        Hashtbl.replace asns a' ())
      b.links;
    let asn_of_vertex =
      Hashtbl.fold (fun asn () acc -> asn :: acc) asns []
      |> List.sort compare |> Array.of_list
    in
    let n = Array.length asn_of_vertex in
    let vertex_of_asn = Hashtbl.create n in
    Array.iteri (fun v asn -> Hashtbl.replace vertex_of_asn asn v) asn_of_vertex;
    let adj_lists = Array.make n [] in
    let num_links = Hashtbl.length b.links in
    Hashtbl.iter
      (fun (a, a') rel ->
        let u = Hashtbl.find vertex_of_asn a
        and v = Hashtbl.find vertex_of_asn a' in
        (* [rel] is the relationship of a' (larger ASN) as seen from a. *)
        adj_lists.(u) <- (v, rel) :: adj_lists.(u);
        adj_lists.(v) <- (u, Relationship.invert rel) :: adj_lists.(v))
      b.links;
    let by_vertex (v, _) (v', _) = compare (v : int) v' in
    let adj =
      Array.map (fun l -> Array.of_list (List.sort by_vertex l)) adj_lists
    in
    let select rel_wanted =
      Array.map
        (fun neighbours ->
          Array.of_list
            (Array.fold_right
               (fun (v, r) acc ->
                 if Relationship.equal r rel_wanted then v :: acc else acc)
               neighbours []))
        adj
    in
    let providers = select Relationship.Provider in
    let customers = select Relationship.Customer in
    let peers = select Relationship.Peer in
    let tier1s =
      Array.of_list
        (List.filter
           (fun v -> Array.length providers.(v) = 0)
           (List.init n Fun.id))
    in
    let multi_homed =
      Array.of_list
        (List.filter
           (fun v -> Array.length providers.(v) >= 2)
           (List.init n Fun.id))
    in
    {
      asn_of_vertex;
      vertex_of_asn;
      adj;
      providers;
      customers;
      peers;
      tier1s;
      multi_homed;
      num_links;
    }
end

let num_vertices t = Array.length t.asn_of_vertex
let vertices t = Array.init (num_vertices t) Fun.id
let asn t v = t.asn_of_vertex.(v)
let vertex_of_asn t asn = Hashtbl.find_opt t.vertex_of_asn asn
let neighbors t v = t.adj.(v)
let providers t v = t.providers.(v)
let customers t v = t.customers.(v)
let peers t v = t.peers.(v)

let rel t u v =
  let a = t.adj.(u) in
  let rec loop i =
    if i >= Array.length a then None
    else
      let w, r = a.(i) in
      if w = v then Some r else loop (i + 1)
  in
  loop 0

let degree t v = Array.length t.adj.(v)
let num_links t = t.num_links
let is_tier1 t v = Array.length t.providers.(v) = 0
let tier1s t = t.tier1s
let is_multi_homed t v = Array.length t.providers.(v) >= 2
let multi_homed t = t.multi_homed
let is_stub t v = Array.length t.customers.(v) = 0

let provider_dag_is_acyclic t =
  (* Kahn's algorithm on customer→provider edges. *)
  let n = num_vertices t in
  let indeg = Array.make n 0 in
  for v = 0 to n - 1 do
    indeg.(v) <- Array.length t.customers.(v)
  done;
  let queue = Queue.create () in
  for v = 0 to n - 1 do
    if indeg.(v) = 0 then Queue.add v queue
  done;
  let seen = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    incr seen;
    Array.iter
      (fun p ->
        indeg.(p) <- indeg.(p) - 1;
        if indeg.(p) = 0 then Queue.add p queue)
      t.providers.(v)
  done;
  !seen = n

let is_connected t =
  let n = num_vertices t in
  if n = 0 then true
  else begin
    let visited = Array.make n false in
    let queue = Queue.create () in
    visited.(0) <- true;
    Queue.add 0 queue;
    let count = ref 0 in
    while not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      incr count;
      Array.iter
        (fun (w, _) ->
          if not visited.(w) then begin
            visited.(w) <- true;
            Queue.add w queue
          end)
        t.adj.(v)
    done;
    !count = n
  end

let all_reach_tier1 t =
  (* BFS down the provider→customer edges from all tier-1s; a vertex reached
     this way has an uphill path to a tier-1 by reversal. *)
  let n = num_vertices t in
  let visited = Array.make n false in
  let queue = Queue.create () in
  Array.iter
    (fun v ->
      visited.(v) <- true;
      Queue.add v queue)
    t.tier1s;
  let count = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    incr count;
    Array.iter
      (fun c ->
        if not visited.(c) then begin
          visited.(c) <- true;
          Queue.add c queue
        end)
      t.customers.(v)
  done;
  !count = n

let pp_stats ppf t =
  let n = num_vertices t in
  let p2c = ref 0 and p2p = ref 0 and sib = ref 0 in
  for v = 0 to n - 1 do
    Array.iter
      (fun (_, r) ->
        match (r : Relationship.t) with
        | Customer -> incr p2c (* counted once: from the provider side *)
        | Peer -> incr p2p
        | Sibling -> incr sib
        | Provider -> ())
      t.adj.(v)
  done;
  Format.fprintf ppf
    "ASes=%d links=%d (p2c=%d p2p=%d sibling=%d) tier1=%d multi-homed=%d \
     stubs=%d"
    n t.num_links !p2c (!p2p / 2) (!sib / 2) (Array.length t.tier1s)
    (Array.length t.multi_homed)
    (Array.to_list (vertices t)
    |> List.filter (fun v -> is_stub t v)
    |> List.length)
