let classify t =
  let n = Topology.num_vertices t in
  let tier = Array.make n max_int in
  let queue = Queue.create () in
  Array.iter
    (fun v ->
      tier.(v) <- 0;
      Queue.add v queue)
    (Topology.tier1s t);
  (* BFS down provider→customer links: a customer's tier is one more than
     its best (lowest-tier) provider. *)
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    Array.iter
      (fun c ->
        if tier.(c) > tier.(v) + 1 then begin
          tier.(c) <- tier.(v) + 1;
          Queue.add c queue
        end)
      (Topology.customers t v)
  done;
  tier

let customer_cone_size t v =
  let n = Topology.num_vertices t in
  let visited = Array.make n false in
  let queue = Queue.create () in
  visited.(v) <- true;
  Queue.add v queue;
  let count = ref 0 in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    incr count;
    Array.iter
      (fun c ->
        if not visited.(c) then begin
          visited.(c) <- true;
          Queue.add c queue
        end)
      (Topology.customers t u)
  done;
  !count

let uphill_reachable t v =
  let n = Topology.num_vertices t in
  let visited = Array.make n false in
  let queue = Queue.create () in
  visited.(v) <- true;
  Queue.add v queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Array.iter
      (fun p ->
        if not visited.(p) then begin
          visited.(p) <- true;
          Queue.add p queue
        end)
      (Topology.providers t u)
  done;
  visited
