(** Tier classification and customer cones over the provider hierarchy. *)

val classify : Topology.t -> int array
(** [classify t] assigns each vertex its tier: 0 for tier-1 ASes (no
    providers), otherwise [1 + min (tier of providers)]. Indexed by
    vertex. *)

val customer_cone_size : Topology.t -> Topology.vertex -> int
(** Number of ASes reachable from a vertex by walking provider→customer
    links only, including the vertex itself — the set of destinations the
    AS can reach through customer routes. *)

val uphill_reachable : Topology.t -> Topology.vertex -> bool array
(** [uphill_reachable t v] marks every vertex reachable from [v] by walking
    customer→provider links only (including [v]) — the candidates for the
    uphill portion of [v]'s paths. *)
