type step = Up | Flat | Down | Side

let step_of_rel : Relationship.t -> step = function
  | Provider -> Up (* forwarding to my provider: climbing *)
  | Peer -> Flat
  | Customer -> Down
  | Sibling -> Side

let steps t path =
  let rec loop = function
    | [] | [ _ ] -> []
    | u :: (v :: _ as rest) -> begin
      match Topology.rel t u v with
      | None ->
        invalid_arg
          (Printf.sprintf "Valley.steps: no link %d-%d" (Topology.asn t u)
             (Topology.asn t v))
      | Some r -> step_of_rel r :: loop rest
    end
  in
  loop path

(* State machine over Up* Flat? Down*, with Side transparent. *)
let is_valley_free t path =
  match path with
  | [] | [ _ ] -> true
  | _ ->
    let rec check state = function
      | [] -> true
      | s :: rest -> begin
        match (state, s) with
        | _, Side -> check state rest
        | `Uphill, Up -> check `Uphill rest
        | `Uphill, Flat -> check `Peered rest
        | (`Uphill | `Peered | `Downhill), Down -> check `Downhill rest
        | `Peered, (Up | Flat) | `Downhill, (Up | Flat) -> false
      end
    in
    check `Uphill (steps t path)

let decompose t path =
  if not (is_valley_free t path) then
    invalid_arg "Valley.decompose: path is not valley-free";
  match path with
  | [] -> ([], [])
  | [ v ] -> ([ v ], [])
  | _ ->
    let ss = steps t path in
    (* index of the first Down step, if any *)
    let rec first_down i = function
      | [] -> None
      | Down :: _ -> Some i
      | (Up | Flat | Side) :: rest -> first_down (i + 1) rest
    in
    begin
      match first_down 0 ss with
      | None -> (path, [])
      | Some i ->
        (* the downhill portion starts at vertex [i] (the provider end of
           the first provider→customer link) *)
        let rec split k = function
          | [] -> ([], [])
          | v :: rest ->
            if k < i then
              let up, down = split (k + 1) rest in
              (v :: up, down)
            else ([], v :: rest)
        in
        split 0 path
    end

let downhill_nodes t path () =
  let _, down = decompose t path in
  List.sort_uniq compare down

let exists_path ?(avoid = fun _ -> false) t ~src ~dst =
  if src = dst then true
  else begin
    let n = Topology.num_vertices t in
    (* phases: 0 = uphill, 1 = crossed a peer link, 2 = downhill *)
    let visited = Array.make (n * 3) false in
    let queue = Queue.create () in
    let push v phase =
      let idx = (v * 3) + phase in
      if not visited.(idx) then begin
        visited.(idx) <- true;
        Queue.add (v, phase) queue
      end
    in
    push src 0;
    let found = ref false in
    while (not !found) && not (Queue.is_empty queue) do
      let v, phase = Queue.pop queue in
      Array.iter
        (fun (w, r) ->
          let next_phase =
            match ((r : Relationship.t), phase) with
            | Provider, 0 -> Some 0
            | Peer, 0 -> Some 1
            | Customer, _ -> Some 2
            | Sibling, p -> Some p
            | (Provider | Peer), _ -> None
          in
          match next_phase with
          | Some p when w = dst -> begin
            ignore p;
            found := true
          end
          | Some p when not (avoid w) -> push w p
          | Some _ | None -> ())
        (Topology.neighbors t v)
    done;
    !found
  end

let downhill_disjoint t p1 p2 =
  let endpoints p =
    match p with
    | [] -> invalid_arg "Valley.downhill_disjoint: empty path"
    | x :: _ -> (x, List.nth p (List.length p - 1))
  in
  let s1, d1 = endpoints p1 and s2, d2 = endpoints p2 in
  if s1 <> s2 || d1 <> d2 then
    invalid_arg "Valley.downhill_disjoint: paths differ in endpoints";
  let n1 = downhill_nodes t p1 () and n2 = downhill_nodes t p2 () in
  let module S = Set.Make (Int) in
  let set1 = S.of_list n1 and set2 = S.of_list n2 in
  let shared = S.inter set1 set2 in
  S.subset shared (S.of_list [ s1; d1 ])
