(** Business relationships between neighbouring ASes.

    Following Gao [2001] and the paper, neighbouring ASes engage in bilateral
    agreements that constrain routing policies. The two relevant kinds are
    customer–provider and peer–peer; we also recognise sibling links when
    inferring relationships from data, although the generator never produces
    them. *)

type t =
  | Customer  (** the neighbour is my customer *)
  | Provider  (** the neighbour is my provider *)
  | Peer  (** the neighbour is my peer *)
  | Sibling  (** mutual transit (only produced by inference on real data) *)

val invert : t -> t
(** Relationship as seen from the other side of the link:
    [invert Customer = Provider], [invert Peer = Peer], etc. *)

val equal : t -> t -> bool

val to_string : t -> string

val pp : Format.formatter -> t -> unit

val local_pref : t -> int
(** The conventional route preference induced by the relationship of the
    neighbour a route was learned from: customer routes (100) are preferred
    over peer routes (90) over provider routes (80). Sibling routes rank
    with customer routes. Used by every protocol engine in this repository,
    implementing the "prefer-customer" policy of the paper. *)
