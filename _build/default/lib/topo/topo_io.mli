(** Text I/O for AS topologies and AS-path data sets.

    Two formats are supported, so real data (CAIDA AS-relationship files,
    AS paths extracted from RouteViews table dumps) can replace the
    synthetic generator as the experiment substrate:

    - {b relationship files} (CAIDA "serial-1"): one link per line,
      [<asn>|<asn>|<code>] with code [-1] for provider→customer (first AS
      is the provider), [0] for peer–peer, and [2] for sibling; [#] starts
      a comment;
    - {b path files}: one AS path per line, AS numbers separated by
      whitespace, vantage point first, origin last; [#] starts a comment. *)

val parse_relationships : string -> Topology.t
(** Parse the content of a relationship file.
    @raise Invalid_argument on malformed lines (with line number). *)

val load_relationships : string -> Topology.t
(** [load_relationships path] reads and parses a relationship file.
    @raise Sys_error if the file cannot be read. *)

val relationships_to_string : Topology.t -> string
(** Serialize a topology to the relationship format. Round-trips with
    {!parse_relationships} (up to line order). *)

val save_relationships : Topology.t -> string -> unit
(** Write {!relationships_to_string} output to a file. *)

val parse_paths : string -> int list list
(** Parse the content of a path file. Empty lines are skipped; consecutive
    duplicate ASNs (prepending) are preserved verbatim.
    @raise Invalid_argument on non-numeric tokens (with line number). *)

val load_paths : string -> int list list
(** [load_paths path] reads and parses a path file. *)

val paths_to_string : int list list -> string
(** Serialize AS paths, one per line. Round-trips with {!parse_paths}. *)

val save_paths : int list list -> string -> unit
(** Write {!paths_to_string} output to a file. *)
