lib/topo/topo_gen.ml: Array Float Hashtbl List Random Topology
