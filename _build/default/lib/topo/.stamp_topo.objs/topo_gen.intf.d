lib/topo/topo_gen.mli: Topology
