lib/topo/relationship.ml: Format
