lib/topo/valley.ml: Array Int List Printf Queue Relationship Set Topology
