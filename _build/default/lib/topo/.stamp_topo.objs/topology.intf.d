lib/topo/topology.mli: Format Relationship
