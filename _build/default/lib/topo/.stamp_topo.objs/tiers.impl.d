lib/topo/tiers.ml: Array Queue Topology
