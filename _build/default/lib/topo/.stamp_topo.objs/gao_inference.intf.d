lib/topo/gao_inference.mli: Topology
