lib/topo/topology.ml: Array Format Fun Hashtbl List Printf Queue Relationship
