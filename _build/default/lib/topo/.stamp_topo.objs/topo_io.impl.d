lib/topo/topo_io.ml: Array Buffer Fun List Printf Relationship String Topology
