lib/topo/topo_io.mli: Topology
