lib/topo/gao_inference.ml: Array Float Hashtbl List Option Relationship Topology
