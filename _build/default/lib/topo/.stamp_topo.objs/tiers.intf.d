lib/topo/tiers.mli: Topology
