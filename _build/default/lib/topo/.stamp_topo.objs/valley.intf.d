lib/topo/valley.mli: Topology
