type params = {
  n : int;
  n_tier1 : int;
  mid_fraction : float;
  stub_extra_provider_prob : float;
  mid_extra_provider_prob : float;
  max_providers : int;
  peers_per_mid : float;
  seed : int;
}

let default_params ?(seed = 42) ~n () =
  {
    n;
    n_tier1 = min 10 (max 1 (n / 20));
    mid_fraction = 0.15;
    stub_extra_provider_prob = 0.45;
    mid_extra_provider_prob = 0.5;
    max_providers = 6;
    peers_per_mid = 2.0;
    seed;
  }

let validate p =
  if p.n < p.n_tier1 + 2 then invalid_arg "Topo_gen: n too small for n_tier1";
  if p.n_tier1 < 1 then invalid_arg "Topo_gen: n_tier1 < 1";
  if p.mid_fraction < 0. || p.mid_fraction > 1. then
    invalid_arg "Topo_gen: mid_fraction out of [0,1]";
  if
    p.stub_extra_provider_prob < 0.
    || p.stub_extra_provider_prob >= 1.
    || p.mid_extra_provider_prob < 0.
    || p.mid_extra_provider_prob >= 1.
  then invalid_arg "Topo_gen: extra-provider probabilities must be in [0,1)";
  if p.max_providers < 1 then invalid_arg "Topo_gen: max_providers < 1";
  if p.peers_per_mid < 0. then invalid_arg "Topo_gen: peers_per_mid < 0"

(* Number of providers: [base] plus a geometric tail with parameter [q],
   capped. *)
let draw_provider_count st ~base ~q ~cap =
  let rec loop k = if k >= cap || Random.State.float st 1. >= q then k else loop (k + 1) in
  loop base

(* Weighted choice of [k] distinct provider ASNs among candidates, with
   weight (customer count + 1) — preferential attachment. [customer_count]
   is indexed by ASN. *)
let choose_providers st ~k ~candidates ~customer_count =
  let chosen = Hashtbl.create 8 in
  let total_weight () =
    Array.fold_left
      (fun acc asn ->
        if Hashtbl.mem chosen asn then acc
        else acc +. float_of_int (customer_count.(asn) + 1))
      0. candidates
  in
  let pick () =
    let total = total_weight () in
    if total <= 0. then None
    else begin
      let r = Random.State.float st total in
      let acc = ref 0. in
      let found = ref None in
      (try
         Array.iter
           (fun asn ->
             if not (Hashtbl.mem chosen asn) then begin
               acc := !acc +. float_of_int (customer_count.(asn) + 1);
               if r < !acc then begin
                 found := Some asn;
                 raise Exit
               end
             end)
           candidates
       with Exit -> ());
      (* numeric slack: fall back to the last unchosen candidate *)
      match !found with
      | Some _ as s -> s
      | None ->
        Array.fold_left
          (fun acc asn -> if Hashtbl.mem chosen asn then acc else Some asn)
          None candidates
    end
  in
  let rec loop i acc =
    if i = 0 then acc
    else
      match pick () with
      | None -> acc
      | Some asn ->
        Hashtbl.replace chosen asn ();
        loop (i - 1) (asn :: acc)
  in
  loop k []

let generate p =
  validate p;
  let st = Random.State.make [| p.seed |] in
  let b = Topology.Builder.create () in
  let n_non_t1 = p.n - p.n_tier1 in
  let n_mid =
    min (n_non_t1 - 1)
      (max 1 (int_of_float (Float.round (float_of_int n_non_t1 *. p.mid_fraction))))
  in
  let n_stub = n_non_t1 - n_mid in
  (* ASNs: tier-1 = 1..n_tier1, mid = n_tier1+1 .. n_tier1+n_mid, stubs after. *)
  let t1_lo = 1 and t1_hi = p.n_tier1 in
  let mid_lo = t1_hi + 1 and mid_hi = t1_hi + n_mid in
  let customer_count = Array.make (p.n + 1) 0 in
  (* Tier-1 clique: full mesh of peer links. *)
  for a = t1_lo to t1_hi do
    for a' = a + 1 to t1_hi do
      Topology.Builder.add_p2p b a a'
    done
  done;
  (* Special case: a single tier-1 has no links yet; attach it when its
     first customer arrives (below, candidates always include it). *)
  let attach asn ~candidates ~base ~q =
    let k = draw_provider_count st ~base ~q ~cap:p.max_providers in
    let provs = choose_providers st ~k ~candidates ~customer_count in
    List.iter
      (fun prov ->
        Topology.Builder.add_p2c b ~provider:prov ~customer:asn;
        customer_count.(prov) <- customer_count.(prov) + 1)
      provs
  in
  (* Mid-tier ASes: providers among tier-1s and earlier mid ASes. *)
  for asn = mid_lo to mid_hi do
    let candidates =
      Array.init (asn - 1) (fun i -> i + 1)
      (* all ASNs < asn are tier-1 or earlier mid: transit-capable *)
    in
    attach asn ~candidates ~base:2 ~q:p.mid_extra_provider_prob
  done;
  (* Lateral peering among mid-tier ASes. *)
  if n_mid >= 2 && p.peers_per_mid > 0. then begin
    let n_peer_links =
      int_of_float (Float.round (float_of_int n_mid *. p.peers_per_mid /. 2.))
    in
    let attempts = ref 0 in
    let added = ref 0 in
    while !added < n_peer_links && !attempts < n_peer_links * 20 do
      incr attempts;
      let a = mid_lo + Random.State.int st n_mid in
      let a' = mid_lo + Random.State.int st n_mid in
      if a <> a' then
        (* skip pairs already linked (provider or peer) *)
        try
          Topology.Builder.add_p2p b a a';
          incr added
        with Invalid_argument _ -> ()
    done
  end;
  (* Stub ASes: providers among all transit ASes (tier-1 + mid). *)
  let transit_candidates = Array.init mid_hi (fun i -> i + 1) in
  for asn = mid_hi + 1 to p.n do
    attach asn ~candidates:transit_candidates ~base:1
      ~q:p.stub_extra_provider_prob
  done;
  ignore n_stub;
  Topology.Builder.build b
