type t = Customer | Provider | Peer | Sibling

let invert = function
  | Customer -> Provider
  | Provider -> Customer
  | Peer -> Peer
  | Sibling -> Sibling

let equal a b =
  match (a, b) with
  | Customer, Customer | Provider, Provider | Peer, Peer | Sibling, Sibling ->
    true
  | (Customer | Provider | Peer | Sibling), _ -> false

let to_string = function
  | Customer -> "customer"
  | Provider -> "provider"
  | Peer -> "peer"
  | Sibling -> "sibling"

let pp ppf r = Format.pp_print_string ppf (to_string r)

let local_pref = function
  | Customer | Sibling -> 100
  | Peer -> 90
  | Provider -> 80
