(** Gao's AS-relationship inference algorithm (L. Gao, "On Inferring
    Autonomous System Relationships in the Internet", IEEE/ACM ToN 2001).

    The paper infers the AS relationships underlying its RouteViews graph
    with this algorithm; we implement the three-phase heuristic so a user
    can feed raw AS-path data (e.g. from routing table dumps) and obtain a
    relationship-annotated {!Topology.t}.

    Input paths are lists of external AS numbers in route order (first
    element closest to the vantage point, last element the origin).
    Consecutive duplicate ASes (path prepending) are collapsed. *)

type verdict =
  | P2c of int * int  (** [(provider, customer)] *)
  | P2p of int * int  (** peers, smaller AS number first *)
  | Sib of int * int  (** siblings, smaller AS number first *)

val infer : ?peer_degree_ratio:float -> int list list -> verdict list
(** Run the three phases on the given AS paths:
    + compute AS degrees and, per path, locate the top provider (highest
      degree AS); edges before it vote customer→provider, edges after it
      provider→customer;
    + edges that appear away from a path's top can never be peer links
      (valley-freeness allows at most one peer link, at the top); of the
      two top-adjacent edges, the one towards the higher-degree neighbour
      is marked as a peer candidate;
    + a candidate becomes a peer link when its endpoint degrees differ by
      less than [peer_degree_ratio] (default 60.) and its transit votes are
      balanced; otherwise balanced two-way transit votes yield a sibling
      and the dominant vote direction yields customer→provider.

    Edges with no evidence are classified customer→provider toward the
    higher-degree AS (or peer when degrees are close). The output covers
    every adjacent AS pair seen in the input exactly once. *)

val to_topology : verdict list -> Topology.t
(** Build a topology from inference verdicts. *)

val agreement : Topology.t -> verdict list -> float
(** Fraction of verdicts that match the relationships of the given
    ground-truth topology (links absent from the ground truth count as
    mismatches). Used to validate the inference on planted topologies. *)
