(** Valley-free path theory: step classification, uphill/downhill
    decomposition and downhill node-disjointness (Section 3.2 of the
    paper).

    A {e path} is a list of vertices in forwarding order, from the source AS
    (included) to the destination AS (included). Every consecutive pair must
    be linked in the topology. *)

type step =
  | Up  (** customer → provider link *)
  | Flat  (** peer – peer link *)
  | Down  (** provider → customer link *)
  | Side  (** sibling link (transparent for valley-freeness) *)

val steps : Topology.t -> Topology.vertex list -> step list
(** Classify each hop of a path.
    @raise Invalid_argument if two consecutive vertices are not linked. *)

val is_valley_free : Topology.t -> Topology.vertex list -> bool
(** Whether the path matches the valley-free pattern
    [Up* Flat? Down*] (sibling steps permitted anywhere). Paths of length
    0 or 1 are vacuously valley-free. *)

val decompose :
  Topology.t ->
  Topology.vertex list ->
  Topology.vertex list * Topology.vertex list
(** [decompose t path] splits a valley-free path into
    [(uphill_portion, downhill_portion)]: the downhill portion is the
    maximal suffix of provider→customer links together with the ASes at
    both ends of each such link; the uphill portion is the rest of the path
    (possibly including a peer link at the top). Either portion may be
    empty. When both are non-empty they share no vertex.
    @raise Invalid_argument if the path is not valley-free. *)

val downhill_nodes : Topology.t -> Topology.vertex list -> unit -> int list
(** [downhill_nodes t path ()] is the vertex set (as a sorted list) of the
    downhill portion of a valley-free path — the quantity over which STAMP
    requires disjointness.
    @raise Invalid_argument if the path is not valley-free. *)

val exists_path :
  ?avoid:(Topology.vertex -> bool) ->
  Topology.t ->
  src:Topology.vertex ->
  dst:Topology.vertex ->
  bool
(** Whether any valley-free path from [src] to [dst] exists that traverses
    no vertex satisfying [avoid] (endpoints are exempt). Computed by BFS
    over the (vertex × phase) product graph with phases uphill / after-peer
    / downhill. Used to identify {e unavoidable} ASes — those whose loss no
    routing scheme, STAMP included, can route around. *)

val downhill_disjoint :
  Topology.t -> Topology.vertex list -> Topology.vertex list -> bool
(** [downhill_disjoint t p1 p2] holds when the downhill portions of the two
    valley-free paths share no vertex other than their common source and
    destination — the paper's complementary-path condition.
    @raise Invalid_argument if either path is not valley-free, or the two
    paths do not share source and destination. *)
