type verdict = P2c of int * int | P2p of int * int | Sib of int * int

(* Collapse consecutive duplicates (AS-path prepending). *)
let collapse path =
  let rec loop = function
    | a :: b :: rest when a = b -> loop (b :: rest)
    | a :: rest -> a :: loop rest
    | [] -> []
  in
  loop path

let ordered_pair a b = if a < b then (a, b) else (b, a)

let infer ?(peer_degree_ratio = 60.) paths =
  let paths = List.map collapse paths in
  (* Degrees from the union of all path edges. *)
  let neighbours : (int, (int, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 256 in
  let note_edge a b =
    let tbl =
      match Hashtbl.find_opt neighbours a with
      | Some tbl -> tbl
      | None ->
        let tbl = Hashtbl.create 8 in
        Hashtbl.replace neighbours a tbl;
        tbl
    in
    Hashtbl.replace tbl b ()
  in
  let rec edges_of = function
    | a :: (b :: _ as rest) ->
      note_edge a b;
      note_edge b a;
      edges_of rest
    | [] | [ _ ] -> ()
  in
  List.iter edges_of paths;
  let degree a =
    match Hashtbl.find_opt neighbours a with
    | Some tbl -> Hashtbl.length tbl
    | None -> 0
  in
  (* Phase 1: transit votes. transit[(a, b)] counts the paths in which b
     appears on the provider side of the a-b link. Viewed as a forwarding
     path from the vantage point to the origin, a valley-free path climbs
     until the top provider (the highest-degree AS) and descends after
     it. *)
  let transit : (int * int, int) Hashtbl.t = Hashtbl.create 256 in
  let votes a b = Option.value ~default:0 (Hashtbl.find_opt transit (a, b)) in
  let vote a b = Hashtbl.replace transit (a, b) (1 + votes a b) in
  let top_provider_index arr =
    let best = ref 0 in
    Array.iteri (fun i a -> if degree a > degree arr.(!best) then best := i) arr;
    !best
  in
  (* Phase 2 bookkeeping: a valley-free path has at most one peer link, at
     its top, so edges not adjacent to a top provider can never be peer
     links; and of the two top-adjacent edges, the peer candidate is the
     one towards the higher-degree neighbour (Gao's Algorithm 3). *)
  let not_peering : (int * int, unit) Hashtbl.t = Hashtbl.create 256 in
  let potential_peer : (int * int, unit) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun path ->
      match path with
      | [] | [ _ ] -> ()
      | _ ->
        let arr = Array.of_list path in
        let len = Array.length arr in
        let j = top_provider_index arr in
        for i = 0 to len - 2 do
          let a = arr.(i) and b = arr.(i + 1) in
          if i < j then vote a b (* b transits for a *) else vote b a;
          if i <> j - 1 && i <> j then
            Hashtbl.replace not_peering (ordered_pair a b) ()
        done;
        (* mark the candidate peer edge at the top *)
        let deg_left = if j > 0 then degree arr.(j - 1) else -1 in
        let deg_right = if j < len - 1 then degree arr.(j + 1) else -1 in
        if deg_left >= 0 || deg_right >= 0 then
          if deg_left > deg_right then
            Hashtbl.replace potential_peer (ordered_pair arr.(j - 1) arr.(j)) ()
          else
            Hashtbl.replace potential_peer (ordered_pair arr.(j) arr.(j + 1)) ())
    paths;
  (* Final classification of every adjacent pair. *)
  let pairs : (int * int, unit) Hashtbl.t = Hashtbl.create 256 in
  Hashtbl.iter
    (fun a tbl ->
      Hashtbl.iter (fun b () -> Hashtbl.replace pairs (ordered_pair a b) ()) tbl)
    neighbours;
  let verdicts = ref [] in
  Hashtbl.iter
    (fun (a, b) () ->
      let tab = votes a b (* b provider side *) and tba = votes b a in
      let da = float_of_int (degree a) and db = float_of_int (degree b) in
      let ratio_ok =
        Float.max da db /. Float.max 1. (Float.min da db) < peer_degree_ratio
      in
      let balanced = 2 * min tab tba >= max tab tba in
      let peer_candidate =
        Hashtbl.mem potential_peer (a, b)
        && (not (Hashtbl.mem not_peering (a, b)))
        && ratio_ok
      in
      let verdict =
        if peer_candidate && balanced then P2p (a, b)
        else if tab > 0 && tba > 0 && balanced then Sib (a, b)
        else if tab > tba then P2c (b, a) (* b transits for a: b provider *)
        else if tba > tab then P2c (a, b)
        else if
          (* no transit evidence at all *)
          ratio_ok && not (Hashtbl.mem not_peering (a, b))
        then P2p (a, b)
        else if da >= db then P2c (a, b)
        else P2c (b, a)
      in
      verdicts := verdict :: !verdicts)
    pairs;
  List.sort compare !verdicts

let to_topology verdicts =
  let b = Topology.Builder.create () in
  List.iter
    (function
      | P2c (p, c) -> Topology.Builder.add_p2c b ~provider:p ~customer:c
      | P2p (x, y) -> Topology.Builder.add_p2p b x y
      | Sib (x, y) -> Topology.Builder.add_sibling b x y)
    verdicts;
  Topology.Builder.build b

let agreement truth verdicts =
  if verdicts = [] then 0.
  else begin
    let correct = ref 0 in
    List.iter
      (fun v ->
        let ok =
          match v with
          | P2c (p, c) -> begin
            match
              (Topology.vertex_of_asn truth p, Topology.vertex_of_asn truth c)
            with
            | Some vp, Some vc ->
              Topology.rel truth vp vc = Some Relationship.Customer
            | _ -> false
          end
          | P2p (x, y) | Sib (x, y) -> begin
            let want : Relationship.t =
              match v with P2p _ -> Peer | _ -> Sibling
            in
            match
              (Topology.vertex_of_asn truth x, Topology.vertex_of_asn truth y)
            with
            | Some vx, Some vy -> Topology.rel truth vx vy = Some want
            | _ -> false
          end
        in
        if ok then incr correct)
      verdicts;
    float_of_int !correct /. float_of_int (List.length verdicts)
  end
