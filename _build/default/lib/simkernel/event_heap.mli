(** Binary min-heap of timestamped events with FIFO tie-breaking.

    Events pushed with equal timestamps pop in insertion order, which makes
    simulations deterministic regardless of heap internals. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> time:float -> 'a -> unit
(** @raise Invalid_argument if [time] is NaN. *)

val pop_min : 'a t -> (float * 'a) option
(** Remove and return the earliest event ([None] when empty). *)

val peek_time : 'a t -> float option
(** Timestamp of the earliest event without removing it. *)

val size : 'a t -> int

val is_empty : 'a t -> bool
