(** Discrete-event simulation engine: a virtual clock, a deterministic RNG
    and an event queue of callbacks.

    All protocol engines in this repository (BGP, R-BGP, STAMP) are driven
    by one [Sim.t] per experiment run. Reproducibility contract: the same
    seed and the same sequence of [schedule] calls produce the same
    execution. *)

type t

val create : ?seed:int -> unit -> t
(** Fresh simulation at time 0 (default seed 0). *)

val now : t -> float
(** Current virtual time, in seconds. *)

val rng : t -> Random.State.t
(** The simulation's RNG. All protocol randomness must come from here. *)

val schedule : t -> delay:float -> (t -> unit) -> unit
(** Run a callback [delay] seconds from now.
    @raise Invalid_argument on negative or NaN delay. *)

val schedule_at : t -> time:float -> (t -> unit) -> unit
(** Run a callback at an absolute time.
    @raise Invalid_argument if [time] precedes the current time. *)

val step : t -> bool
(** Process the earliest pending event; [false] when the queue is empty. *)

val run : ?until:float -> ?max_events:int -> t -> unit
(** Process events until the queue drains, the clock passes [until], or
    [max_events] have been processed (default: unbounded). Events scheduled
    past [until] remain queued; when a finite [until] is given the clock
    advances to it even if no event fell inside the window, so a simulation
    can be stepped in fixed increments. *)

val pending : t -> int
(** Number of queued events. *)

val events_processed : t -> int
(** Total events processed since creation. *)
