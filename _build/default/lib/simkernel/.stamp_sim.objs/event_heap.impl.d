lib/simkernel/event_heap.ml: Array Float
