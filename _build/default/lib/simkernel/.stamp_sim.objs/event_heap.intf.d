lib/simkernel/event_heap.mli:
