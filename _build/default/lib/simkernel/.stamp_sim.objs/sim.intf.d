lib/simkernel/sim.mli: Random
