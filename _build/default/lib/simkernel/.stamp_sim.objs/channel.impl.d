lib/simkernel/channel.ml: Float Random Sim
