lib/simkernel/channel.mli: Sim
