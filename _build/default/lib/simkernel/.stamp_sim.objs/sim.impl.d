lib/simkernel/sim.ml: Event_heap Float Random
