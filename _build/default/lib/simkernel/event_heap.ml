type 'a cell = { time : float; seq : int; payload : 'a }

type 'a t = {
  mutable data : 'a cell array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { data = [||]; size = 0; next_seq = 0 }

let cell_lt a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t =
  let cap = Array.length t.data in
  if t.size = cap then begin
    let new_cap = max 16 (cap * 2) in
    let data = Array.make new_cap t.data.(0) in
    Array.blit t.data 0 data 0 t.size;
    t.data <- data
  end

let push t ~time payload =
  if Float.is_nan time then invalid_arg "Event_heap.push: NaN time";
  let cell = { time; seq = t.next_seq; payload } in
  t.next_seq <- t.next_seq + 1;
  if Array.length t.data = 0 then t.data <- Array.make 16 cell else grow t;
  (* sift up *)
  let i = ref t.size in
  t.size <- t.size + 1;
  t.data.(!i) <- cell;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if cell_lt t.data.(!i) t.data.(parent) then begin
      let tmp = t.data.(parent) in
      t.data.(parent) <- t.data.(!i);
      t.data.(!i) <- tmp;
      i := parent
    end
    else continue := false
  done

let pop_min t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      (* sift down *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.size && cell_lt t.data.(l) t.data.(!smallest) then smallest := l;
        if r < t.size && cell_lt t.data.(r) t.data.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          let tmp = t.data.(!smallest) in
          t.data.(!smallest) <- t.data.(!i);
          t.data.(!i) <- tmp;
          i := !smallest
        end
        else continue := false
      done
    end;
    Some (top.time, top.payload)
  end

let peek_time t = if t.size = 0 then None else Some t.data.(0).time
let size t = t.size
let is_empty t = t.size = 0
