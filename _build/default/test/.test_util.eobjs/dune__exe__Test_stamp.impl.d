test/test_stamp.ml: Alcotest Array Bgp_net Color Coloring Float Fwd_walk List Phi Printf QCheck2 Random Relationship Route Runner Scenario Sim Stamp_net Test_support Topo_gen Topology Valley
