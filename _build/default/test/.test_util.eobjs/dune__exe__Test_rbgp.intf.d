test/test_rbgp.mli:
