test/test_hybrid.ml: Alcotest Array Bgp_net Fwd_walk Hybrid_net Printf QCheck2 Random Route Runner Scenario Sim Static_route Test_support Tiers Topo_gen Topology
