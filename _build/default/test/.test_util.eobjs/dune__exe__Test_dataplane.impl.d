test/test_dataplane.ml: Alcotest Array Bgp_net Fleet Float Int32 Lazy List Lpm Option Prefix QCheck2 Random Static_route Test_support Topo_gen Topology Traffic Valley Vantage
