test/test_routing.ml: Alcotest Array Disjoint List QCheck2 Random Relationship Static_route Test_support Topo_gen Topology Valley
