test/test_sim.ml: Alcotest Channel Event_heap Float Fun List Option Printf QCheck2 Random Sim Test_support
