test/test_analysis.ml: Alcotest Array Cdf Experiment Fwd_walk Lazy List Printf Random Relationship Runner Scenario Sim Tiers Topo_gen Topology Transient
