test/test_bgp.ml: Alcotest Array Bgp_net Decision Export Fwd_walk List Mrai Option Printf QCheck2 Random Relationship Route Sim Static_route Test_support Topo_gen Topology
