test/test_stamp.mli:
