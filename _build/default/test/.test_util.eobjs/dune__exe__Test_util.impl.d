test/test_util.ml: Alcotest Array Cdf Float Fun List QCheck2 Random Sample Stat Test_support
