test/test_lemmas.ml: Alcotest Array Bgp_net Coloring Fwd_walk QCheck2 Random Rbgp_net Scenario Sim Stamp_net Test_support Topo_gen Topology
