test/test_props.ml: Alcotest Array Decision Event_heap Export Format Int32 List Prefix Printf QCheck2 Random Relationship Route Static_route Test_support Topo_gen Topology Valley
