test/test_policy.ml: Alcotest Array Bgp_net Coloring Fun Fwd_walk List Printf QCheck2 Random Relationship Runner Scenario Sim Stamp_net Static_route Test_support Topo_gen Topology
