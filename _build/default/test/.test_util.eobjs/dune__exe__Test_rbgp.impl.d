test/test_rbgp.ml: Alcotest Array Bgp_net Fwd_walk List Printf QCheck2 Random Rbgp_net Route Runner Scenario Sim Static_route Test_support Topo_gen Topology
