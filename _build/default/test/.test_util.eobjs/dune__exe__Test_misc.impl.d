test/test_misc.ml: Alcotest Array Astring Channel Coloring Experiment Format Fwd_walk List Mrai Printf Random Relationship Report Route Runner Scenario Sim Stamp_net Test_support Topo_gen Topology
