test/test_topo.ml: Alcotest Array Astring Gao_inference List Printf Random Relationship Static_route Test_support Tiers Topo_gen Topo_io Topology Valley
