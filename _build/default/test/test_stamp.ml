(* Tests for the STAMP core: colours, coloring, the two-process engine
   (lock propagation, selective announcements, downhill disjointness — the
   paper's Theorem 4.1), ET-driven forwarding (Theorem 5.1), and the Φ
   analysis of Section 6.1. *)

let diamond = Test_support.diamond
let diamond_plus = Test_support.diamond_plus
let vtx = Test_support.vtx

let converge ?(seed = 7) ?coloring topo ~dest =
  let coloring =
    match coloring with
    | Some c -> c
    | None -> Coloring.create Coloring.Random_choice ~seed topo ~dest
  in
  let sim = Sim.create ~seed () in
  let net = Stamp_net.create sim topo ~dest ~coloring () in
  Stamp_net.start net;
  Sim.run sim;
  (sim, net)

(* --- Color ------------------------------------------------------------- *)

let test_color_basics () =
  Alcotest.(check bool) "other red" true (Color.equal (Color.other Color.Red) Color.Blue);
  Alcotest.(check bool) "other blue" true (Color.equal (Color.other Color.Blue) Color.Red);
  List.iter
    (fun c ->
      Alcotest.(check bool) "roundtrip" true
        (Color.equal c (Color.of_int (Color.to_int c))))
    Color.all;
  Alcotest.check_raises "of_int" (Invalid_argument "Color.of_int: 2") (fun () ->
      ignore (Color.of_int 2))

(* --- Coloring ----------------------------------------------------------- *)

let test_effective_origin () =
  let t = diamond_plus () in
  Alcotest.(check (option int)) "multi-homed is its own origin"
    (Some (vtx t 3))
    (Coloring.effective_origin t (vtx t 3));
  Alcotest.(check (option int)) "single-homed climbs"
    (Some (vtx t 3))
    (Coloring.effective_origin t (vtx t 4));
  Alcotest.(check (option int)) "tier-1 has none" None
    (Coloring.effective_origin t (vtx t 10));
  let chain = Test_support.chain 4 in
  Alcotest.(check (option int)) "chain reaches tier-1" None
    (Coloring.effective_origin chain (vtx chain 4))

let test_coloring_deterministic () =
  let t = diamond_plus () in
  let prefs seed =
    let c = Coloring.create Coloring.Random_choice ~seed t ~dest:(vtx t 4) in
    Array.to_list (Coloring.preference c (vtx t 3))
  in
  Alcotest.(check (list int)) "same seed" (prefs 5) (prefs 5);
  Alcotest.(check int) "both providers listed" 2 (List.length (prefs 5))

(* The Φ = 0.75 topology: m has providers a (reaching tier-1 T1 only) and
   b (reaching both T1 and T2). Locking through a is always good; locking
   through b is good only when b's walk picks T2. *)
let phi_075_topology () =
  let b = Topology.Builder.create () in
  Topology.Builder.add_p2p b 1 2;
  (* T1 = 1, T2 = 2 *)
  Topology.Builder.add_p2c b ~provider:1 ~customer:11;
  (* a = 11 *)
  Topology.Builder.add_p2c b ~provider:1 ~customer:12;
  (* b = 12 *)
  Topology.Builder.add_p2c b ~provider:2 ~customer:12;
  Topology.Builder.add_p2c b ~provider:11 ~customer:30;
  Topology.Builder.add_p2c b ~provider:12 ~customer:30;
  (* m = 30 *)
  Topology.Builder.build b

let test_coloring_intelligent_ranks_good_provider_first () =
  let t = phi_075_topology () in
  let m = vtx t 30 in
  let c =
    Coloring.create (Coloring.Intelligent { samples = 200 }) ~seed:3 t ~dest:m
  in
  match Array.to_list (Coloring.preference c m) with
  | first :: _ ->
    Alcotest.(check int) "provider 11 ranked first" (vtx t 11) first
  | [] -> Alcotest.fail "no preference"

(* --- Lock guarantee and convergence ------------------------------------ *)

let test_everyone_gets_blue_diamond () =
  let t = diamond_plus () in
  let _, net = converge t ~dest:(vtx t 4) in
  Array.iter
    (fun v ->
      Alcotest.(check bool)
        (Printf.sprintf "AS %d has blue" (Topology.asn t v))
        true
        (Stamp_net.best net Color.Blue v <> None))
    (Topology.vertices t)

let prop_everyone_gets_blue =
  Test_support.qtest ~count:12 "lock guarantee: every AS obtains a blue route"
    Test_support.gen_params Test_support.print_params (fun p ->
      let t = Topo_gen.generate p in
      let st = Random.State.make [| p.Topo_gen.seed + 21 |] in
      let dest = Random.State.int st (Topology.num_vertices t) in
      let _, net = converge ~seed:p.Topo_gen.seed t ~dest in
      Array.for_all
        (fun v -> Stamp_net.best net Color.Blue v <> None)
        (Topology.vertices t))

let prop_blue_paths_valley_free =
  Test_support.qtest ~count:10 "both processes produce valley-free loop-free paths"
    Test_support.gen_params Test_support.print_params (fun p ->
      let t = Topo_gen.generate p in
      let st = Random.State.make [| p.Topo_gen.seed + 22 |] in
      let dest = Random.State.int st (Topology.num_vertices t) in
      let _, net = converge ~seed:p.Topo_gen.seed t ~dest in
      Array.for_all
        (fun v ->
          List.for_all
            (fun c ->
              match Stamp_net.path net c v with
              | None -> true
              | Some path ->
                Valley.is_valley_free t path
                && List.length path = List.length (List.sort_uniq compare path))
            Color.all)
        (Topology.vertices t))

(* --- Theorem 4.1: the selective-announcement machinery ------------------ *)

(* The theorem rests on two structural invariants of Section 4.1, both
   checked here on converged states:

   1. red and blue are never announced to the same provider (except on
      single-homed origin chains, where one relaying provider is allowed);
   2. at most one provider receives the blue route with [Lock] set, and
      lock bits only ever go to providers;

   plus the property the initial colouring is explicitly designed for:
   red and blue paths reach the destination "associated with different
   last hop providers". *)
let announcement_invariants t net =
  Array.for_all
    (fun u ->
      let to_providers color =
        List.filter
          (fun (n, _) ->
            Topology.rel t u n = Some Relationship.Provider)
          (Stamp_net.announced net color u)
      in
      let red = to_providers Color.Red and blue = to_providers Color.Blue in
      let both =
        List.filter (fun (n, _) -> List.mem_assoc n blue) red
      in
      let locked = List.filter snd blue in
      let relay_allowance =
        if Array.length (Topology.providers t u) = 1 then 1 else 0
      in
      List.length both <= relay_allowance
      && List.length locked <= 1
      && List.for_all
           (fun (n, lock) ->
             (not lock) || Topology.rel t u n = Some Relationship.Provider)
           (Stamp_net.announced net Color.Blue u))
    (Topology.vertices t)

let different_last_hop_providers t net dest =
  Array.for_all
    (fun v ->
      match (Stamp_net.path net Color.Red v, Stamp_net.path net Color.Blue v) with
      | Some red, Some blue -> begin
        let last_hop path =
          let rec penultimate = function
            | [ x; _ ] -> Some x
            | _ :: rest -> penultimate rest
            | [] -> None
          in
          penultimate path
        in
        match (last_hop red, last_hop blue) with
        | Some r, Some b
          when Topology.rel t dest r = Some Relationship.Provider
               && Topology.rel t dest b = Some Relationship.Provider ->
          r <> b
        | _ -> true (* a path enters via a peer/customer: unconstrained *)
      end
      | _ -> true)
    (Topology.vertices t)

let test_disjoint_diamond () =
  let t = diamond () in
  let dest = vtx t 3 in
  let _, net = converge t ~dest in
  Alcotest.(check bool) "announcement invariants" true
    (announcement_invariants t net);
  Alcotest.(check bool) "different last-hop providers" true
    (different_last_hop_providers t net dest);
  (* on the diamond the full downhill disjointness holds for the tier-1s *)
  List.iter
    (fun asn ->
      let v = vtx t asn in
      match
        (Stamp_net.path net Color.Red v, Stamp_net.path net Color.Blue v)
      with
      | Some red, Some blue ->
        Alcotest.(check bool)
          (Printf.sprintf "AS %d downhill disjoint" asn)
          true
          (Valley.downhill_disjoint t red blue)
      | _ -> Alcotest.failf "AS %d lacks a colour" asn)
    [ 10; 20 ]

let prop_theorem_4_1 =
  Test_support.qtest ~count:12
    "Theorem 4.1 machinery: selective announcements and distinct last-hop \
     providers"
    Test_support.gen_params Test_support.print_params (fun p ->
      let t = Topo_gen.generate p in
      let mh = Topology.multi_homed t in
      QCheck2.assume (Array.length mh > 0);
      let st = Random.State.make [| p.Topo_gen.seed + 23 |] in
      let dest = mh.(Random.State.int st (Array.length mh)) in
      let _, net = converge ~seed:p.Topo_gen.seed t ~dest in
      announcement_invariants t net && different_last_hop_providers t net dest)

(* --- Theorem 5.1: forwarding under a single event ----------------------- *)

let test_instant_delivery_after_failure_diamond () =
  (* fail either of the destination's provider links: every AS still
     delivers at the very instant of the failure, before any update
     propagates — packets are re-coloured at the AS adjacent to the
     failure (BGP blackholes in the same scenario) *)
  let t = diamond () in
  let dest = vtx t 3 in
  List.iter
    (fun provider_asn ->
      let sim, net = converge t ~dest in
      Stamp_net.fail_link net dest (vtx t provider_asn);
      Array.iteri
        (fun v s ->
          Alcotest.(check bool)
            (Printf.sprintf "fail 3-%d: AS %d delivered" provider_asn
               (Topology.asn t v))
            true
            (Fwd_walk.equal_status s Fwd_walk.Delivered))
        (Stamp_net.walk_all net);
      Sim.run sim;
      Array.iter
        (fun s ->
          Alcotest.(check bool) "delivered after reconvergence" true
            (Fwd_walk.equal_status s Fwd_walk.Delivered))
        (Stamp_net.walk_all net))
    [ 1; 2 ]

let test_instability_flag_set_and_cleared () =
  let t = diamond () in
  let dest = vtx t 3 in
  let sim, net = converge t ~dest in
  (* find the colour each provider carries and fail one of the links *)
  let p1 = vtx t 1 in
  let colour_via_p1 =
    List.find_opt
      (fun c ->
        match Stamp_net.best net c p1 with
        | Some r -> Route.learned_from r = Some dest
        | None -> false)
      Color.all
  in
  match colour_via_p1 with
  | None -> Alcotest.fail "AS 1 should have a direct route on some colour"
  | Some c ->
    Stamp_net.fail_link net dest p1;
    Alcotest.(check bool) "unstable right after failure" true
      (Stamp_net.unstable net c p1);
    Sim.run sim;
    (* after reconvergence AS 1 has a fresh route on that process again;
       the flag clears when an ET=1 announce installs it *)
    Alcotest.(check bool) "route restored" true
      (Stamp_net.best net c p1 <> None)

(* Deterministic aggregate (individual instances are too noisy for a
   random property): on a fixed 200-AS topology and eight single-link
   scenarios, STAMP's total transient count stays below BGP's. *)
let test_single_event_transients_below_bgp () =
  let t = Topo_gen.generate (Topo_gen.default_params ~n:200 ()) in
  let st = Random.State.make [| 42 |] in
  let specs = List.init 8 (fun _ -> Scenario.single_link st t) in
  let total proto =
    List.fold_left
      (fun acc (i, spec) ->
        acc + (Runner.run ~seed:i proto t spec).Runner.transient_count)
      0
      (List.mapi (fun i s -> (i, s)) specs)
  in
  let bgp = total Runner.Bgp and stamp = total Runner.Stamp in
  Alcotest.(check bool)
    (Printf.sprintf "stamp=%d <= bgp=%d" stamp bgp)
    true (stamp <= bgp)

let test_message_overhead_below_twice_bgp () =
  (* Section 6.3: two processes generate less than twice the updates of one
     standard BGP process. An aggregate claim: individual destinations can
     exceed the ratio slightly, so average over several. *)
  let t = Topo_gen.generate (Topo_gen.default_params ~n:150 ()) in
  let mh = Topology.multi_homed t in
  let dests = List.init 5 (fun i -> mh.(i * (Array.length mh / 5))) in
  let totals =
    List.map
      (fun dest ->
        let _, bgp = Test_support.converge_bgp ~seed:9 t ~dest in
        let _, stamp = converge ~seed:9 t ~dest in
        (Bgp_net.message_count bgp, Stamp_net.message_count stamp))
      dests
  in
  let bgp_total = List.fold_left (fun a (b, _) -> a + b) 0 totals in
  let stamp_total = List.fold_left (fun a (_, s) -> a + s) 0 totals in
  Alcotest.(check bool)
    (Printf.sprintf "stamp=%d < 2*bgp=%d" stamp_total (2 * bgp_total))
    true
    (stamp_total < 2 * bgp_total)

let test_deterministic () =
  let t = diamond_plus () in
  let run () =
    let sim, net = converge ~seed:13 t ~dest:(vtx t 4) in
    Stamp_net.fail_link net (vtx t 3) (vtx t 1);
    Sim.run sim;
    (Stamp_net.message_count net, Stamp_net.last_change net)
  in
  Alcotest.(check bool) "identical" true (run () = run ())

(* --- Φ (Section 6.1) ---------------------------------------------------- *)

let test_phi_diamond_is_one () =
  let t = diamond_plus () in
  let st = Random.State.make [| 2 |] in
  Alcotest.(check (float 0.001)) "phi(4)" 1.
    (Phi.phi ~samples:50 st t ~dest:(vtx t 4));
  Alcotest.(check (float 0.001)) "phi_exact(4)" 1. (Phi.phi_exact t ~dest:(vtx t 4))

let test_phi_chain_convention () =
  let t = Test_support.chain 4 in
  let st = Random.State.make [| 2 |] in
  Alcotest.(check (float 0.)) "no colouring point => 1.0" 1.
    (Phi.phi st t ~dest:(vtx t 4))

let test_phi_exact_075 () =
  let t = phi_075_topology () in
  Alcotest.(check (float 1e-9)) "phi_exact" 0.75 (Phi.phi_exact t ~dest:(vtx t 30))

let test_phi_sampling_approximates_exact () =
  let t = phi_075_topology () in
  let st = Random.State.make [| 4 |] in
  let estimate = Phi.phi ~samples:2000 st t ~dest:(vtx t 30) in
  Alcotest.(check bool)
    (Printf.sprintf "estimate %.3f within 0.05 of 0.75" estimate)
    true
    (Float.abs (estimate -. 0.75) < 0.05)

let test_phi_intelligent_beats_random () =
  let t = phi_075_topology () in
  let st = Random.State.make [| 4 |] in
  let intelligent =
    Phi.phi ~samples:300 ~selection:Phi.Intelligent_selection st t
      ~dest:(vtx t 30)
  in
  Alcotest.(check (float 0.001)) "intelligent = 1" 1. intelligent

let prop_phi_sampling_matches_exact =
  Test_support.qtest ~count:12 "Monte-Carlo Φ tracks exhaustive Φ"
    Test_support.gen_params Test_support.print_params (fun p ->
      let t = Topo_gen.generate { p with Topo_gen.n = min p.Topo_gen.n 30 } in
      let st = Random.State.make [| p.Topo_gen.seed + 25 |] in
      let dest = Random.State.int st (Topology.num_vertices t) in
      match Phi.phi_exact t ~dest with
      | exact ->
        let est = Phi.phi ~samples:800 st t ~dest in
        Float.abs (est -. exact) < 0.12
      | exception Invalid_argument _ -> QCheck2.assume_fail ())

let test_partial_deployment_diamond () =
  (* destinations 10, 20 (tier-1) and 3 (disjoint tier-1 paths) are
     protected; 1 and 2 are not (their tier-1 paths share a node) *)
  let t = diamond () in
  Alcotest.(check (float 1e-9)) "fraction" 0.6 (Phi.partial_deployment_tier1 t)

let test_deployment_curve_monotone () =
  let t = Topo_gen.generate (Topo_gen.default_params ~n:150 ()) in
  let curve = Phi.deployment_curve t ~max_tier:3 in
  Alcotest.(check int) "four points" 4 (List.length curve);
  let fracs = List.map snd curve in
  Alcotest.(check bool) "monotone non-decreasing" true
    (fracs = List.sort compare fracs);
  Alcotest.(check (float 1e-9)) "tier-1 point matches"
    (Phi.partial_deployment_tier1 t)
    (List.assoc 0 curve)

let test_partial_deployment_full_set () =
  (* deploying everywhere protects everyone by definition *)
  let t = Test_support.diamond_plus () in
  Alcotest.(check (float 1e-9)) "full deployment" 1.
    (Phi.partial_deployment ~deployed:(fun _ -> true) t)

let test_partial_deployment_bounds () =
  let t = Topo_gen.generate (Topo_gen.default_params ~n:120 ()) in
  let f = Phi.partial_deployment_tier1 t in
  Alcotest.(check bool)
    (Printf.sprintf "0 <= %.3f <= 1" f)
    true
    (f >= 0. && f <= 1.)

let () =
  Alcotest.run "stamp"
    [
      ("color", [ Alcotest.test_case "basics" `Quick test_color_basics ]);
      ( "coloring",
        [
          Alcotest.test_case "effective origin" `Quick test_effective_origin;
          Alcotest.test_case "deterministic" `Quick test_coloring_deterministic;
          Alcotest.test_case "intelligent ranking" `Quick
            test_coloring_intelligent_ranks_good_provider_first;
        ] );
      ( "lock",
        [
          Alcotest.test_case "everyone gets blue (diamond)" `Quick
            test_everyone_gets_blue_diamond;
          prop_everyone_gets_blue;
          prop_blue_paths_valley_free;
        ] );
      ( "theorem-4.1",
        [
          Alcotest.test_case "diamond" `Quick test_disjoint_diamond;
          prop_theorem_4_1;
        ] );
      ( "theorem-5.1",
        [
          Alcotest.test_case "instant delivery after failure" `Quick
            test_instant_delivery_after_failure_diamond;
          Alcotest.test_case "instability flag" `Quick
            test_instability_flag_set_and_cleared;
          Alcotest.test_case "transients below BGP (aggregate)" `Quick
            test_single_event_transients_below_bgp;
          Alcotest.test_case "message overhead < 2x BGP" `Quick
            test_message_overhead_below_twice_bgp;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
        ] );
      ( "phi",
        [
          Alcotest.test_case "diamond = 1" `Quick test_phi_diamond_is_one;
          Alcotest.test_case "chain convention" `Quick test_phi_chain_convention;
          Alcotest.test_case "exact 0.75" `Quick test_phi_exact_075;
          Alcotest.test_case "sampling approximates" `Quick
            test_phi_sampling_approximates_exact;
          Alcotest.test_case "intelligent beats random" `Quick
            test_phi_intelligent_beats_random;
          prop_phi_sampling_matches_exact;
          Alcotest.test_case "partial deployment diamond" `Quick
            test_partial_deployment_diamond;
          Alcotest.test_case "partial deployment bounds" `Quick
            test_partial_deployment_bounds;
          Alcotest.test_case "deployment curve" `Quick
            test_deployment_curve_monotone;
          Alcotest.test_case "full deployment" `Quick
            test_partial_deployment_full_set;
        ] );
    ]
