(* Tests for the stamp_topo library: topology structure, generator
   invariants, valley-free path theory, relationship inference and I/O. *)

let diamond = Test_support.diamond
let diamond_plus = Test_support.diamond_plus
let vtx = Test_support.vtx

(* --- Topology construction ----------------------------------------- *)

let test_diamond_shape () =
  let t = diamond () in
  Alcotest.(check int) "vertices" 5 (Topology.num_vertices t);
  Alcotest.(check int) "links" 5 (Topology.num_links t);
  let v10 = vtx t 10 and v20 = vtx t 20 and v3 = vtx t 3 in
  Alcotest.(check bool) "10 tier1" true (Topology.is_tier1 t v10);
  Alcotest.(check bool) "20 tier1" true (Topology.is_tier1 t v20);
  Alcotest.(check bool) "3 not tier1" false (Topology.is_tier1 t v3);
  Alcotest.(check bool) "3 multi-homed" true (Topology.is_multi_homed t v3);
  Alcotest.(check bool) "3 stub" true (Topology.is_stub t v3);
  Alcotest.(check int) "tier1 count" 2 (Array.length (Topology.tier1s t))

let test_rel_symmetry () =
  let t = diamond () in
  let v10 = vtx t 10 and v1 = vtx t 1 and v20 = vtx t 20 in
  Alcotest.(check bool) "10 sees 1 as customer" true
    (Topology.rel t v10 v1 = Some Relationship.Customer);
  Alcotest.(check bool) "1 sees 10 as provider" true
    (Topology.rel t v1 v10 = Some Relationship.Provider);
  Alcotest.(check bool) "10-20 peer" true
    (Topology.rel t v10 v20 = Some Relationship.Peer);
  Alcotest.(check bool) "non-adjacent" true (Topology.rel t v1 v20 = None)

let test_builder_conflict () =
  let b = Topology.Builder.create () in
  Topology.Builder.add_p2c b ~provider:1 ~customer:2;
  (try
     Topology.Builder.add_p2p b 1 2;
     Alcotest.fail "expected conflict"
   with Invalid_argument _ -> ());
  (* consistent duplicate is fine *)
  Topology.Builder.add_p2c b ~provider:1 ~customer:2

let test_builder_self_link () =
  let b = Topology.Builder.create () in
  Alcotest.check_raises "self" (Invalid_argument "Topology.Builder: self link")
    (fun () -> Topology.Builder.add_p2p b 5 5)

let test_asn_roundtrip () =
  let t = diamond () in
  Array.iter
    (fun v ->
      match Topology.vertex_of_asn t (Topology.asn t v) with
      | Some v' -> Alcotest.(check int) "roundtrip" v v'
      | None -> Alcotest.fail "asn lookup failed")
    (Topology.vertices t)

let test_acyclic_detects_cycle () =
  let b = Topology.Builder.create () in
  Topology.Builder.add_p2c b ~provider:1 ~customer:2;
  Topology.Builder.add_p2c b ~provider:2 ~customer:3;
  Topology.Builder.add_p2c b ~provider:3 ~customer:1;
  let t = Topology.Builder.build b in
  Alcotest.(check bool) "cyclic" false (Topology.provider_dag_is_acyclic t)

let test_diamond_valid () =
  let t = diamond () in
  Alcotest.(check bool) "acyclic" true (Topology.provider_dag_is_acyclic t);
  Alcotest.(check bool) "connected" true (Topology.is_connected t);
  Alcotest.(check bool) "reach tier1" true (Topology.all_reach_tier1 t)

let test_disconnected () =
  let b = Topology.Builder.create () in
  Topology.Builder.add_p2c b ~provider:1 ~customer:2;
  Topology.Builder.add_p2c b ~provider:3 ~customer:4;
  let t = Topology.Builder.build b in
  Alcotest.(check bool) "disconnected" false (Topology.is_connected t)

(* --- Generator invariants ------------------------------------------ *)

let prop_generator_invariants =
  Test_support.qtest ~count:40 "generated topologies satisfy Gao–Rexford preconditions"
    Test_support.gen_params Test_support.print_params (fun p ->
      let t = Topo_gen.generate p in
      Topology.num_vertices t = p.Topo_gen.n
      && Topology.provider_dag_is_acyclic t
      && Topology.is_connected t
      && Topology.all_reach_tier1 t
      && Array.length (Topology.tier1s t) = p.Topo_gen.n_tier1)

let prop_generator_deterministic =
  Test_support.qtest ~count:10 "same seed, same topology"
    Test_support.gen_params Test_support.print_params (fun p ->
      let t1 = Topo_gen.generate p and t2 = Topo_gen.generate p in
      Topo_io.relationships_to_string t1 = Topo_io.relationships_to_string t2)

let test_generator_tier1_clique () =
  let t = Topo_gen.generate (Topo_gen.default_params ~n:200 ()) in
  let t1s = Topology.tier1s t in
  Array.iter
    (fun a ->
      Array.iter
        (fun b ->
          if a <> b then
            Alcotest.(check bool) "tier1 peering" true
              (Topology.rel t a b = Some Relationship.Peer))
        t1s)
    t1s

let test_generator_multihoming_present () =
  let t = Topo_gen.generate (Topo_gen.default_params ~n:300 ()) in
  let mh = Array.length (Topology.multi_homed t) in
  Alcotest.(check bool) "some multi-homing" true (mh > 50)

(* --- Valley-free path theory ---------------------------------------- *)

let test_steps_classification () =
  let t = diamond () in
  let path = [ vtx t 3; vtx t 1; vtx t 10; vtx t 20 ] in
  Alcotest.(check bool) "up up flat" true
    (Valley.steps t path = [ Valley.Up; Valley.Up; Valley.Flat ])

let test_valley_free_accepts () =
  let t = diamond () in
  (* 3 -> 1 -> 10 -> 20 -> 2: up up flat down *)
  let path = [ vtx t 3; vtx t 1; vtx t 10; vtx t 20; vtx t 2 ] in
  Alcotest.(check bool) "valley-free" true (Valley.is_valley_free t path)

let test_valley_free_rejects_valley () =
  let t = diamond () in
  (* 1 -> 3 -> 2: down then up = valley *)
  let path = [ vtx t 1; vtx t 3; vtx t 2 ] in
  Alcotest.(check bool) "valley" false (Valley.is_valley_free t path)

let test_valley_free_rejects_two_peers () =
  let t = diamond_plus () in
  (* 10 -> 20 is peer; then 20 -> 2 -> ... fine, but 1 -> 2 (peer) after
     10 -> 20 (peer) must be rejected: build 3 -> 1 -> 2 via peer then up *)
  let path = [ vtx t 3; vtx t 1; vtx t 2; vtx t 20 ] in
  (* up, flat, up: invalid *)
  Alcotest.(check bool) "peer then up" false (Valley.is_valley_free t path)

let test_decompose_full () =
  let t = diamond () in
  let path = [ vtx t 3; vtx t 1; vtx t 10; vtx t 20; vtx t 2 ] in
  let up, down = Valley.decompose t path in
  Alcotest.(check (list int)) "uphill"
    (List.map (vtx t) [ 3; 1; 10 ])
    up;
  Alcotest.(check (list int)) "downhill" (List.map (vtx t) [ 20; 2 ]) down

let test_decompose_pure_uphill () =
  let t = diamond () in
  let path = [ vtx t 3; vtx t 1; vtx t 10 ] in
  let up, down = Valley.decompose t path in
  Alcotest.(check (list int)) "uphill" path up;
  Alcotest.(check (list int)) "downhill empty" [] down

let test_decompose_pure_downhill () =
  let t = diamond () in
  let path = [ vtx t 10; vtx t 1; vtx t 3 ] in
  let up, down = Valley.decompose t path in
  Alcotest.(check (list int)) "uphill empty" [] up;
  Alcotest.(check (list int)) "downhill" path down

let test_downhill_disjoint_yes () =
  let t = diamond () in
  (* two downhill paths from 10/20 don't exist from same src; use paths
     from 3's providers to 3... instead test paths from 10 to 3:
     p1 = 10 -> 1 -> 3, p2 would need same endpoints; craft in
     diamond_plus: from 10 to 4: 10-1-3-4 vs ... only one. Use symmetric:
     compare 3->1->10->20->2->3? no. Simplest: two uphill+downhill paths
     from 3 to 3 don't exist. Use endpoints (3, 10):
     p1 = 3 -> 1 -> 10 (pure uphill, downhill empty)
     p2 = 3 -> 2 -> 20 -> 10 (up up flat... 20->10 is flat) downhill empty.
     Disjoint trivially. *)
  let p1 = [ vtx t 3; vtx t 1; vtx t 10 ] in
  let p2 = [ vtx t 3; vtx t 2; vtx t 20; vtx t 10 ] in
  Alcotest.(check bool) "disjoint" true (Valley.downhill_disjoint t p1 p2)

let test_downhill_disjoint_no () =
  let t = diamond_plus () in
  (* destination 4; paths from 10 and from 20 both end 3 -> 4 downhill:
     p1 = 10 -> 1 -> 3 -> 4, p2 = 10 -> 20 -> 2 -> 3 -> 4 share node 3 in
     their downhill portions. *)
  let p1 = [ vtx t 10; vtx t 1; vtx t 3; vtx t 4 ] in
  let p2 = [ vtx t 10; vtx t 20; vtx t 2; vtx t 3; vtx t 4 ] in
  Alcotest.(check bool) "not disjoint" false (Valley.downhill_disjoint t p1 p2)

let test_downhill_disjoint_endpoint_mismatch () =
  let t = diamond () in
  Alcotest.check_raises "endpoints"
    (Invalid_argument "Valley.downhill_disjoint: paths differ in endpoints")
    (fun () ->
      ignore
        (Valley.downhill_disjoint t
           [ vtx t 3; vtx t 1 ]
           [ vtx t 3; vtx t 2 ]))

let prop_oracle_paths_valley_free =
  Test_support.qtest ~count:25 "static-oracle paths are valley-free"
    Test_support.gen_params Test_support.print_params (fun p ->
      let t = Topo_gen.generate p in
      let dest = Random.State.int (Random.State.make [| p.Topo_gen.seed |])
                   (Topology.num_vertices t) in
      let table = Static_route.compute t ~dest in
      Array.for_all
        (fun v ->
          match Static_route.path_from table v with
          | None -> false (* all must reach on generated topologies *)
          | Some path -> Valley.is_valley_free t path)
        (Topology.vertices t))

(* --- Tiers ----------------------------------------------------------- *)

let test_tiers_diamond () =
  let t = diamond_plus () in
  let tiers = Tiers.classify t in
  Alcotest.(check int) "tier of 10" 0 tiers.(vtx t 10);
  Alcotest.(check int) "tier of 1" 1 tiers.(vtx t 1);
  Alcotest.(check int) "tier of 3" 2 tiers.(vtx t 3);
  Alcotest.(check int) "tier of 4" 3 tiers.(vtx t 4)

let test_customer_cone () =
  let t = diamond_plus () in
  Alcotest.(check int) "cone of 10" 4 (Tiers.customer_cone_size t (vtx t 10));
  (* 10, 1, 3, 4 *)
  Alcotest.(check int) "cone of 4" 1 (Tiers.customer_cone_size t (vtx t 4))

let test_uphill_reachable () =
  let t = diamond_plus () in
  let reach = Tiers.uphill_reachable t (vtx t 4) in
  Alcotest.(check bool) "reaches 10" true reach.(vtx t 10);
  Alcotest.(check bool) "reaches 20" true reach.(vtx t 20);
  Alcotest.(check bool) "not itself-sibling 2' case" true reach.(vtx t 4)

(* --- Gao inference --------------------------------------------------- *)

let oracle_paths t =
  (* All stable forwarding paths towards every destination, as ASN lists —
     a synthetic stand-in for RouteViews table dumps. *)
  let paths = ref [] in
  Array.iter
    (fun dest ->
      let table = Static_route.compute t ~dest in
      Array.iter
        (fun v ->
          match Static_route.path_from table v with
          | Some path when List.length path >= 2 ->
            paths := List.map (Topology.asn t) path :: !paths
          | Some _ | None -> ())
        (Topology.vertices t))
    (Topology.vertices t);
  !paths

(* A topology whose degrees correlate with the hierarchy, as in the real
   Internet — Gao's heuristic assumes exactly this. Tier-1s 1 and 2 peer
   and have the largest degrees. *)
let hierarchy () =
  let b = Topology.Builder.create () in
  Topology.Builder.add_p2p b 1 2;
  List.iter
    (fun c -> Topology.Builder.add_p2c b ~provider:1 ~customer:c)
    [ 3; 4; 5; 10; 11 ];
  List.iter
    (fun c -> Topology.Builder.add_p2c b ~provider:2 ~customer:c)
    [ 5; 6; 7; 12; 13 ];
  Topology.Builder.add_p2c b ~provider:5 ~customer:8;
  Topology.Builder.add_p2c b ~provider:5 ~customer:9;
  Topology.Builder.build b

let test_gao_inference_hierarchy () =
  let t = hierarchy () in
  let verdicts = Gao_inference.infer (oracle_paths t) in
  let agreement = Gao_inference.agreement t verdicts in
  Alcotest.(check bool)
    (Printf.sprintf "agreement %.2f >= 0.85" agreement)
    true (agreement >= 0.85)

let test_gao_to_topology () =
  let t = hierarchy () in
  let verdicts = Gao_inference.infer (oracle_paths t) in
  let t' = Gao_inference.to_topology verdicts in
  Alcotest.(check int) "same vertex count" (Topology.num_vertices t)
    (Topology.num_vertices t');
  Alcotest.(check int) "same link count" (Topology.num_links t)
    (Topology.num_links t')

let prop_gao_inference_recovers_p2c =
  Test_support.qtest ~count:10 "inference agreement >= 60% on planted topologies"
    Test_support.gen_params Test_support.print_params (fun p ->
      let t = Topo_gen.generate p in
      let verdicts = Gao_inference.infer (oracle_paths t) in
      Gao_inference.agreement t verdicts >= 0.6)

let test_gao_collapse_prepending () =
  (* prepended paths must not confuse the inference *)
  let paths = [ [ 1; 2; 2; 2; 3 ]; [ 3; 2; 1 ]; [ 1; 2; 3 ] ] in
  let verdicts = Gao_inference.infer paths in
  Alcotest.(check int) "two links" 2 (List.length verdicts)

(* --- I/O -------------------------------------------------------------- *)

let test_io_roundtrip () =
  let t = diamond_plus () in
  let s = Topo_io.relationships_to_string t in
  let t' = Topo_io.parse_relationships s in
  Alcotest.(check string) "roundtrip" s (Topo_io.relationships_to_string t')

let prop_io_roundtrip_random =
  Test_support.qtest ~count:15 "relationship file roundtrip on random topologies"
    Test_support.gen_params Test_support.print_params (fun p ->
      let t = Topo_gen.generate p in
      let s = Topo_io.relationships_to_string t in
      let t' = Topo_io.parse_relationships s in
      s = Topo_io.relationships_to_string t')

let test_io_parse_comments () =
  let t =
    Topo_io.parse_relationships "# comment\n1|2|-1 # trailing\n\n2|3|0\n"
  in
  Alcotest.(check int) "vertices" 3 (Topology.num_vertices t);
  Alcotest.(check int) "links" 2 (Topology.num_links t)

let test_io_parse_malformed () =
  (try
     ignore (Topo_io.parse_relationships "1|2|-1\nnot a line\n");
     Alcotest.fail "expected failure"
   with Invalid_argument msg ->
     Alcotest.(check bool) "mentions line 2" true
       (Astring.String.is_infix ~affix:"2" msg))

let test_io_paths () =
  let paths = Topo_io.parse_paths "1 2 3\n# c\n4\t5\n" in
  Alcotest.(check (list (list int))) "paths" [ [ 1; 2; 3 ]; [ 4; 5 ] ] paths

let () =
  Alcotest.run "topo"
    [
      ( "topology",
        [
          Alcotest.test_case "diamond shape" `Quick test_diamond_shape;
          Alcotest.test_case "relationship symmetry" `Quick test_rel_symmetry;
          Alcotest.test_case "builder conflict" `Quick test_builder_conflict;
          Alcotest.test_case "builder self link" `Quick test_builder_self_link;
          Alcotest.test_case "asn roundtrip" `Quick test_asn_roundtrip;
          Alcotest.test_case "cycle detection" `Quick test_acyclic_detects_cycle;
          Alcotest.test_case "diamond valid" `Quick test_diamond_valid;
          Alcotest.test_case "disconnected" `Quick test_disconnected;
        ] );
      ( "generator",
        [
          prop_generator_invariants;
          prop_generator_deterministic;
          Alcotest.test_case "tier1 clique" `Quick test_generator_tier1_clique;
          Alcotest.test_case "multihoming" `Quick
            test_generator_multihoming_present;
        ] );
      ( "valley",
        [
          Alcotest.test_case "steps" `Quick test_steps_classification;
          Alcotest.test_case "accepts valley-free" `Quick test_valley_free_accepts;
          Alcotest.test_case "rejects valley" `Quick test_valley_free_rejects_valley;
          Alcotest.test_case "rejects double peer" `Quick
            test_valley_free_rejects_two_peers;
          Alcotest.test_case "decompose full" `Quick test_decompose_full;
          Alcotest.test_case "decompose uphill" `Quick test_decompose_pure_uphill;
          Alcotest.test_case "decompose downhill" `Quick
            test_decompose_pure_downhill;
          Alcotest.test_case "disjoint yes" `Quick test_downhill_disjoint_yes;
          Alcotest.test_case "disjoint no" `Quick test_downhill_disjoint_no;
          Alcotest.test_case "disjoint endpoint mismatch" `Quick
            test_downhill_disjoint_endpoint_mismatch;
          prop_oracle_paths_valley_free;
        ] );
      ( "tiers",
        [
          Alcotest.test_case "classify" `Quick test_tiers_diamond;
          Alcotest.test_case "customer cone" `Quick test_customer_cone;
          Alcotest.test_case "uphill reachable" `Quick test_uphill_reachable;
        ] );
      ( "gao",
        [
          Alcotest.test_case "hierarchy inference" `Quick
            test_gao_inference_hierarchy;
          Alcotest.test_case "to_topology" `Quick test_gao_to_topology;
          prop_gao_inference_recovers_p2c;
          Alcotest.test_case "prepending collapse" `Quick
            test_gao_collapse_prepending;
        ] );
      ( "io",
        [
          Alcotest.test_case "roundtrip" `Quick test_io_roundtrip;
          prop_io_roundtrip_random;
          Alcotest.test_case "comments" `Quick test_io_parse_comments;
          Alcotest.test_case "malformed" `Quick test_io_parse_malformed;
          Alcotest.test_case "paths" `Quick test_io_paths;
        ] );
    ]
