(* Tests for the static stable-routing oracle and the disjoint-path
   machinery. *)

let diamond = Test_support.diamond
let diamond_plus = Test_support.diamond_plus
let vtx = Test_support.vtx

let path_to topo table asn_src =
  match Static_route.path_from table (vtx topo asn_src) with
  | None -> []
  | Some p -> Test_support.asns_of_path topo p

(* --- Static_route on hand-built topologies -------------------------- *)

let test_routes_to_stub () =
  let t = diamond () in
  let table = Static_route.compute t ~dest:(vtx t 3) in
  (* 1 and 2 have customer routes directly *)
  Alcotest.(check (list int)) "1 -> 3" [ 1; 3 ] (path_to t table 1);
  Alcotest.(check (list int)) "2 -> 3" [ 2; 3 ] (path_to t table 2);
  (* 10 via its customer 1; 20 via its customer 2 *)
  Alcotest.(check (list int)) "10 -> 3" [ 10; 1; 3 ] (path_to t table 10);
  Alcotest.(check (list int)) "20 -> 3" [ 20; 2; 3 ] (path_to t table 20)

let test_prefer_customer_over_peer () =
  let t = diamond_plus () in
  (* destination 3: AS 1 has customer route 1-3 (len 1) and peer route via
     2; must pick the customer route even though both are len 2 via peers'
     tie-break; also check 10 prefers customer 1 over peer 20 *)
  let table = Static_route.compute t ~dest:(vtx t 3) in
  Alcotest.(check (list int)) "1 -> 3" [ 1; 3 ] (path_to t table 1);
  Alcotest.(check (list int)) "10 -> 3" [ 10; 1; 3 ] (path_to t table 10);
  (match table.(vtx t 10) with
  | Some e ->
    Alcotest.(check bool) "class customer" true
      (Relationship.equal e.Static_route.cls Relationship.Customer)
  | None -> Alcotest.fail "no route");
  ignore table

let test_peer_route_class () =
  let t = diamond () in
  (* destination 1: 20 has no customer route to 1; its route goes via peer
     10 (10 has customer route to 1) *)
  let table = Static_route.compute t ~dest:(vtx t 1) in
  Alcotest.(check (list int)) "20 -> 1" [ 20; 10; 1 ] (path_to t table 20);
  match table.(vtx t 20) with
  | Some e ->
    Alcotest.(check bool) "class peer" true
      (Relationship.equal e.Static_route.cls Relationship.Peer)
  | None -> Alcotest.fail "no route"

let test_provider_route_class () =
  let t = diamond () in
  (* destination 1: AS 2's route must go up to 20, across to 10, down to 1 —
     learned from its provider 20 *)
  let table = Static_route.compute t ~dest:(vtx t 1) in
  Alcotest.(check (list int)) "2 -> 1" [ 2; 20; 10; 1 ] (path_to t table 2);
  (match table.(vtx t 2) with
  | Some e ->
    Alcotest.(check bool) "class provider" true
      (Relationship.equal e.Static_route.cls Relationship.Provider)
  | None -> Alcotest.fail "no route");
  (* 3 prefers ... both providers offer provider routes of equal length:
     via 1 (3-1-10? no: dest is 1, 3 -> 1 direct, len 1) *)
  Alcotest.(check (list int)) "3 -> 1" [ 3; 1 ] (path_to t table 3)

let test_tie_break_lowest_next_hop () =
  (* two equal-length customer routes: tie broken by lowest next-hop id *)
  let b = Topology.Builder.create () in
  Topology.Builder.add_p2c b ~provider:5 ~customer:1;
  Topology.Builder.add_p2c b ~provider:5 ~customer:2;
  Topology.Builder.add_p2c b ~provider:1 ~customer:9;
  Topology.Builder.add_p2c b ~provider:2 ~customer:9;
  let t = Topology.Builder.build b in
  let table = Static_route.compute t ~dest:(vtx t 9) in
  (* 5 has two customer routes 5-1-9 and 5-2-9; vertex of ASN 1 < vertex of
     ASN 2, so path via 1 wins *)
  Alcotest.(check (list int)) "5 -> 9" [ 5; 1; 9 ] (path_to t table 5)

let test_dest_entry () =
  let t = diamond () in
  let table = Static_route.compute t ~dest:(vtx t 3) in
  match table.(vtx t 3) with
  | Some e ->
    Alcotest.(check (list int)) "self path" [] e.Static_route.as_path
  | None -> Alcotest.fail "destination has no entry"

let test_valley_free_blocks_transit () =
  (* a stub with two providers must not provide transit between them:
     destination 10 reachable from 20 only through the peer link, never
     via customer 3 *)
  let t = diamond () in
  let table = Static_route.compute t ~dest:(vtx t 10) in
  Alcotest.(check (list int)) "20 -> 10" [ 20; 10 ] (path_to t table 20);
  Alcotest.(check (list int)) "2 -> 10" [ 2; 20; 10 ] (path_to t table 2)

let prop_oracle_total_on_generated =
  Test_support.qtest ~count:25 "every AS has a route on generated topologies"
    Test_support.gen_params Test_support.print_params (fun p ->
      let t = Topo_gen.generate p in
      let st = Random.State.make [| p.Topo_gen.seed + 1 |] in
      let dest = Random.State.int st (Topology.num_vertices t) in
      let table = Static_route.compute t ~dest in
      Array.for_all (fun e -> e <> None) table)

let prop_oracle_paths_consistent =
  Test_support.qtest ~count:25 "oracle paths are next-hop consistent and loop-free"
    Test_support.gen_params Test_support.print_params (fun p ->
      let t = Topo_gen.generate p in
      let st = Random.State.make [| p.Topo_gen.seed + 2 |] in
      let dest = Random.State.int st (Topology.num_vertices t) in
      let table = Static_route.compute t ~dest in
      Array.for_all
        (fun v ->
          match table.(v) with
          | None -> false
          | Some e ->
            let path = v :: e.Static_route.as_path in
            (* loop-free *)
            List.length path = List.length (List.sort_uniq compare path)
            (* consistent: each suffix is the next hop's path *)
            && begin
                 match e.Static_route.as_path with
                 | [] -> v = dest
                 | nh :: rest -> begin
                   match table.(nh) with
                   | None -> false
                   | Some e' -> e'.Static_route.as_path = rest
                 end
               end)
        (Topology.vertices t))

(* --- Disjoint -------------------------------------------------------- *)

let test_random_uphill_path_terminates_at_tier1 () =
  let t = diamond_plus () in
  let st = Random.State.make [| 5 |] in
  for _ = 1 to 50 do
    let path = Disjoint.random_uphill_path st t ~src:(vtx t 4) in
    (match path with
    | src :: _ -> Alcotest.(check int) "starts at src" (vtx t 4) src
    | [] -> Alcotest.fail "empty path");
    let last = List.nth path (List.length path - 1) in
    Alcotest.(check bool) "ends at tier1" true (Topology.is_tier1 t last);
    Alcotest.(check bool) "valley-free (pure uphill)" true
      (Valley.is_valley_free t path)
  done

let test_random_uphill_path_tier1_src () =
  let t = diamond () in
  let st = Random.State.make [| 5 |] in
  Alcotest.(check (list int)) "tier-1 source"
    [ vtx t 10 ]
    (Disjoint.random_uphill_path st t ~src:(vtx t 10))

let test_reaches_tier1_avoiding () =
  let t = diamond () in
  let v3 = vtx t 3 and v1 = vtx t 1 and v2 = vtx t 2 in
  Alcotest.(check bool) "open" true
    (Disjoint.reaches_tier1_avoiding t ~src:v3 ~blocked:(fun _ -> false));
  Alcotest.(check bool) "one blocked" true
    (Disjoint.reaches_tier1_avoiding t ~src:v3 ~blocked:(fun v -> v = v1));
  Alcotest.(check bool) "both blocked" false
    (Disjoint.reaches_tier1_avoiding t ~src:v3 ~blocked:(fun v ->
         v = v1 || v = v2))

let test_exists_disjoint_uphill_diamond () =
  let t = diamond () in
  let v3 = vtx t 3 in
  let p1 = [ v3; vtx t 1; vtx t 10 ] in
  Alcotest.(check bool) "disjoint exists" true
    (Disjoint.exists_disjoint_uphill t ~src:v3 p1)

let test_exists_disjoint_uphill_single_homed () =
  let t = Test_support.chain 4 in
  let v4 = vtx t 4 in
  let p = [ v4; vtx t 3; vtx t 2; vtx t 1 ] in
  Alcotest.(check bool) "no disjoint path" false
    (Disjoint.exists_disjoint_uphill t ~src:v4 p)

let test_enumerate_uphill_paths () =
  let t = diamond_plus () in
  let paths = Disjoint.enumerate_uphill_paths t ~src:(vtx t 4) in
  (* 4-3-1-10 and 4-3-2-20 *)
  Alcotest.(check int) "two paths" 2 (List.length paths);
  List.iter
    (fun p ->
      Alcotest.(check bool) "ends at tier1" true
        (Topology.is_tier1 t (List.nth p (List.length p - 1))))
    paths

let test_enumerate_limit () =
  let t = diamond_plus () in
  Alcotest.check_raises "limit"
    (Invalid_argument "Disjoint.enumerate_uphill_paths: limit exceeded")
    (fun () -> ignore (Disjoint.enumerate_uphill_paths ~limit:1 t ~src:(vtx t 4)))

let test_count_uphill_paths () =
  let t = diamond_plus () in
  Alcotest.(check bool) "count = 2" true
    (Disjoint.count_uphill_paths t ~src:(vtx t 4) = 2.);
  Alcotest.(check bool) "tier1 count = 1" true
    (Disjoint.count_uphill_paths t ~src:(vtx t 10) = 1.)

let prop_count_matches_enumeration =
  Test_support.qtest ~count:20 "DP path count equals enumeration"
    Test_support.gen_params Test_support.print_params (fun p ->
      let t = Topo_gen.generate { p with Topo_gen.n = min p.Topo_gen.n 30 } in
      let st = Random.State.make [| p.Topo_gen.seed + 3 |] in
      let src = Random.State.int st (Topology.num_vertices t) in
      match Disjoint.enumerate_uphill_paths ~limit:50_000 t ~src with
      | paths ->
        float_of_int (List.length paths) = Disjoint.count_uphill_paths t ~src
      | exception Invalid_argument _ -> QCheck2.assume_fail ())

let prop_random_walk_is_enumerated =
  Test_support.qtest ~count:20 "random uphill walks appear in the enumeration"
    Test_support.gen_params Test_support.print_params (fun p ->
      let t = Topo_gen.generate { p with Topo_gen.n = min p.Topo_gen.n 25 } in
      let st = Random.State.make [| p.Topo_gen.seed + 4 |] in
      let src = Random.State.int st (Topology.num_vertices t) in
      match Disjoint.enumerate_uphill_paths ~limit:50_000 t ~src with
      | paths ->
        let walk = Disjoint.random_uphill_path st t ~src in
        List.mem walk paths
      | exception Invalid_argument _ -> QCheck2.assume_fail ())

let () =
  Alcotest.run "routing"
    [
      ( "static_route",
        [
          Alcotest.test_case "routes to stub" `Quick test_routes_to_stub;
          Alcotest.test_case "prefer customer" `Quick
            test_prefer_customer_over_peer;
          Alcotest.test_case "peer class" `Quick test_peer_route_class;
          Alcotest.test_case "provider class" `Quick test_provider_route_class;
          Alcotest.test_case "tie break" `Quick test_tie_break_lowest_next_hop;
          Alcotest.test_case "dest entry" `Quick test_dest_entry;
          Alcotest.test_case "no stub transit" `Quick
            test_valley_free_blocks_transit;
          prop_oracle_total_on_generated;
          prop_oracle_paths_consistent;
        ] );
      ( "disjoint",
        [
          Alcotest.test_case "random walk reaches tier1" `Quick
            test_random_uphill_path_terminates_at_tier1;
          Alcotest.test_case "tier1 source" `Quick test_random_uphill_path_tier1_src;
          Alcotest.test_case "blocked reachability" `Quick
            test_reaches_tier1_avoiding;
          Alcotest.test_case "disjoint exists" `Quick
            test_exists_disjoint_uphill_diamond;
          Alcotest.test_case "single-homed no disjoint" `Quick
            test_exists_disjoint_uphill_single_homed;
          Alcotest.test_case "enumerate" `Quick test_enumerate_uphill_paths;
          Alcotest.test_case "enumerate limit" `Quick test_enumerate_limit;
          Alcotest.test_case "count" `Quick test_count_uphill_paths;
          prop_count_matches_enumeration;
          prop_random_walk_is_enumerated;
        ] );
    ]
