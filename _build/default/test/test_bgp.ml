(* Tests for the event-driven BGP engine: decision process, export policy,
   MRAI behaviour, convergence to the static oracle, and failure
   reactions. *)

let diamond = Test_support.diamond
let diamond_plus = Test_support.diamond_plus
let vtx = Test_support.vtx

(* --- Decision --------------------------------------------------------- *)

let route path cls = { Route.as_path = path; cls }

let test_decision_prefers_customer () =
  let customer = route [ 9; 0 ] Relationship.Customer in
  let peer = route [ 1; 0 ] Relationship.Peer in
  Alcotest.(check bool) "customer beats shorter peer" true
    (Decision.better customer peer);
  Alcotest.(check bool) "antisymmetric" false (Decision.better peer customer)

let test_decision_shorter_path () =
  let short = route [ 5; 0 ] Relationship.Provider in
  let long = route [ 2; 3; 0 ] Relationship.Provider in
  Alcotest.(check bool) "shorter wins" true (Decision.better short long)

let test_decision_lowest_next_hop () =
  let a = route [ 2; 0 ] Relationship.Peer in
  let b = route [ 7; 0 ] Relationship.Peer in
  Alcotest.(check bool) "lowest next hop" true (Decision.better a b)

let test_decision_origin_wins () =
  Alcotest.(check bool) "origin" true
    (Decision.better Route.origin (route [ 2; 0 ] Relationship.Customer))

let test_decision_select () =
  let rs =
    [
      route [ 9; 0 ] Relationship.Provider;
      route [ 3; 0 ] Relationship.Customer;
      route [ 1; 0 ] Relationship.Peer;
    ]
  in
  match Decision.select rs with
  | Some r -> Alcotest.(check (list int)) "selects customer" [ 3; 0 ] r.Route.as_path
  | None -> Alcotest.fail "no selection"

let test_decision_select_empty () =
  Alcotest.(check bool) "empty" true (Decision.select [] = None)

(* --- Export ------------------------------------------------------------ *)

let test_export_matrix () =
  let chk route_cls to_rel expected =
    Alcotest.(check bool)
      (Printf.sprintf "%s -> %s"
         (Relationship.to_string route_cls)
         (Relationship.to_string to_rel))
      expected
      (Export.allowed ~route_cls ~to_rel)
  in
  (* customer routes go everywhere *)
  chk Relationship.Customer Relationship.Customer true;
  chk Relationship.Customer Relationship.Peer true;
  chk Relationship.Customer Relationship.Provider true;
  (* peer routes only to customers *)
  chk Relationship.Peer Relationship.Customer true;
  chk Relationship.Peer Relationship.Peer false;
  chk Relationship.Peer Relationship.Provider false;
  (* provider routes only to customers *)
  chk Relationship.Provider Relationship.Customer true;
  chk Relationship.Provider Relationship.Peer false;
  chk Relationship.Provider Relationship.Provider false

(* --- Mrai --------------------------------------------------------------- *)

let test_mrai_interval_range () =
  let st = Random.State.make [| 1 |] in
  for _ = 1 to 100 do
    let m = Mrai.create st () in
    let i = Mrai.interval m in
    Alcotest.(check bool)
      (Printf.sprintf "interval %.2f in [22.5, 30]" i)
      true
      (i >= 22.5 && i <= 30.)
  done

let test_mrai_gating () =
  let st = Random.State.make [| 1 |] in
  let m = Mrai.create st () in
  Alcotest.(check bool) "initially ready" true (Mrai.ready m ~now:0.);
  Mrai.note_sent m ~now:0.;
  Alcotest.(check bool) "blocked" false (Mrai.ready m ~now:1.);
  Alcotest.(check bool) "ready after interval" true
    (Mrai.ready m ~now:(Mrai.interval m))

let test_mrai_zero_base () =
  let st = Random.State.make [| 1 |] in
  let m = Mrai.create st ~base:0. () in
  Mrai.note_sent m ~now:5.;
  Alcotest.(check bool) "no rate limit" true (Mrai.ready m ~now:5.)

(* --- Convergence to the oracle ----------------------------------------- *)

let table_equal t (a : Static_route.table) (b : Static_route.table) =
  let n = Topology.num_vertices t in
  let ok = ref true in
  for v = 0 to n - 1 do
    (match (a.(v), b.(v)) with
    | None, None -> ()
    | Some ea, Some eb
      when ea.Static_route.as_path = eb.Static_route.as_path
           && Relationship.equal ea.Static_route.cls eb.Static_route.cls ->
      ()
    | _ -> ok := false)
  done;
  !ok

let test_converges_to_oracle_diamond () =
  let t = diamond_plus () in
  Array.iter
    (fun dest ->
      let _, net = Test_support.converge_bgp t ~dest in
      let oracle = Static_route.compute t ~dest in
      Alcotest.(check bool)
        (Printf.sprintf "dest %d" (Topology.asn t dest))
        true
        (table_equal t oracle (Bgp_net.to_table net)))
    (Topology.vertices t)

let prop_sim_matches_oracle =
  Test_support.qtest ~count:15
    "event-driven BGP converges to the static fixed point"
    Test_support.gen_params Test_support.print_params (fun p ->
      let t = Topo_gen.generate p in
      let st = Random.State.make [| p.Topo_gen.seed + 7 |] in
      let dest = Random.State.int st (Topology.num_vertices t) in
      let _, net = Test_support.converge_bgp t ~dest in
      let oracle = Static_route.compute t ~dest in
      table_equal t oracle (Bgp_net.to_table net))

let test_all_delivered_after_convergence () =
  let t = diamond_plus () in
  let _, net = Test_support.converge_bgp t ~dest:(vtx t 4) in
  Array.iter
    (fun s ->
      Alcotest.(check bool) "delivered" true
        (Fwd_walk.equal_status s Fwd_walk.Delivered))
    (Bgp_net.walk_all net)

(* --- Failure handling ---------------------------------------------------- *)

let test_link_failure_reroutes () =
  let t = diamond () in
  let dest = vtx t 3 in
  let sim, net = Test_support.converge_bgp t ~dest in
  (* initial: 10 routes via 1 *)
  Alcotest.(check bool) "initial next hop" true
    (Bgp_net.next_hop net (vtx t 10) = Some (vtx t 1));
  Bgp_net.fail_link net (vtx t 1) (vtx t 3);
  Sim.run sim;
  (* after failure 1 has no route to 3 (valley-free forbids 1-10-20-2-3?
     no: that is provider route 1 <- 10: 10's route after failure is via
     peer 20: peer routes are not exported to customer 1? They are:
     peer/provider routes export to customers. So 1 gets 10-20-2-3. *)
  Alcotest.(check bool) "1 reroutes via provider" true
    (Bgp_net.next_hop net (vtx t 1) = Some (vtx t 10));
  Array.iter
    (fun s ->
      Alcotest.(check bool) "delivered after reconvergence" true
        (Fwd_walk.equal_status s Fwd_walk.Delivered))
    (Bgp_net.walk_all net)

let test_link_failure_matches_oracle_of_pruned_topology () =
  (* after the failure, the converged state must equal the oracle computed
     on the topology without that link *)
  let t = diamond_plus () in
  let dest = vtx t 4 in
  let sim, net = Test_support.converge_bgp t ~dest in
  Bgp_net.fail_link net (vtx t 2) (vtx t 3);
  Sim.run sim;
  (* pruned topology: rebuild without 2-3 *)
  let b = Topology.Builder.create () in
  Topology.Builder.add_p2p b 10 20;
  Topology.Builder.add_p2c b ~provider:10 ~customer:1;
  Topology.Builder.add_p2c b ~provider:20 ~customer:2;
  Topology.Builder.add_p2c b ~provider:1 ~customer:3;
  Topology.Builder.add_p2p b 1 2;
  Topology.Builder.add_p2c b ~provider:3 ~customer:4;
  let t' = Topology.Builder.build b in
  let oracle = Static_route.compute t' ~dest:(vtx t' 4) in
  (* compare paths as ASN lists since vertex numbering may differ *)
  Array.iter
    (fun v ->
      let asn = Topology.asn t' v in
      let expect =
        Option.map (List.map (Topology.asn t'))
          (Static_route.path_from oracle v)
      in
      let got_v = Test_support.vtx t asn in
      let got =
        match Bgp_net.best net got_v with
        | None -> None
        | Some r -> Some (List.map (Topology.asn t) (got_v :: r.Route.as_path))
      in
      Alcotest.(check (option (list int)))
        (Printf.sprintf "AS %d" asn)
        expect got)
    (Topology.vertices t')

let test_node_failure_withdraws () =
  let t = diamond_plus () in
  let dest = vtx t 4 in
  let sim, net = Test_support.converge_bgp t ~dest in
  (* 3 is the only way to 4: failing 3 disconnects everyone *)
  Bgp_net.fail_node net (vtx t 3);
  Sim.run sim;
  Array.iter
    (fun v ->
      if v <> dest && v <> vtx t 3 then
        Alcotest.(check bool)
          (Printf.sprintf "AS %d unreachable" (Topology.asn t v))
          true
          (Bgp_net.best net v = None))
    (Topology.vertices t)

let test_link_recovery_restores () =
  let t = diamond () in
  let dest = vtx t 3 in
  let sim, net = Test_support.converge_bgp t ~dest in
  Bgp_net.fail_link net (vtx t 1) (vtx t 3);
  Sim.run sim;
  Bgp_net.recover_link net (vtx t 1) (vtx t 3);
  Sim.run sim;
  let oracle = Static_route.compute t ~dest in
  Alcotest.(check bool) "back to original fixed point" true
    (table_equal t oracle (Bgp_net.to_table net))

let test_transient_problems_during_convergence () =
  (* during reconvergence after a failure, some AS must transiently lose
     delivery in plain BGP on this topology: 1 keeps pointing at dead link
     until it learns the alternative *)
  let t = diamond () in
  let dest = vtx t 3 in
  let sim, net = Test_support.converge_bgp t ~dest in
  Bgp_net.fail_link net (vtx t 1) (vtx t 3);
  (* immediately after the failure event, before any messages propagate *)
  let statuses = Bgp_net.walk_all net in
  Alcotest.(check bool) "AS 10 transiently broken" true
    (not (Fwd_walk.equal_status statuses.(vtx t 10) Fwd_walk.Delivered));
  Sim.run sim;
  Array.iter
    (fun s ->
      Alcotest.(check bool) "eventually delivered" true
        (Fwd_walk.equal_status s Fwd_walk.Delivered))
    (Bgp_net.walk_all net)

let test_message_counting () =
  let t = diamond () in
  let _, net = Test_support.converge_bgp t ~dest:(vtx t 3) in
  Alcotest.(check bool) "some messages" true (Bgp_net.message_count net > 0);
  Alcotest.(check bool) "last change recorded" true (Bgp_net.last_change net >= 0.)

let test_deterministic_runs () =
  let t = diamond_plus () in
  let run () =
    let sim = Sim.create ~seed:21 () in
    let net = Bgp_net.create sim t ~dest:(vtx t 4) () in
    Bgp_net.start net;
    Sim.run sim;
    (Bgp_net.message_count net, Bgp_net.last_change net, Sim.events_processed sim)
  in
  Alcotest.(check bool) "identical" true (run () = run ())

let prop_failure_reconvergence_delivers =
  Test_support.qtest ~count:10
    "after any single provider-link failure, all ASes that still have a \
     route deliver packets"
    Test_support.gen_params Test_support.print_params (fun p ->
      let t = Topo_gen.generate p in
      let st = Random.State.make [| p.Topo_gen.seed + 8 |] in
      let mh = Topology.multi_homed t in
      QCheck2.assume (Array.length mh > 0);
      let dest = mh.(Random.State.int st (Array.length mh)) in
      let sim, net = Test_support.converge_bgp t ~dest in
      let provs = Topology.providers t dest in
      let p0 = provs.(Random.State.int st (Array.length provs)) in
      Bgp_net.fail_link net dest p0;
      Sim.run sim;
      let statuses = Bgp_net.walk_all net in
      Array.for_all
        (fun v ->
          match Bgp_net.best net v with
          | None -> true
          | Some _ -> Fwd_walk.equal_status statuses.(v) Fwd_walk.Delivered)
        (Topology.vertices t))

let () =
  Alcotest.run "bgp"
    [
      ( "decision",
        [
          Alcotest.test_case "prefer customer" `Quick test_decision_prefers_customer;
          Alcotest.test_case "shorter path" `Quick test_decision_shorter_path;
          Alcotest.test_case "lowest next hop" `Quick test_decision_lowest_next_hop;
          Alcotest.test_case "origin wins" `Quick test_decision_origin_wins;
          Alcotest.test_case "select" `Quick test_decision_select;
          Alcotest.test_case "select empty" `Quick test_decision_select_empty;
        ] );
      ("export", [ Alcotest.test_case "matrix" `Quick test_export_matrix ]);
      ( "mrai",
        [
          Alcotest.test_case "interval range" `Quick test_mrai_interval_range;
          Alcotest.test_case "gating" `Quick test_mrai_gating;
          Alcotest.test_case "zero base" `Quick test_mrai_zero_base;
        ] );
      ( "convergence",
        [
          Alcotest.test_case "diamond all destinations" `Quick
            test_converges_to_oracle_diamond;
          prop_sim_matches_oracle;
          Alcotest.test_case "all delivered" `Quick
            test_all_delivered_after_convergence;
        ] );
      ( "failures",
        [
          Alcotest.test_case "link failure reroutes" `Quick
            test_link_failure_reroutes;
          Alcotest.test_case "failure matches pruned oracle" `Quick
            test_link_failure_matches_oracle_of_pruned_topology;
          Alcotest.test_case "node failure withdraws" `Quick
            test_node_failure_withdraws;
          Alcotest.test_case "link recovery" `Quick test_link_recovery_restores;
          Alcotest.test_case "transient problems visible" `Quick
            test_transient_problems_during_convergence;
          Alcotest.test_case "message counting" `Quick test_message_counting;
          Alcotest.test_case "deterministic" `Quick test_deterministic_runs;
          prop_failure_reconvergence_delivers;
        ] );
    ]
