(* Tests for the R-BGP engine: convergence to the BGP fixed point, failover
   advertisement, withdrawn-route forwarding, RCI purging, and the paper's
   single-link-failure guarantee. *)

let diamond = Test_support.diamond
let diamond_plus = Test_support.diamond_plus
let vtx = Test_support.vtx

let converge ?(seed = 7) ~rci topo ~dest =
  let sim = Sim.create ~seed () in
  let net = Rbgp_net.create sim topo ~dest ~rci () in
  Rbgp_net.start net;
  Sim.run sim;
  (sim, net)

let table_paths_equal t (a : Static_route.table) (b : Static_route.table) =
  Array.for_all
    (fun v ->
      match (a.(v), b.(v)) with
      | None, None -> true
      | Some ea, Some eb ->
        ea.Static_route.as_path = eb.Static_route.as_path
      | (Some _ | None), _ -> false)
    (Topology.vertices t)

(* --- convergence ------------------------------------------------------ *)

let test_converges_like_bgp () =
  let t = diamond_plus () in
  Array.iter
    (fun dest ->
      List.iter
        (fun rci ->
          let _, net = converge ~rci t ~dest in
          let oracle = Static_route.compute t ~dest in
          Alcotest.(check bool)
            (Printf.sprintf "dest %d rci=%b" (Topology.asn t dest) rci)
            true
            (table_paths_equal t oracle (Rbgp_net.to_table net)))
        [ true; false ])
    (Topology.vertices t)

let prop_rbgp_matches_oracle =
  Test_support.qtest ~count:10 "R-BGP selects the same primary fixed point as BGP"
    Test_support.gen_params Test_support.print_params (fun p ->
      let t = Topo_gen.generate p in
      let st = Random.State.make [| p.Topo_gen.seed + 11 |] in
      let dest = Random.State.int st (Topology.num_vertices t) in
      let _, net = converge ~rci:true t ~dest in
      let oracle = Static_route.compute t ~dest in
      table_paths_equal t oracle (Rbgp_net.to_table net))

(* --- failover paths --------------------------------------------------- *)

let test_failover_advertised () =
  (* diamond, dest 3: AS 10's best is via 1 and its alternate comes from
     peer 20, so 10 advertises a failover path to 1 — AS 1 must hold it *)
  let t = diamond () in
  let _, net = converge ~rci:true t ~dest:(vtx t 3) in
  match Rbgp_net.failover_choices net (vtx t 1) with
  | [ path ] ->
    Alcotest.(check (list int)) "failover path" [ 10; 20; 2; 3 ]
      (Test_support.asns_of_path t path)
  | other ->
    Alcotest.failf "expected one failover path at AS 1, got %d"
      (List.length other)

let test_failover_no_self_advertise () =
  (* the destination never advertises failover paths *)
  let t = diamond () in
  let dest = vtx t 3 in
  let _, net = converge ~rci:true t ~dest in
  Array.iter
    (fun v ->
      List.iter
        (fun p ->
          Alcotest.(check bool) "failover paths end at dest" true
            (List.nth p (List.length p - 1) = dest))
        (Rbgp_net.failover_choices net v))
    (Topology.vertices t)

(* --- the single-link-failure guarantee -------------------------------- *)

let test_no_blackhole_instantly_after_failure () =
  (* immediately after the failure event — before any update propagates —
     every AS still delivers: the stub's provider deflects onto the
     failover path it received. Plain BGP blackholes here (see
     test_bgp's "transient problems visible"). *)
  let t = diamond () in
  let dest = vtx t 3 in
  let sim, net = converge ~rci:true t ~dest in
  Rbgp_net.fail_link net (vtx t 1) (vtx t 3);
  Array.iteri
    (fun v s ->
      Alcotest.(check bool)
        (Printf.sprintf "AS %d delivered" (Topology.asn t v))
        true
        (Fwd_walk.equal_status s Fwd_walk.Delivered))
    (Rbgp_net.walk_all net);
  Sim.run sim;
  Array.iter
    (fun s ->
      Alcotest.(check bool) "delivered after reconvergence" true
        (Fwd_walk.equal_status s Fwd_walk.Delivered))
    (Rbgp_net.walk_all net)

let prop_rci_single_link_failure_zero_transients =
  Test_support.qtest ~count:10
    "R-BGP with RCI: no transient problems on single provider-link failure"
    Test_support.gen_params Test_support.print_params (fun p ->
      let t = Topo_gen.generate p in
      let st = Random.State.make [| p.Topo_gen.seed + 12 |] in
      QCheck2.assume (Array.length (Topology.multi_homed t) > 0);
      let spec = Scenario.single_link st t in
      let r = Runner.run ~seed:p.Topo_gen.seed Runner.Rbgp t spec in
      r.Runner.transient_count = 0)

let prop_rci_never_worse_than_no_rci =
  Test_support.qtest ~count:8
    "RCI does not increase transient problems (aggregate)"
    Test_support.gen_params Test_support.print_params (fun p ->
      let t = Topo_gen.generate p in
      let st = Random.State.make [| p.Topo_gen.seed + 13 |] in
      QCheck2.assume (Array.length (Topology.multi_homed t) > 0);
      (* aggregate over a few instances: individual instances are noisy *)
      let total proto =
        let st = Random.State.copy st in
        List.init 3 (fun i ->
            let spec = Scenario.single_link st t in
            (Runner.run ~seed:i proto t spec).Runner.transient_count)
        |> List.fold_left ( + ) 0
      in
      total Runner.Rbgp <= total Runner.Rbgp_no_rci)

(* --- RCI purging ------------------------------------------------------- *)

let test_post_failure_routes_avoid_failed_link () =
  let t = diamond_plus () in
  let dest = vtx t 4 in
  List.iter
    (fun rci ->
      let sim, net = converge ~rci t ~dest in
      Rbgp_net.fail_link net (vtx t 2) (vtx t 3);
      Sim.run sim;
      let table = Rbgp_net.to_table net in
      Array.iter
        (fun v ->
          match table.(v) with
          | None -> ()
          | Some e ->
            let path = v :: e.Static_route.as_path in
            let rec ok = function
              | a :: (b :: _ as rest) ->
                (not (a = vtx t 2 && b = vtx t 3))
                && (not (a = vtx t 3 && b = vtx t 2))
                && ok rest
              | [ _ ] | [] -> true
            in
            Alcotest.(check bool)
              (Printf.sprintf "rci=%b AS %d avoids dead link" rci
                 (Topology.asn t v))
              true (ok path))
        (Topology.vertices t))
    [ true; false ]

let test_node_failure_reconverges () =
  let t = diamond_plus () in
  let dest = vtx t 4 in
  let sim, net = converge ~rci:true t ~dest in
  (* fail AS 1: everything must reroute through 2 *)
  Rbgp_net.fail_node net (vtx t 1);
  Sim.run sim;
  Array.iter
    (fun v ->
      if v <> vtx t 1 then
        match Rbgp_net.best net v with
        | Some r ->
          Alcotest.(check bool)
            (Printf.sprintf "AS %d avoids failed node" (Topology.asn t v))
            true
            (not (Route.contains r (vtx t 1)))
        | None ->
          Alcotest.failf "AS %d lost connectivity" (Topology.asn t v))
    (Topology.vertices t)

let test_deterministic () =
  let t = diamond_plus () in
  let run () =
    let sim, net = converge ~seed:33 ~rci:true t ~dest:(vtx t 4) in
    Rbgp_net.fail_link net (vtx t 2) (vtx t 3);
    Sim.run sim;
    (Rbgp_net.message_count net, Rbgp_net.last_change net)
  in
  Alcotest.(check bool) "identical" true (run () = run ())

let test_message_overhead_above_bgp () =
  (* failover advertisements cost messages: R-BGP sends at least as many
     updates as BGP for the same convergence *)
  let t = diamond_plus () in
  let dest = vtx t 4 in
  let _, bgp = Test_support.converge_bgp ~seed:5 t ~dest in
  let _, rbgp = converge ~seed:5 ~rci:true t ~dest in
  Alcotest.(check bool) "rbgp >= bgp messages" true
    (Rbgp_net.message_count rbgp >= Bgp_net.message_count bgp)

let () =
  Alcotest.run "rbgp"
    [
      ( "convergence",
        [
          Alcotest.test_case "matches BGP fixed point" `Quick
            test_converges_like_bgp;
          prop_rbgp_matches_oracle;
        ] );
      ( "failover",
        [
          Alcotest.test_case "failover advertised" `Quick test_failover_advertised;
          Alcotest.test_case "failover paths end at dest" `Quick
            test_failover_no_self_advertise;
        ] );
      ( "guarantee",
        [
          Alcotest.test_case "no blackhole at failure instant" `Quick
            test_no_blackhole_instantly_after_failure;
          prop_rci_single_link_failure_zero_transients;
          prop_rci_never_worse_than_no_rci;
        ] );
      ( "rci",
        [
          Alcotest.test_case "routes avoid failed link" `Quick
            test_post_failure_routes_avoid_failed_link;
          Alcotest.test_case "node failure" `Quick test_node_failure_reconverges;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "message overhead" `Quick
            test_message_overhead_above_bgp;
        ] );
    ]
