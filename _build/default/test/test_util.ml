(* Unit and property tests for the stamp_util library. *)

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

let check_float name expected got =
  if not (feq expected got) then
    Alcotest.failf "%s: expected %.12g, got %.12g" name expected got

(* --- Stat ----------------------------------------------------------- *)

let test_mean_simple () = check_float "mean" 2. (Stat.mean [ 1.; 2.; 3. ])
let test_mean_single () = check_float "mean" 5. (Stat.mean [ 5. ])
let test_mean_empty_nan () = Alcotest.(check bool) "nan" true (Float.is_nan (Stat.mean []))

let test_variance () =
  check_float "variance" 2. (Stat.variance [ 1.; 2.; 3.; 4.; 5. ])

let test_variance_constant () =
  check_float "variance" 0. (Stat.variance [ 4.; 4.; 4. ])

let test_stddev () = check_float "stddev" (sqrt 2.) (Stat.stddev [ 1.; 2.; 3.; 4.; 5. ])

let test_percentile_bounds () =
  let xs = [ 10.; 20.; 30.; 40. ] in
  check_float "p0" 10. (Stat.percentile 0. xs);
  check_float "p100" 40. (Stat.percentile 100. xs)

let test_percentile_interpolation () =
  check_float "p25" 17.5 (Stat.percentile 25. [ 10.; 20.; 30.; 40. ])

let test_percentile_invalid () =
  Alcotest.check_raises "empty" (Invalid_argument "Stat.percentile: empty sample")
    (fun () -> ignore (Stat.percentile 50. []));
  Alcotest.check_raises "range" (Invalid_argument "Stat.percentile: p out of [0,100]")
    (fun () -> ignore (Stat.percentile 101. [ 1. ]))

let test_median_odd () = check_float "median" 2. (Stat.median [ 3.; 1.; 2. ])
let test_median_even () = check_float "median" 2.5 (Stat.median [ 4.; 1.; 2.; 3. ])

let test_summarize () =
  let s = Stat.summarize [ 3.; 1.; 2. ] in
  Alcotest.(check int) "n" 3 s.Stat.n;
  check_float "mean" 2. s.Stat.mean;
  check_float "min" 1. s.Stat.min;
  check_float "max" 3. s.Stat.max;
  check_float "median" 2. s.Stat.median

let prop_percentile_monotone =
  Test_support.qtest "percentile is monotone in p"
    QCheck2.Gen.(
      tup3
        (list_size (int_range 1 40) (float_range (-100.) 100.))
        (float_range 0. 100.) (float_range 0. 100.))
    QCheck2.Print.(tup3 (list float) float float)
    (fun (xs, p1, p2) ->
      QCheck2.assume (xs <> []);
      let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
      Stat.percentile lo xs <= Stat.percentile hi xs +. 1e-9)

let prop_mean_between_min_max =
  Test_support.qtest "mean lies within [min, max]"
    QCheck2.Gen.(list_size (int_range 1 40) (float_range (-50.) 50.))
    QCheck2.Print.(list float)
    (fun xs ->
      QCheck2.assume (xs <> []);
      let s = Stat.summarize xs in
      s.Stat.min -. 1e-9 <= s.Stat.mean && s.Stat.mean <= s.Stat.max +. 1e-9)

(* --- Cdf ------------------------------------------------------------ *)

let test_cdf_eval () =
  let c = Cdf.of_samples [ 1.; 2.; 2.; 4. ] in
  check_float "below" 0. (Cdf.eval c 0.);
  check_float "at 1" 0.25 (Cdf.eval c 1.);
  check_float "at 2" 0.75 (Cdf.eval c 2.);
  check_float "at 3" 0.75 (Cdf.eval c 3.);
  check_float "at 4" 1. (Cdf.eval c 4.);
  check_float "above" 1. (Cdf.eval c 100.)

let test_cdf_quantile () =
  let c = Cdf.of_samples [ 1.; 2.; 3.; 4. ] in
  check_float "q0.25" 1. (Cdf.quantile c 0.25);
  check_float "q0.5" 2. (Cdf.quantile c 0.5);
  check_float "q1" 4. (Cdf.quantile c 1.)

let test_cdf_points () =
  let c = Cdf.of_samples [ 2.; 1.; 2. ] in
  let pts = Cdf.points c in
  Alcotest.(check int) "distinct values" 2 (List.length pts);
  let v1, f1 = List.nth pts 0 and v2, f2 = List.nth pts 1 in
  check_float "v1" 1. v1;
  check_float "f1" (1. /. 3.) f1;
  check_float "v2" 2. v2;
  check_float "f2" 1. f2

let test_cdf_mean () =
  check_float "mean" 2. (Cdf.mean (Cdf.of_samples [ 1.; 2.; 3. ]))

let prop_cdf_monotone =
  Test_support.qtest "CDF is monotone and ends at 1"
    QCheck2.Gen.(list_size (int_range 1 50) (float_range (-10.) 10.))
    QCheck2.Print.(list float)
    (fun xs ->
      QCheck2.assume (xs <> []);
      let c = Cdf.of_samples xs in
      let pts = Cdf.points c in
      let fractions = List.map snd pts in
      let sorted = List.sort compare fractions in
      fractions = sorted
      && feq 1. (List.nth fractions (List.length fractions - 1)))

let prop_cdf_quantile_inverse =
  Test_support.qtest "quantile is a left-inverse of eval"
    QCheck2.Gen.(
      tup2 (list_size (int_range 1 50) (float_range 0. 10.)) (float_range 0.01 1.))
    QCheck2.Print.(tup2 (list float) float)
    (fun (xs, q) ->
      QCheck2.assume (xs <> []);
      let c = Cdf.of_samples xs in
      Cdf.eval c (Cdf.quantile c q) >= q -. 1e-9)

(* --- Sample --------------------------------------------------------- *)

let st () = Random.State.make [| 123 |]

let test_uniform_range () =
  let s = st () in
  for _ = 1 to 100 do
    let x = Sample.uniform s ~lo:2. ~hi:3. in
    if x < 2. || x >= 3. then Alcotest.failf "uniform out of range: %f" x
  done

let test_choose_singleton () =
  Alcotest.(check int) "only element" 7 (Sample.choose (st ()) [| 7 |])

let test_choose_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Sample.choose: empty array")
    (fun () -> ignore (Sample.choose (st ()) [||]))

let test_weighted_index_degenerate () =
  (* all mass on index 1 *)
  let s = st () in
  for _ = 1 to 50 do
    Alcotest.(check int) "index" 1 (Sample.weighted_index s [| 0.; 5.; 0. |])
  done

let test_weighted_index_invalid () =
  Alcotest.check_raises "zero sum"
    (Invalid_argument "Sample.weighted_index: non-positive sum") (fun () ->
      ignore (Sample.weighted_index (st ()) [| 0.; 0. |]))

let test_shuffle_permutation () =
  let a = Array.init 20 Fun.id in
  Sample.shuffle (st ()) a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 20 Fun.id) sorted

let test_pick_distinct () =
  let picks = Sample.pick_distinct (st ()) 5 (Array.init 10 Fun.id) in
  Alcotest.(check int) "count" 5 (List.length picks);
  Alcotest.(check int) "distinct" 5 (List.length (List.sort_uniq compare picks))

let test_pick_distinct_too_many () =
  Alcotest.check_raises "k > n"
    (Invalid_argument "Sample.pick_distinct: k > length") (fun () ->
      ignore (Sample.pick_distinct (st ()) 3 [| 1 |]))

let prop_weighted_index_in_range =
  Test_support.qtest "weighted_index stays in range"
    QCheck2.Gen.(list_size (int_range 1 10) (float_range 0.1 5.))
    QCheck2.Print.(list float)
    (fun ws ->
      let w = Array.of_list ws in
      let i = Sample.weighted_index (st ()) w in
      i >= 0 && i < Array.length w)

let () =
  Alcotest.run "util"
    [
      ( "stat",
        [
          Alcotest.test_case "mean simple" `Quick test_mean_simple;
          Alcotest.test_case "mean single" `Quick test_mean_single;
          Alcotest.test_case "mean empty is nan" `Quick test_mean_empty_nan;
          Alcotest.test_case "variance" `Quick test_variance;
          Alcotest.test_case "variance constant" `Quick test_variance_constant;
          Alcotest.test_case "stddev" `Quick test_stddev;
          Alcotest.test_case "percentile bounds" `Quick test_percentile_bounds;
          Alcotest.test_case "percentile interpolation" `Quick
            test_percentile_interpolation;
          Alcotest.test_case "percentile invalid" `Quick test_percentile_invalid;
          Alcotest.test_case "median odd" `Quick test_median_odd;
          Alcotest.test_case "median even" `Quick test_median_even;
          Alcotest.test_case "summarize" `Quick test_summarize;
          prop_percentile_monotone;
          prop_mean_between_min_max;
        ] );
      ( "cdf",
        [
          Alcotest.test_case "eval" `Quick test_cdf_eval;
          Alcotest.test_case "quantile" `Quick test_cdf_quantile;
          Alcotest.test_case "points" `Quick test_cdf_points;
          Alcotest.test_case "mean" `Quick test_cdf_mean;
          prop_cdf_monotone;
          prop_cdf_quantile_inverse;
        ] );
      ( "sample",
        [
          Alcotest.test_case "uniform range" `Quick test_uniform_range;
          Alcotest.test_case "choose singleton" `Quick test_choose_singleton;
          Alcotest.test_case "choose empty" `Quick test_choose_empty;
          Alcotest.test_case "weighted degenerate" `Quick
            test_weighted_index_degenerate;
          Alcotest.test_case "weighted invalid" `Quick test_weighted_index_invalid;
          Alcotest.test_case "shuffle permutation" `Quick test_shuffle_permutation;
          Alcotest.test_case "pick distinct" `Quick test_pick_distinct;
          Alcotest.test_case "pick distinct too many" `Quick
            test_pick_distinct_too_many;
          prop_weighted_index_in_range;
        ] );
    ]
