(* Algebraic properties of the core data types: total orders, inverses,
   and invariants that every engine silently relies on. *)

let gen_route =
  QCheck2.Gen.(
    let* len = int_range 1 6 in
    let* path = list_repeat len (int_range 0 50) in
    let* cls = oneofl [ Relationship.Customer; Relationship.Peer; Relationship.Provider ] in
    return { Route.as_path = path; cls })

let print_route r = Format.asprintf "%a" Route.pp r

(* --- Decision is a strict weak order --------------------------------- *)

let prop_decision_irreflexive =
  Test_support.qtest "decision: no route beats itself" gen_route print_route
    (fun r -> not (Decision.better r r))

let prop_decision_asymmetric =
  Test_support.qtest "decision: asymmetry"
    QCheck2.Gen.(tup2 gen_route gen_route)
    QCheck2.Print.(tup2 print_route print_route)
    (fun (a, b) -> not (Decision.better a b && Decision.better b a))

let prop_decision_transitive =
  Test_support.qtest ~count:200 "decision: transitivity"
    QCheck2.Gen.(tup3 gen_route gen_route gen_route)
    QCheck2.Print.(tup3 print_route print_route print_route)
    (fun (a, b, c) ->
      (not (Decision.better a b && Decision.better b c)) || Decision.better a c)

let prop_select_returns_maximum =
  Test_support.qtest "decision: select returns an unbeaten route"
    QCheck2.Gen.(list_size (int_range 1 10) gen_route)
    QCheck2.Print.(list print_route)
    (fun rs ->
      match Decision.select rs with
      | None -> false
      | Some best -> not (List.exists (fun r -> Decision.better r best) rs))

(* --- Export policy ------------------------------------------------------ *)

let all_rels = [ Relationship.Customer; Relationship.Peer; Relationship.Provider ]

let test_export_customer_routes_universal () =
  (* the valley-free matrix in one line: customer routes go everywhere,
     nothing else crosses peers or providers *)
  List.iter
    (fun to_rel ->
      Alcotest.(check bool) "customer exportable" true
        (Export.allowed ~route_cls:Relationship.Customer ~to_rel))
    all_rels;
  List.iter
    (fun route_cls ->
      List.iter
        (fun to_rel ->
          let expected =
            Relationship.equal route_cls Relationship.Customer
            || Relationship.equal to_rel Relationship.Customer
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s -> %s"
               (Relationship.to_string route_cls)
               (Relationship.to_string to_rel))
            expected
            (Export.allowed ~route_cls ~to_rel))
        all_rels)
    all_rels

(* --- Relationship inversion ------------------------------------------- *)

let test_invert_involution () =
  List.iter
    (fun r ->
      Alcotest.(check bool) "invert twice" true
        (Relationship.equal r (Relationship.invert (Relationship.invert r))))
    (Relationship.Sibling :: all_rels)

let prop_topology_rel_symmetric =
  Test_support.qtest ~count:20 "rel(u,v) is the inverse of rel(v,u)"
    Test_support.gen_params Test_support.print_params (fun p ->
      let t = Topo_gen.generate p in
      Array.for_all
        (fun u ->
          Array.for_all
            (fun (v, r) ->
              match Topology.rel t v u with
              | Some r' -> Relationship.equal r' (Relationship.invert r)
              | None -> false)
            (Topology.neighbors t u))
        (Topology.vertices t))

(* --- Prefix ordering ----------------------------------------------------- *)

let gen_prefix =
  QCheck2.Gen.(
    let* len = int_range 0 32 in
    let* bits = int in
    return (Prefix.make (Int32.of_int bits) len))

let print_prefix = Prefix.to_string

let prop_prefix_compare_total_order =
  Test_support.qtest "prefix: compare is antisymmetric and consistent with equal"
    QCheck2.Gen.(tup2 gen_prefix gen_prefix)
    QCheck2.Print.(tup2 print_prefix print_prefix)
    (fun (a, b) ->
      let c1 = Prefix.compare a b and c2 = Prefix.compare b a in
      (c1 = 0) = (c2 = 0)
      && (c1 > 0) = (c2 < 0)
      && Prefix.equal a b = (c1 = 0))

let prop_prefix_subsumes_partial_order =
  Test_support.qtest "prefix: subsumption is reflexive and transitive-ish"
    QCheck2.Gen.(tup2 gen_prefix gen_prefix)
    QCheck2.Print.(tup2 print_prefix print_prefix)
    (fun (a, b) ->
      Prefix.subsumes a a
      && ((not (Prefix.subsumes a b && Prefix.subsumes b a)) || Prefix.equal a b))

let prop_prefix_string_roundtrip =
  Test_support.qtest "prefix: to_string/of_string roundtrip" gen_prefix
    print_prefix (fun p ->
      Prefix.equal p (Prefix.of_string (Prefix.to_string p)))

(* --- Event heap: a sort ---------------------------------------------------- *)

let prop_heap_is_stable_sort =
  Test_support.qtest "heap: drain equals stable sort by time"
    QCheck2.Gen.(list_size (int_range 0 100) (int_range 0 20))
    QCheck2.Print.(list int)
    (fun times ->
      let h = Event_heap.create () in
      List.iteri (fun i t -> Event_heap.push h ~time:(float_of_int t) i) times;
      let rec drain acc =
        match Event_heap.pop_min h with
        | None -> List.rev acc
        | Some (t, i) -> drain ((t, i) :: acc)
      in
      let got = drain [] in
      let expected =
        List.mapi (fun i t -> (float_of_int t, i)) times
        |> List.stable_sort (fun (t1, _) (t2, _) -> compare t1 t2)
      in
      got = expected)

(* --- Valley decomposition invariants ---------------------------------------- *)

let prop_decompose_partitions_path =
  Test_support.qtest ~count:20 "valley: uphill @ downhill = the path"
    Test_support.gen_params Test_support.print_params (fun p ->
      let t = Topo_gen.generate p in
      let st = Random.State.make [| p.Topo_gen.seed + 71 |] in
      let dest = Random.State.int st (Topology.num_vertices t) in
      let table = Static_route.compute t ~dest in
      Array.for_all
        (fun v ->
          match Static_route.path_from table v with
          | None -> false
          | Some path ->
            let up, down = Valley.decompose t path in
            up @ down = path)
        (Topology.vertices t))

let () =
  Alcotest.run "props"
    [
      ( "decision",
        [
          prop_decision_irreflexive;
          prop_decision_asymmetric;
          prop_decision_transitive;
          prop_select_returns_maximum;
        ] );
      ( "export",
        [
          Alcotest.test_case "valley-free matrix" `Quick
            test_export_customer_routes_universal;
        ] );
      ( "relationship",
        [
          Alcotest.test_case "invert involution" `Quick test_invert_involution;
          prop_topology_rel_symmetric;
        ] );
      ( "prefix",
        [
          prop_prefix_compare_total_order;
          prop_prefix_subsumes_partial_order;
          prop_prefix_string_roundtrip;
        ] );
      ("heap", [ prop_heap_is_stable_sort ]);
      ("valley", [ prop_decompose_partitions_path ]);
    ]
