(* Tests for the data-plane substrate: IPv4 prefixes, longest-prefix-match
   tries, the any-to-any FIB fleet, and packet-loss composition. *)

let addr = Prefix.addr_of_string

(* --- Prefix ------------------------------------------------------------ *)

let test_prefix_parse_print () =
  List.iter
    (fun s ->
      Alcotest.(check string) s s (Prefix.to_string (Prefix.of_string s)))
    [ "10.0.0.0/8"; "192.168.1.0/24"; "0.0.0.0/0"; "255.255.255.255/32" ]

let test_prefix_canonical () =
  Alcotest.(check string) "host bits cleared" "10.1.0.0/16"
    (Prefix.to_string (Prefix.of_string "10.1.2.3/16"))

let test_prefix_bare_address () =
  Alcotest.(check string) "bare = /32" "1.2.3.4/32"
    (Prefix.to_string (Prefix.of_string "1.2.3.4"))

let test_prefix_invalid () =
  List.iter
    (fun s ->
      match Prefix.of_string s with
      | _ -> Alcotest.failf "accepted %S" s
      | exception Invalid_argument _ -> ())
    [ "10.0.0.0/33"; "10.0.0/8"; "10.0.0.256/8"; "junk"; "1.2.3.4/-1" ]

let test_prefix_mem () =
  let p = Prefix.of_string "10.1.0.0/16" in
  Alcotest.(check bool) "inside" true (Prefix.mem p (addr "10.1.255.255"));
  Alcotest.(check bool) "outside" false (Prefix.mem p (addr "10.2.0.0"));
  Alcotest.(check bool) "default route" true
    (Prefix.mem (Prefix.of_string "0.0.0.0/0") (addr "203.0.113.9"))

let test_prefix_subsumes () =
  let p8 = Prefix.of_string "10.0.0.0/8" in
  let p16 = Prefix.of_string "10.1.0.0/16" in
  Alcotest.(check bool) "/8 covers /16" true (Prefix.subsumes p8 p16);
  Alcotest.(check bool) "/16 not covers /8" false (Prefix.subsumes p16 p8);
  Alcotest.(check bool) "self" true (Prefix.subsumes p8 p8)

let test_prefix_of_asn () =
  Alcotest.(check string) "asn 1" "10.0.1.0/24"
    (Prefix.to_string (Prefix.of_asn 1));
  Alcotest.(check string) "asn 258" "10.1.2.0/24"
    (Prefix.to_string (Prefix.of_asn 258));
  Alcotest.check_raises "asn 0" (Invalid_argument "Prefix.of_asn: ASN outside [1, 65535]")
    (fun () -> ignore (Prefix.of_asn 0))

let test_prefix_of_asn_disjoint () =
  let ps = List.init 500 (fun i -> Prefix.of_asn (i + 1)) in
  let sorted = List.sort_uniq Prefix.compare ps in
  Alcotest.(check int) "all distinct" 500 (List.length sorted)

let test_prefix_random_member () =
  let st = Random.State.make [| 1 |] in
  let p = Prefix.of_string "10.5.5.0/24" in
  for _ = 1 to 100 do
    Alcotest.(check bool) "member inside" true
      (Prefix.mem p (Prefix.random_member st p))
  done

let prop_prefix_member_roundtrip =
  Test_support.qtest "random members always fall inside their prefix"
    QCheck2.Gen.(tup3 (int_range 0 32) int small_nat)
    QCheck2.Print.(tup3 int int int)
    (fun (len, bits, seed) ->
      let p = Prefix.make (Int32.of_int bits) len in
      let st = Random.State.make [| seed |] in
      Prefix.mem p (Prefix.random_member st p))

(* --- Lpm ---------------------------------------------------------------- *)

let test_lpm_basic () =
  let t =
    Lpm.of_list
      [
        (Prefix.of_string "10.0.0.0/8", "eight");
        (Prefix.of_string "10.1.0.0/16", "sixteen");
        (Prefix.of_string "10.1.2.0/24", "twentyfour");
      ]
  in
  let hit a =
    match Lpm.lookup t (addr a) with Some (_, v) -> v | None -> "none"
  in
  Alcotest.(check string) "longest wins" "twentyfour" (hit "10.1.2.3");
  Alcotest.(check string) "middle" "sixteen" (hit "10.1.3.4");
  Alcotest.(check string) "short" "eight" (hit "10.9.9.9");
  Alcotest.(check string) "miss" "none" (hit "11.0.0.1")

let test_lpm_default_route () =
  let t = Lpm.of_list [ (Prefix.of_string "0.0.0.0/0", "default") ] in
  match Lpm.lookup t (addr "203.0.113.1") with
  | Some (p, "default") ->
    Alcotest.(check string) "prefix" "0.0.0.0/0" (Prefix.to_string p)
  | _ -> Alcotest.fail "default route not matched"

let test_lpm_replace_and_remove () =
  let p = Prefix.of_string "10.0.0.0/8" in
  let t = Lpm.add p 1 Lpm.empty in
  let t = Lpm.add p 2 t in
  Alcotest.(check (option int)) "replaced" (Some 2) (Lpm.find p t);
  let t = Lpm.remove p t in
  Alcotest.(check (option int)) "removed" None (Lpm.find p t);
  Alcotest.(check int) "empty" 0 (Lpm.cardinal t)

let test_lpm_to_list_sorted () =
  let entries =
    [
      (Prefix.of_string "192.168.0.0/16", 3);
      (Prefix.of_string "10.0.0.0/8", 1);
      (Prefix.of_string "10.1.0.0/16", 2);
    ]
  in
  let t = Lpm.of_list entries in
  Alcotest.(check int) "cardinal" 3 (Lpm.cardinal t);
  let listed = Lpm.to_list t in
  Alcotest.(check bool) "sorted" true
    (listed = List.sort (fun (p, _) (q, _) -> Prefix.compare p q) entries)

(* Reference implementation: linear scan for the longest matching prefix. *)
let linear_lookup entries a =
  List.fold_left
    (fun best (p, v) ->
      if Prefix.mem p a then
        match best with
        | Some (bp, _) when Prefix.length bp >= Prefix.length p -> best
        | _ -> Some (p, v)
      else best)
    None entries

let prop_lpm_matches_linear_scan =
  Test_support.qtest ~count:100 "trie lookup equals linear longest-match scan"
    QCheck2.Gen.(
      tup2
        (list_size (int_range 0 30) (tup2 (int_range 0 32) int))
        (list_size (int_range 1 20) int))
    QCheck2.Print.(tup2 (list (tup2 int int)) (list int))
    (fun (raw_entries, raw_addrs) ->
      let entries =
        List.mapi
          (fun i (len, bits) -> (Prefix.make (Int32.of_int bits) len, i))
          raw_entries
        (* keep the last value for duplicate prefixes, as Lpm.add does *)
        |> List.rev
        |> List.fold_left
             (fun acc (p, v) ->
               if List.exists (fun (q, _) -> Prefix.equal p q) acc then acc
               else (p, v) :: acc)
             []
      in
      let t = Lpm.of_list entries in
      List.for_all
        (fun a ->
          let a = Int32.of_int a in
          let expected =
            Option.map (fun (p, v) -> (Prefix.to_string p, v))
              (linear_lookup entries a)
          in
          let got =
            Option.map (fun (p, v) -> (Prefix.to_string p, v)) (Lpm.lookup t a)
          in
          expected = got)
        raw_addrs)

(* --- Fleet --------------------------------------------------------------- *)

let fleet = lazy (Fleet.build (Topo_gen.generate (Topo_gen.default_params ~n:60 ())))

let test_fleet_any_to_any () =
  let f = Lazy.force fleet in
  let topo = Fleet.topology f in
  Array.iter
    (fun src ->
      Array.iter
        (fun dst ->
          if src <> dst then begin
            let a = Prefix.network (Fleet.prefix_of f dst) in
            let tr = Fleet.route f ~src a in
            (match tr.Fleet.outcome with
            | `Delivered -> ()
            | `No_route ->
              Alcotest.failf "no route %d -> %d" (Topology.asn topo src)
                (Topology.asn topo dst));
            Alcotest.(check bool) "ends at dst" true
              (List.nth tr.Fleet.hops (List.length tr.Fleet.hops - 1) = dst)
          end)
        (Topology.vertices topo))
    (Topology.vertices topo)

let test_fleet_paths_valley_free () =
  let f = Lazy.force fleet in
  let topo = Fleet.topology f in
  let st = Random.State.make [| 5 |] in
  for _ = 1 to 200 do
    let vs = Topology.vertices topo in
    let src = vs.(Random.State.int st (Array.length vs)) in
    let dst = vs.(Random.State.int st (Array.length vs)) in
    if src <> dst then begin
      let tr = Fleet.route f ~src (Prefix.network (Fleet.prefix_of f dst)) in
      Alcotest.(check bool) "valley-free" true
        (Valley.is_valley_free topo tr.Fleet.hops)
    end
  done

let test_fleet_origin_lookup () =
  let f = Lazy.force fleet in
  let topo = Fleet.topology f in
  Array.iter
    (fun v ->
      Alcotest.(check (option int)) "origin" (Some v)
        (Fleet.origin_of f (Prefix.network (Fleet.prefix_of f v))))
    (Topology.vertices topo)

let test_fleet_self_delivery () =
  let f = Lazy.force fleet in
  let tr = Fleet.route f ~src:0 (Prefix.network (Fleet.prefix_of f 0)) in
  Alcotest.(check bool) "trivial" true
    (tr.Fleet.outcome = `Delivered && tr.Fleet.hops = [ 0 ])

(* --- Traffic --------------------------------------------------------------- *)

let test_traffic_no_event_no_loss () =
  let topo = Test_support.diamond () in
  let dest = Test_support.vtx topo 3 in
  let sim, net = Test_support.converge_bgp topo ~dest in
  (* nothing pending: a single observation, zero losses *)
  let s = Traffic.observe sim ~probe:(fun () -> Bgp_net.walk_all net) () in
  Alcotest.(check int) "no loss" 0 s.Traffic.loss_events;
  Alcotest.(check bool) "loop share nan" true (Float.is_nan (Traffic.loop_share s))

let test_traffic_counts_losses () =
  let topo = Test_support.diamond () in
  let dest = Test_support.vtx topo 3 in
  let sim, net = Test_support.converge_bgp topo ~dest in
  Bgp_net.fail_link net dest (Test_support.vtx topo 1);
  let s = Traffic.observe sim ~probe:(fun () -> Bgp_net.walk_all net) () in
  Alcotest.(check bool) "losses observed" true (s.Traffic.loss_events > 0);
  Alcotest.(check bool) "buckets non-empty" true (s.Traffic.buckets <> []);
  List.iter
    (fun (b : Traffic.bucket) ->
      Alcotest.(check bool) "sane bucket" true
        (b.Traffic.delivered >= 0. && b.Traffic.looped >= 0.
        && b.Traffic.blackholed >= 0.))
    s.Traffic.buckets

(* --- Vantage ------------------------------------------------------------------ *)

let test_vantage_paths_shape () =
  let topo = Test_support.diamond_plus () in
  let v10 = Test_support.vtx topo 10 in
  let paths = Vantage.paths_from topo ~vantage:v10 in
  Alcotest.(check int) "one path per other AS" 5 (List.length paths);
  List.iter
    (fun p ->
      Alcotest.(check int) "starts at vantage" 10 (List.hd p))
    paths

let test_vantage_collect_matches_union () =
  let topo = Test_support.diamond_plus () in
  let v10 = Test_support.vtx topo 10 and v20 = Test_support.vtx topo 20 in
  let collected = Vantage.collect topo ~vantage:[ v10; v20 ] in
  let union =
    Vantage.paths_from topo ~vantage:v10 @ Vantage.paths_from topo ~vantage:v20
  in
  Alcotest.(check bool) "same multiset" true
    (List.sort compare collected = List.sort compare union)

let test_default_vantages () =
  let topo = Topo_gen.generate (Topo_gen.default_params ~n:100 ()) in
  let vs = Vantage.default_vantages topo ~count:5 in
  Alcotest.(check int) "count" 5 (List.length vs);
  (* highest-degree first *)
  let degs = List.map (Topology.degree topo) vs in
  Alcotest.(check bool) "descending degrees" true
    (degs = List.sort (fun a b -> compare b a) degs)

(* --- Valley.exists_path --------------------------------------------------------- *)

let test_exists_path_diamond () =
  let t = Test_support.diamond () in
  let vtx = Test_support.vtx t in
  Alcotest.(check bool) "3 reaches 10" true
    (Valley.exists_path t ~src:(vtx 3) ~dst:(vtx 10));
  Alcotest.(check bool) "blocked via 1 still reaches" true
    (Valley.exists_path ~avoid:(fun v -> v = vtx 1) t ~src:(vtx 3) ~dst:(vtx 10));
  Alcotest.(check bool) "blocking both cuts" false
    (Valley.exists_path
       ~avoid:(fun v -> v = vtx 1 || v = vtx 2)
       t ~src:(vtx 3) ~dst:(vtx 10))

let test_exists_path_respects_valley () =
  (* 1 -> 3 -> 2 is a valley: no valley-free path from 1 to 2 avoiding the
     tier-1s exists in the diamond *)
  let t = Test_support.diamond () in
  let vtx = Test_support.vtx t in
  Alcotest.(check bool) "valley forbidden" false
    (Valley.exists_path
       ~avoid:(fun v -> v = vtx 10 || v = vtx 20)
       t ~src:(vtx 1) ~dst:(vtx 2))

let prop_exists_path_agrees_with_oracle =
  Test_support.qtest ~count:15
    "oracle reachability implies valley-free reachability"
    Test_support.gen_params Test_support.print_params (fun p ->
      let t = Topo_gen.generate p in
      let st = Random.State.make [| p.Topo_gen.seed + 41 |] in
      let dest = Random.State.int st (Topology.num_vertices t) in
      let table = Static_route.compute t ~dest in
      Array.for_all
        (fun v ->
          v = dest
          || table.(v) = None
          || Valley.exists_path t ~src:v ~dst:dest)
        (Topology.vertices t))

let () =
  Alcotest.run "dataplane"
    [
      ( "prefix",
        [
          Alcotest.test_case "parse/print" `Quick test_prefix_parse_print;
          Alcotest.test_case "canonical" `Quick test_prefix_canonical;
          Alcotest.test_case "bare address" `Quick test_prefix_bare_address;
          Alcotest.test_case "invalid" `Quick test_prefix_invalid;
          Alcotest.test_case "mem" `Quick test_prefix_mem;
          Alcotest.test_case "subsumes" `Quick test_prefix_subsumes;
          Alcotest.test_case "of_asn" `Quick test_prefix_of_asn;
          Alcotest.test_case "of_asn disjoint" `Quick test_prefix_of_asn_disjoint;
          Alcotest.test_case "random member" `Quick test_prefix_random_member;
          prop_prefix_member_roundtrip;
        ] );
      ( "lpm",
        [
          Alcotest.test_case "basic" `Quick test_lpm_basic;
          Alcotest.test_case "default route" `Quick test_lpm_default_route;
          Alcotest.test_case "replace/remove" `Quick test_lpm_replace_and_remove;
          Alcotest.test_case "to_list sorted" `Quick test_lpm_to_list_sorted;
          prop_lpm_matches_linear_scan;
        ] );
      ( "fleet",
        [
          Alcotest.test_case "any-to-any" `Quick test_fleet_any_to_any;
          Alcotest.test_case "valley-free paths" `Quick
            test_fleet_paths_valley_free;
          Alcotest.test_case "origin lookup" `Quick test_fleet_origin_lookup;
          Alcotest.test_case "self delivery" `Quick test_fleet_self_delivery;
        ] );
      ( "traffic",
        [
          Alcotest.test_case "no event no loss" `Quick test_traffic_no_event_no_loss;
          Alcotest.test_case "counts losses" `Quick test_traffic_counts_losses;
        ] );
      ( "vantage",
        [
          Alcotest.test_case "paths shape" `Quick test_vantage_paths_shape;
          Alcotest.test_case "collect union" `Quick test_vantage_collect_matches_union;
          Alcotest.test_case "default vantages" `Quick test_default_vantages;
        ] );
      ( "valley-reach",
        [
          Alcotest.test_case "diamond" `Quick test_exists_path_diamond;
          Alcotest.test_case "respects valley" `Quick test_exists_path_respects_valley;
          prop_exists_path_agrees_with_oracle;
        ] );
    ]
