(* Infer AS relationships from AS-path data with Gao's algorithm and write
   a CAIDA serial-1 relationship file.

     dune exec bin/infer_rel.exe -- paths.txt -o relationships.txt

   The input has one AS path per line (vantage point first, origin last),
   e.g. extracted from RouteViews table dumps. *)

open Cmdliner

let run input output ratio truth =
  let paths = Topo_io.load_paths input in
  Format.eprintf "loaded %d paths@." (List.length paths);
  let verdicts = Gao_inference.infer ~peer_degree_ratio:ratio paths in
  let topo = Gao_inference.to_topology verdicts in
  (match output with
  | Some path ->
    Topo_io.save_relationships topo path;
    Format.printf "wrote %s@." path
  | None -> print_string (Topo_io.relationships_to_string topo));
  Format.eprintf "%a@." Topology.pp_stats topo;
  (match truth with
  | Some path ->
    let t = Topo_io.load_relationships path in
    Format.eprintf "agreement with ground truth: %.3f@."
      (Gao_inference.agreement t verdicts)
  | None -> ());
  0

let input =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"PATHS" ~doc:"AS-path file (one path per line).")

let output =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"FILE"
        ~doc:"Relationship file to write (stdout if omitted).")

let ratio =
  Arg.(
    value & opt float 60.
    & info [ "peer-ratio" ] ~docv:"R"
        ~doc:"Maximum degree ratio for peer classification.")

let truth =
  Arg.(
    value
    & opt (some file) None
    & info [ "truth" ] ~docv:"FILE"
        ~doc:"Ground-truth relationship file to score agreement against.")

let cmd =
  let doc = "infer AS relationships from AS paths (Gao's algorithm)" in
  Cmd.v (Cmd.info "infer_rel" ~doc) Term.(const run $ input $ output $ ratio $ truth)

let () = exit (Cmd.eval' cmd)
