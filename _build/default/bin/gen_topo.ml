(* Generate a synthetic Internet-like AS topology and write it as a CAIDA
   serial-1 relationship file.

     dune exec bin/gen_topo.exe -- -n 4000 -o topo.txt
     dune exec bin/gen_topo.exe -- -n 1000 --tier1 12 --peers 3.0 --stats *)

open Cmdliner

let run n tier1 mid_fraction stub_q mid_q max_providers peers seed output
    stats =
  let params =
    {
      Topo_gen.n;
      n_tier1 = tier1;
      mid_fraction;
      stub_extra_provider_prob = stub_q;
      mid_extra_provider_prob = mid_q;
      max_providers;
      peers_per_mid = peers;
      seed;
    }
  in
  let topo = Topo_gen.generate params in
  (match output with
  | Some path ->
    Topo_io.save_relationships topo path;
    Format.printf "wrote %s@." path
  | None -> print_string (Topo_io.relationships_to_string topo));
  if stats then Format.eprintf "%a@." Topology.pp_stats topo;
  0

let n =
  Arg.(value & opt int 1000 & info [ "n" ] ~docv:"N" ~doc:"Number of ASes.")

let tier1 =
  Arg.(
    value & opt int 10
    & info [ "tier1" ] ~docv:"K" ~doc:"Size of the tier-1 clique.")

let mid_fraction =
  Arg.(
    value & opt float 0.15
    & info [ "mid-fraction" ] ~docv:"F"
        ~doc:"Fraction of non-tier-1 ASes that are mid-tier transit.")

let stub_q =
  Arg.(
    value & opt float 0.45
    & info [ "stub-multihoming" ] ~docv:"Q"
        ~doc:"Geometric tail probability of extra providers for stubs.")

let mid_q =
  Arg.(
    value & opt float 0.5
    & info [ "mid-multihoming" ] ~docv:"Q"
        ~doc:"Geometric tail probability of extra providers for mid-tier ASes.")

let max_providers =
  Arg.(
    value & opt int 6
    & info [ "max-providers" ] ~docv:"K" ~doc:"Cap on providers per AS.")

let peers =
  Arg.(
    value & opt float 2.0
    & info [ "peers" ] ~docv:"P"
        ~doc:"Expected lateral peer links per mid-tier AS.")

let seed =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"S" ~doc:"RNG seed.")

let output =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"FILE"
        ~doc:"Output file (stdout if omitted).")

let stats =
  Arg.(value & flag & info [ "stats" ] ~doc:"Print topology statistics to stderr.")

let cmd =
  let doc = "generate a synthetic Internet-like AS topology" in
  Cmd.v
    (Cmd.info "gen_topo" ~doc)
    Term.(
      const run $ n $ tier1 $ mid_fraction $ stub_q $ mid_q $ max_providers
      $ peers $ seed $ output $ stats)

let () = exit (Cmd.eval' cmd)
