bin/infer_rel.mli:
