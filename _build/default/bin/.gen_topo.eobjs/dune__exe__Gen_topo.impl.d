bin/gen_topo.ml: Arg Cmd Cmdliner Format Term Topo_gen Topo_io Topology
