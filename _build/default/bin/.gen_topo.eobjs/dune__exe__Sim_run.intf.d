bin/sim_run.mli:
