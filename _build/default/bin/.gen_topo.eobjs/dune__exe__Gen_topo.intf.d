bin/gen_topo.mli:
