bin/infer_rel.ml: Arg Cmd Cmdliner Format Gao_inference List Term Topo_io Topology
