bin/sim_run.ml: Arg Cmd Cmdliner Fmt Format List Printf Random Runner Scenario String Term Topo_gen Topo_io Topology
