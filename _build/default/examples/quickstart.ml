(* Quickstart: build a six-AS Internet by hand, run STAMP on it, inspect
   the complementary red/blue routes, fail a link and watch forwarding
   survive.

     dune exec examples/quickstart.exe

   The topology (10 and 20 are tier-1 peers; the destination 3 is a
   multi-homed stub):

         10 ---peer--- 20
         |              |
         1              2
          \            /
           \          /
                3                                                       *)

let pp_path topo ppf = function
  | None -> Format.pp_print_string ppf "(none)"
  | Some path ->
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " > ")
      Format.pp_print_int ppf
      (List.map (Topology.asn topo) path)

let () =
  (* 1. Describe the AS-level topology: provider→customer and peer links. *)
  let b = Topology.Builder.create () in
  Topology.Builder.add_p2p b 10 20;
  Topology.Builder.add_p2c b ~provider:10 ~customer:1;
  Topology.Builder.add_p2c b ~provider:20 ~customer:2;
  Topology.Builder.add_p2c b ~provider:1 ~customer:3;
  Topology.Builder.add_p2c b ~provider:2 ~customer:3;
  let topo = Topology.Builder.build b in
  Format.printf "topology: %a@.@." Topology.pp_stats topo;

  (* 2. Run STAMP for destination AS 3 until the event queue drains. *)
  let dest = Option.get (Topology.vertex_of_asn topo 3) in
  let sim = Sim.create ~seed:7 () in
  let coloring = Coloring.create Coloring.Random_choice ~seed:7 topo ~dest in
  let net = Stamp_net.create sim topo ~dest ~coloring () in
  Stamp_net.start net;
  Sim.run sim;
  Format.printf "converged after %d events, %d update messages@.@."
    (Sim.events_processed sim) (Stamp_net.message_count net);

  (* 3. Every AS now holds two complementary routes to AS 3. *)
  Array.iter
    (fun v ->
      Format.printf "AS %-3d red:  %a@.       blue: %a@." (Topology.asn topo v)
        (pp_path topo)
        (Stamp_net.path net Color.Red v)
        (pp_path topo)
        (Stamp_net.path net Color.Blue v))
    (Topology.vertices topo);

  (* 4. Fail one of the destination's provider links. At the very instant
     of the failure — before a single routing update propagates — every AS
     still delivers packets: the AS adjacent to the failure re-colours them
     onto the other process. *)
  let p1 = Option.get (Topology.vertex_of_asn topo 1) in
  Format.printf "@.failing link 3-1 ...@.";
  Stamp_net.fail_link net dest p1;
  let delivered =
    Array.for_all
      (fun s -> Fwd_walk.equal_status s Fwd_walk.Delivered)
      (Stamp_net.walk_all net)
  in
  Format.printf "all ASes still deliver at the failure instant: %b@." delivered;

  (* 5. For comparison: plain BGP in the same scenario blackholes AS 10
     until withdrawals and re-announcements crawl through the network. *)
  let sim' = Sim.create ~seed:7 () in
  let bgp = Bgp_net.create sim' topo ~dest () in
  Bgp_net.start bgp;
  Sim.run sim';
  Bgp_net.fail_link bgp dest p1;
  let broken =
    Array.to_list (Bgp_net.walk_all bgp)
    |> List.filter (fun s -> not (Fwd_walk.equal_status s Fwd_walk.Delivered))
    |> List.length
  in
  Format.printf "plain BGP at the same instant: %d ASes cannot deliver@." broken;
  Sim.run sim';
  Format.printf "(BGP recovers only after reconvergence, at t=%.1fs)@."
    (Bgp_net.last_change bgp)
