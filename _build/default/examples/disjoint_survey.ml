(* Survey of STAMP's disjoint-path success probability Φ across all
   destinations of a synthetic Internet (the paper's Section 6.1 /
   Figure 1), including the gain from intelligent locked-blue-provider
   selection and a list of the worst-protected destinations.

     dune exec examples/disjoint_survey.exe            # 800-AS topology
     dune exec examples/disjoint_survey.exe -- 3000 5  # size and seed   *)

let () =
  let n = try int_of_string Sys.argv.(1) with _ -> 800 in
  let seed = try int_of_string Sys.argv.(2) with _ -> 1 in
  let topo = Topo_gen.generate (Topo_gen.default_params ~seed ~n ()) in
  Format.printf "topology: %a@.@." Topology.pp_stats topo;

  let st = Random.State.make [| seed |] in
  let phis = Phi.phi_all ~samples:100 st topo in
  let cdf = Cdf.of_samples (Array.to_list phis) in

  Format.printf "CDF of Phi (fraction of destinations with Phi <= x):@.";
  List.iter
    (fun x -> Format.printf "  Phi <= %.2f : %5.1f%%@." x (100. *. Cdf.eval cdf x))
    [ 0.5; 0.7; 0.8; 0.9; 0.95; 0.999 ];
  Format.printf "@.mean Phi (random selection):      %.3f   (paper: ~0.92)@."
    (Cdf.mean cdf);

  let st' = Random.State.make [| seed + 1 |] in
  let intelligent =
    Phi.phi_all ~samples:40 ~selection:Phi.Intelligent_selection st' topo
  in
  Format.printf "mean Phi (intelligent selection): %.3f   (paper: ~0.97)@.@."
    (Stat.mean (Array.to_list intelligent));

  (* the least-protected destinations and why *)
  let worst =
    Array.to_list (Topology.vertices topo)
    |> List.map (fun v -> (phis.(v), v))
    |> List.sort compare
  in
  Format.printf "ten least-protected destinations:@.";
  List.iteri
    (fun i (phi, v) ->
      if i < 10 then begin
        let m = Coloring.effective_origin topo v in
        Format.printf
          "  AS %-5d Phi=%.2f  providers=%d  effective origin=%s@."
          (Topology.asn topo v) phi
          (Array.length (Topology.providers topo v))
          (match m with
          | Some m -> string_of_int (Topology.asn topo m)
          | None -> "(tier-1 chain)")
      end)
    worst;

  (* cross-check a handful of destinations against exhaustive enumeration *)
  Format.printf "@.Monte-Carlo vs exhaustive Phi (spot check):@.";
  let checked = ref 0 in
  Array.iter
    (fun v ->
      if !checked < 5 then
        match Phi.phi_exact topo ~dest:v with
        | exact ->
          incr checked;
          Format.printf "  AS %-5d sampled=%.3f exact=%.3f@."
            (Topology.asn topo v) phis.(v) exact
        | exception Invalid_argument _ -> () (* too many uphill paths *))
    (Topology.multi_homed topo)
