(* The paper's data pipeline, end to end, without real table dumps:

   1. plant a ground-truth topology (stand-in for the real Internet);
   2. export the AS paths that k vantage-point ASes would feed a
      RouteViews-style collector (stand-in for the table dumps);
   3. infer the AS relationships back with Gao's algorithm;
   4. measure agreement against the planted truth, sweeping the number of
      vantage points. More collectors see more links — but the marginal
      links are exactly the hard ones (lateral peerings, backup provider
      links rarely on best paths), so coverage rises while per-link
      agreement falls: the coverage/accuracy trade-off Gao's paper
      discusses.

     dune exec examples/inference_pipeline.exe            # 300-AS topology
     dune exec examples/inference_pipeline.exe -- 800 7   # size and seed  *)

let () =
  let n = try int_of_string Sys.argv.(1) with _ -> 300 in
  let seed = try int_of_string Sys.argv.(2) with _ -> 1 in
  let truth = Topo_gen.generate (Topo_gen.default_params ~seed ~n ()) in
  Format.printf "ground truth: %a@.@." Topology.pp_stats truth;

  Format.printf "%-10s %10s %12s %12s@." "vantages" "paths" "links seen"
    "agreement";
  List.iter
    (fun count ->
      let vantage = Vantage.default_vantages truth ~count in
      let paths = Vantage.collect truth ~vantage in
      let verdicts = Gao_inference.infer paths in
      let inferred = Gao_inference.to_topology verdicts in
      Format.printf "%-10d %10d %12d %11.1f%%@." count (List.length paths)
        (Topology.num_links inferred)
        (100. *. Gao_inference.agreement truth verdicts))
    [ 1; 2; 5; 10; 25 ];

  (* the full pipeline through the on-disk formats, as a user would run it
     with real data and the CLI tools *)
  let vantage = Vantage.default_vantages truth ~count:10 in
  let paths = Vantage.collect truth ~vantage in
  let tmp = Filename.temp_file "paths" ".txt" in
  Topo_io.save_paths paths tmp;
  let reloaded = Topo_io.load_paths tmp in
  Sys.remove tmp;
  assert (reloaded = paths);
  Format.printf
    "@.round-tripped %d paths through the path-file format (see \
     bin/infer_rel.exe for the CLI)@."
    (List.length reloaded);

  (* where inference goes wrong: the misclassified links *)
  let verdicts = Gao_inference.infer paths in
  let wrong =
    List.filter
      (fun v ->
        let ok (a : int) b (want : Relationship.t) =
          match (Topology.vertex_of_asn truth a, Topology.vertex_of_asn truth b) with
          | Some va, Some vb -> Topology.rel truth va vb = Some want
          | _ -> false
        in
        not
          (match v with
          | Gao_inference.P2c (p, c) -> ok p c Relationship.Customer
          | Gao_inference.P2p (a, b) -> ok a b Relationship.Peer
          | Gao_inference.Sib (a, b) -> ok a b Relationship.Sibling))
      verdicts
  in
  Format.printf "misclassified links (10 vantages): %d of %d@." (List.length wrong)
    (List.length verdicts)
