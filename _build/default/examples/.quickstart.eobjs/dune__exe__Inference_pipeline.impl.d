examples/inference_pipeline.ml: Array Filename Format Gao_inference List Relationship Sys Topo_gen Topo_io Topology Vantage
