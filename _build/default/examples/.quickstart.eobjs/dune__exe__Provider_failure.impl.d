examples/provider_failure.ml: Array Bgp_net Coloring Float Format Fwd_walk Hashtbl List Random Rbgp_net Runner Scenario Sim Stamp_net Sys Topo_gen Topology
