examples/packet_forwarding.ml: Array Fleet Format List Lpm Prefix Random Stat String Sys Topo_gen Topology
