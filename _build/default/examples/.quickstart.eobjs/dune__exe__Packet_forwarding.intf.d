examples/packet_forwarding.mli:
