examples/quickstart.ml: Array Bgp_net Color Coloring Format Fwd_walk List Option Sim Stamp_net Topology
