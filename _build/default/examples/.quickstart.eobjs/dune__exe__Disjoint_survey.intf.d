examples/disjoint_survey.mli:
