examples/inference_pipeline.mli:
