examples/partial_deployment.mli:
