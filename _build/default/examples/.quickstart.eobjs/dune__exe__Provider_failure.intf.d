examples/provider_failure.mli:
