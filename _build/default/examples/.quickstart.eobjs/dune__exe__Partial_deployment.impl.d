examples/partial_deployment.ml: Array Format List Phi Random Stat Sys Topo_gen Topology
