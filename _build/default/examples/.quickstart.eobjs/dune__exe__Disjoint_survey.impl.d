examples/disjoint_survey.ml: Array Cdf Coloring Format List Phi Random Stat Sys Topo_gen Topology
