examples/quickstart.mli:
