(* The data plane end to end: every AS originates a real IPv4 /24, FIBs are
   longest-prefix-match tables assembled from the converged routing for all
   destinations, and packets with real addresses are forwarded hop by hop.

     dune exec examples/packet_forwarding.exe            # 200-AS topology
     dune exec examples/packet_forwarding.exe -- 400 5   # size and seed  *)

let () =
  let n = try int_of_string Sys.argv.(1) with _ -> 200 in
  let seed = try int_of_string Sys.argv.(2) with _ -> 1 in
  let topo = Topo_gen.generate (Topo_gen.default_params ~seed ~n ()) in
  Format.printf "topology: %a@." Topology.pp_stats topo;

  let fleet = Fleet.build topo in
  Format.printf "built %d FIBs with %d entries each@.@."
    (Topology.num_vertices topo)
    (Lpm.cardinal (Fleet.fib fleet 0));

  (* a few concrete packets *)
  let st = Random.State.make [| seed |] in
  Format.printf "sample packets:@.";
  for _ = 1 to 5 do
    let vs = Topology.vertices topo in
    let src = vs.(Random.State.int st (Array.length vs)) in
    let dst = vs.(Random.State.int st (Array.length vs)) in
    let addr = Prefix.random_member st (Fleet.prefix_of fleet dst) in
    let trace = Fleet.route fleet ~src addr in
    Format.printf "  AS%-5d -> %-18s [%s] %s@." (Topology.asn topo src)
      (Prefix.addr_to_string addr)
      (String.concat " > "
         (List.map (fun v -> string_of_int (Topology.asn topo v)) trace.Fleet.hops))
      (match trace.Fleet.outcome with
      | `Delivered -> "delivered"
      | `No_route -> "NO ROUTE")
  done;

  (* exhaustive any-to-any delivery check plus path-length distribution *)
  let lengths = ref [] in
  let delivered = ref 0 and total = ref 0 in
  Array.iter
    (fun src ->
      Array.iter
        (fun dst ->
          if src <> dst then begin
            incr total;
            let addr = Prefix.network (Fleet.prefix_of fleet dst) in
            let tr = Fleet.route fleet ~src addr in
            match tr.Fleet.outcome with
            | `Delivered ->
              incr delivered;
              lengths :=
                float_of_int (List.length tr.Fleet.hops - 1) :: !lengths
            | `No_route -> ()
          end)
        (Topology.vertices topo))
    (Topology.vertices topo);
  Format.printf "@.any-to-any: %d/%d delivered@." !delivered !total;
  let s = Stat.summarize !lengths in
  Format.printf "AS-path length: mean=%.2f median=%.0f max=%.0f@." s.Stat.mean
    s.Stat.median s.Stat.max;

  (* every address, not just prefix bases, routes to the right origin *)
  let ok = ref true in
  for _ = 1 to 1000 do
    let vs = Topology.vertices topo in
    let dst = vs.(Random.State.int st (Array.length vs)) in
    let addr = Prefix.random_member st (Fleet.prefix_of fleet dst) in
    match Fleet.origin_of fleet addr with
    | Some v when v = dst -> ()
    | _ -> ok := false
  done;
  Format.printf "longest-prefix-match origin lookup: %s@."
    (if !ok then "1000/1000 correct" else "BROKEN")
