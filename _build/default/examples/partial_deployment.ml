(* Partial deployment (Section 6.3): if only the tier-1 ASes run STAMP,
   how many destinations can still be offered two downhill node-disjoint
   paths? The paper reports about 75 %. This example also sweeps the
   tier-1 clique size and the stubs' multi-homing to show what the figure
   depends on.

     dune exec examples/partial_deployment.exe            # default sweep
     dune exec examples/partial_deployment.exe -- 600 2   # size and seed *)

let () =
  let n = try int_of_string Sys.argv.(1) with _ -> 600 in
  let seed = try int_of_string Sys.argv.(2) with _ -> 1 in

  let base = Topo_gen.default_params ~seed ~n () in
  let topo = Topo_gen.generate base in
  Format.printf "topology: %a@.@." Topology.pp_stats topo;
  Format.printf
    "tier-1-only deployment protects %.1f%% of destinations   (paper: ~75%%)@.@."
    (100. *. Phi.partial_deployment_tier1 topo);

  Format.printf "incremental deployment: STAMP at all ASes of tier <= k@.";
  List.iter
    (fun (k, frac) -> Format.printf "  k = %d : %5.1f%%@." k (100. *. frac))
    (Phi.deployment_curve topo ~max_tier:3);

  Format.printf "@.sweep: tier-1 clique size vs protected fraction@.";
  List.iter
    (fun k ->
      let t = Topo_gen.generate { base with Topo_gen.n_tier1 = k } in
      Format.printf "  %2d tier-1 ASes : %5.1f%%@." k
        (100. *. Phi.partial_deployment_tier1 t))
    [ 3; 5; 10; 15; 20 ];

  Format.printf "@.sweep: stub multi-homing vs protected fraction@.";
  List.iter
    (fun q ->
      let t =
        Topo_gen.generate { base with Topo_gen.stub_extra_provider_prob = q }
      in
      Format.printf "  extra-provider prob %.2f : %5.1f%%@." q
        (100. *. Phi.partial_deployment_tier1 t))
    [ 0.0; 0.2; 0.45; 0.6; 0.75 ];

  Format.printf
    "@.full STAMP deployment on the same topology (mean Phi, for contrast): \
     %.3f@."
    (let st = Random.State.make [| seed |] in
     Stat.mean (Array.to_list (Phi.phi_all ~samples:60 st topo)))
