(* Export-policy checks: valley-free reachability and dispute-wheel
   freedom of the customer-preference policy digraph. *)

module Valley_free : Check.CHECK = struct
  let id = "policy.valley-free"

  let doc =
    "export policy is Gao–Rexford valley-free and every AS is reachable \
     under it (uphill path to a tier-1 exists)"

  (* the Gao–Rexford export matrix the whole repository assumes; checked
     against the live Export.allowed so a policy edit that re-introduces
     valleys is caught statically *)
  let expected ~route_cls ~to_rel =
    match (route_cls : Relationship.t) with
    | Customer | Sibling -> true
    | Peer | Provider -> (
      match (to_rel : Relationship.t) with
      | Customer | Sibling -> true
      | Peer | Provider -> false)

  let run (ctx : Check.ctx) =
    let topo = ctx.topo in
    let diags = ref [] in
    let add d = diags := d :: !diags in
    let rels = Relationship.[ Customer; Provider; Peer; Sibling ] in
    List.iter
      (fun route_cls ->
        List.iter
          (fun to_rel ->
            if Export.allowed ~route_cls ~to_rel <> expected ~route_cls ~to_rel
            then
              add
                (Diagnostic.error ~check:id Diagnostic.Global
                   (Printf.sprintf
                      "export policy deviates from valley-free: %s-learned \
                       routes %s exported to %s neighbours"
                      (Relationship.to_string route_cls)
                      (if expected ~route_cls ~to_rel then "are not" else "are")
                      (Relationship.to_string to_rel))
                   ~hint:"restore the Gao–Rexford export matrix in Export"))
          rels)
      rels;
    (* Reachability under valley-free export: which ASes hold a
       valley-free path ([Up* Flat? Down*], siblings transparent) to a
       given destination? Computed by reverse BFS from the destination
       over the (vertex × phase) product graph, walking the path pattern
       backwards: first the reversed downhill steps (D), then at most one
       peer step (F), then the reversed uphill steps (U).

       Guarded on the structural checks this one would otherwise just
       echo: a provider cycle or a broken transit core already explain
       every unreachability, and topo.wellformed / topo.tier1-clique name
       them. *)
    if
      Topology.num_vertices topo > 0
      && Topology.provider_dag_is_acyclic topo
      && Check_graph.core_candidates topo <> []
      && Check_graph.core_connected topo
    then begin
      let n = Topology.num_vertices topo in
      let check_dest d =
        (* phases: 0 = D, 1 = F, 2 = U *)
        let seen = Array.make (n * 3) false in
        let queue = Queue.create () in
        let push v phase =
          if not seen.((v * 3) + phase) then begin
            seen.((v * 3) + phase) <- true;
            Queue.add (v, phase) queue
          end
        in
        push d 0;
        while not (Queue.is_empty queue) do
          let v, phase = Queue.pop queue in
          Array.iter
            (fun (w, r) ->
              (* [r] is w's relationship as seen from v; the forward path
                 step under scrutiny is w → v *)
              match ((r : Relationship.t), phase) with
              | Sibling, _ -> push w phase
              | Provider, 0 -> push w 0 (* forward Down step w→v *)
              | Peer, 0 -> push w 1 (* the single forward Flat step *)
              | Customer, _ -> push w 2 (* forward Up step *)
              | (Provider | Peer), _ -> ())
            (Topology.neighbors topo v)
        done;
        let unreachable =
          List.filter
            (fun v ->
              v <> d
              && (not seen.(v * 3))
              && (not seen.((v * 3) + 1))
              && not seen.((v * 3) + 2))
            (Array.to_list (Topology.vertices topo))
        in
        if unreachable <> [] then
          add
            (Diagnostic.error ~check:id
               (Diagnostic.At_as (Topology.asn topo d))
               (Printf.sprintf
                  "no valley-free path from ASes %s to this destination: its \
                   prefix is invisible to them under Gao–Rexford export"
                  (Check_graph.fmt_asns topo unreachable))
               ~hint:
                 "give the destination transit (a provider) or peer it into \
                  the tier-1 core")
      in
      match ctx.spec with
      | Some spec ->
        let d = spec.Scenario.dest in
        if d >= 0 && d < n then check_dest d
      | None -> Array.iter check_dest (Topology.vertices topo)
    end;
    List.rev !diags
end

module Dispute_wheel : Check.CHECK = struct
  let id = "policy.dispute-wheel"

  let doc =
    "customer-preference policy digraph has no dispute wheel (no dispute \
     wheel ⇒ safety, Griffin–Shepherd–Wilfong)"

  (* Under prefer-customer + valley-free export, a dispute wheel requires
     a cycle of "routes through my customer" relations. Sibling links make
     two ASes mutually transparent, so we collapse sibling-connected
     groups into supernodes and look for customer→provider cycles on the
     quotient: a pure provider cycle is one instance (already an error in
     topo.wellformed, so we stay silent on it and let that check name it),
     but a cycle closed through sibling groups is invisible to the plain
     provider-DAG test and is reported here. *)
  let run (ctx : Check.ctx) =
    let topo = ctx.topo in
    let n = Topology.num_vertices topo in
    if n = 0 then []
    else begin
      (* union-find over sibling links *)
      let parent = Array.init n (fun v -> v) in
      let rec find v =
        if parent.(v) = v then v
        else begin
          parent.(v) <- find parent.(v);
          parent.(v)
        end
      in
      let union u v =
        let ru = find u and rv = find v in
        if ru <> rv then parent.(ru) <- rv
      in
      Array.iter
        (fun u ->
          Array.iter
            (fun (v, r) -> if r = Relationship.Sibling then union u v)
            (Topology.neighbors topo u))
        (Topology.vertices topo);
      (* customer→provider edges lifted to sibling groups *)
      let succs = Array.make n [] in
      Array.iter
        (fun u ->
          Array.iter
            (fun p ->
              let gu = find u and gp = find p in
              if gu <> gp then succs.(gu) <- gp :: succs.(gu))
            (Topology.providers topo u))
        (Topology.vertices topo);
      let succs_arr = Array.map Array.of_list succs in
      let wheels =
        Check_graph.scc n (fun g -> succs_arr.(g))
        |> List.filter (fun comp -> List.length comp >= 2)
      in
      if wheels = [] then []
      else if not (Topology.provider_dag_is_acyclic topo) then
        (* plain provider cycle: topo.wellformed already errors with the
           members; a second report here would only repeat it *)
        []
      else
        List.map
          (fun comp ->
            (* expand group representatives back to their member ASes *)
            let members =
              List.filter
                (fun v -> List.mem (find v) comp)
                (Array.to_list (Topology.vertices topo))
            in
            Diagnostic.error ~check:id Diagnostic.Global
              (Printf.sprintf
                 "dispute wheel: ASes %s form a transit cycle through \
                  sibling groups — prefer-customer preferences are circular \
                  and BGP convergence is no longer guaranteed"
                 (Check_graph.fmt_asns topo members))
              ~hint:
                "break the cycle: demote one customer link or split the \
                 sibling group")
          wheels
    end
end

let () = Check.Registry.register (module Valley_free)
let () = Check.Registry.register (module Dispute_wheel)
