let src = Logs.Src.create "stamp.staticcheck" ~doc:"static safety analyzer"

module Log = (val Logs.src_log src : Logs.LOG)

(* Checks self-register at module-initialisation time; referencing one
   value from every check module forces the linker to keep them (same
   trick Runner plays for the engine adapters). *)
let builtin_checks : (module Check.CHECK) list =
  [
    (module Check_graph.Wellformed);
    (module Check_graph.Tier1_clique);
    (module Check_policy.Valley_free);
    (module Check_policy.Dispute_wheel);
    (module Check_stamp.Red_blue_disjoint);
    (module Check_stamp.Lock_coverage);
    (module Check_scenario.Sanity);
  ]

type validate = [ `Off | `Warn | `Strict ]

type certificate =
  | Convergence_certified
  | Not_certified of string

type report = {
  diagnostics : Diagnostic.t list;
  certificate : certificate;
  timings : (string * float) list;
}

(* convergence is a property of the policy graph alone: well-formed
   relationships and no dispute wheel certify it (GSW) *)
let safety_checks = [ "topo.wellformed"; "policy.dispute-wheel" ]

let analyze ?spec ?mrai_base ?detect_delay topo =
  ignore builtin_checks;
  let ctx = Check.ctx ?spec ?mrai_base ?detect_delay topo in
  let runs =
    List.map
      (fun (module C : Check.CHECK) ->
        let t0 = Sys.time () in
        let diags = C.run ctx in
        (C.id, diags, Sys.time () -. t0))
      (Check.Registry.all ())
  in
  let certificate =
    match
      List.find_opt
        (fun (id, diags, _) ->
          List.mem id safety_checks && List.exists Diagnostic.is_error diags)
        runs
    with
    | None -> Convergence_certified
    | Some (id, diags, _) ->
      let d = List.find Diagnostic.is_error diags in
      Not_certified (Printf.sprintf "%s: %s" id d.Diagnostic.message)
  in
  {
    diagnostics =
      List.concat_map (fun (_, diags, _) -> diags) runs
      |> List.sort Diagnostic.compare;
    certificate;
    timings = List.map (fun (id, _, dt) -> (id, dt)) runs;
  }

let errors r = List.filter Diagnostic.is_error r.diagnostics
let warnings r =
  List.filter (fun d -> d.Diagnostic.severity = Diagnostic.Warning) r.diagnostics

let has_errors r = errors r <> []

let enforce ?(what = "topology") validate r =
  match validate with
  | `Off -> ()
  | (`Warn | `Strict) as v -> (
    match errors r with
    | [] -> ()
    | errs -> (
      match v with
      | `Warn ->
        List.iter
          (fun d -> Log.warn (fun m -> m "%s: %a" what Diagnostic.pp d))
          errs
      | `Strict ->
        invalid_arg
          (Format.asprintf "static check failed for %s: %a" what
             (Format.pp_print_list
                ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
                Diagnostic.pp)
             errs)))

let certificate_to_string = function
  | Convergence_certified ->
    "convergence certified: policy graph is dispute-wheel-free \
     (Griffin–Shepherd–Wilfong)"
  | Not_certified why -> "not certified: " ^ why

let pp_report ppf r =
  List.iter (fun d -> Format.fprintf ppf "%a@." Diagnostic.pp d) r.diagnostics;
  Format.fprintf ppf "%s@." (certificate_to_string r.certificate)

let report_to_json r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf {|{"errors":%d,"warnings":%d,"certified":%b|}
       (List.length (errors r))
       (List.length (warnings r))
       (r.certificate = Convergence_certified));
  (match r.certificate with
  | Convergence_certified -> ()
  | Not_certified why ->
    Buffer.add_string buf
      (Printf.sprintf {|,"blocked_by":"%s"|}
         (String.concat "" (String.split_on_char '"' why))));
  Buffer.add_string buf {|,"diagnostics":[|};
  List.iteri
    (fun i d ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Diagnostic.to_json d))
    r.diagnostics;
  Buffer.add_string buf {|],"timings_ms":{|};
  List.iteri
    (fun i (id, dt) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf {|"%s":%.3f|} id (dt *. 1000.)))
    r.timings;
  Buffer.add_string buf "}}";
  Buffer.contents buf

let preflight ?pool ?mrai_base ?detect_delay topo specs =
  let job spec = analyze ~spec ?mrai_base ?detect_delay topo in
  match pool with
  | None -> List.map job specs
  | Some pool -> Parallel.map pool job specs
