(* STAMP-specific capability checks: can the red/blue construction of
   Section 3 actually deliver its redundancy on this topology?

   Both checks are per-origin. With a scenario in the context they
   restrict themselves to its destination (the cheap pre-run form wired
   into Runner); on a whole-topology lint they sweep every AS.

   Both emit warnings, not errors: a topology where some origin has no
   disjoint fallback still simulates fine — STAMP just cannot protect that
   origin, which is exactly the Φ < 1 population of Figure 1. *)

let guard (ctx : Check.ctx) =
  (* uphill walks only terminate on acyclic provider structure with a
     top tier; the graph checks error on violations, we stay silent *)
  Topology.num_vertices ctx.topo > 0
  && Topology.provider_dag_is_acyclic ctx.topo
  && Array.length (Topology.tier1s ctx.topo) > 0
  && Topology.all_reach_tier1 ctx.topo

let origins (ctx : Check.ctx) =
  match ctx.spec with
  | Some spec -> [ spec.Scenario.dest ]
  | None -> Array.to_list (Topology.vertices ctx.topo)

(* the deterministic first-preference uphill walk from [o] to a tier-1 *)
let canonical_uphill topo o =
  let rec walk acc v =
    let ps = Topology.providers topo v in
    if Array.length ps = 0 then List.rev (v :: acc)
    else walk (v :: acc) ps.(0)
  in
  walk [] o

(* named Red_blue_disjoint, not Disjoint: the uphill-path machinery this
   check calls lives in the routing library's Disjoint module *)
module Red_blue_disjoint : Check.CHECK = struct
  let id = "stamp.disjoint"

  let doc =
    "per origin, some locked-blue choice leaves a node-disjoint red \
     uphill path (the Lemma 3.1 capability: Φ can be positive)"

  let run (ctx : Check.ctx) =
    if not (guard ctx) then []
    else begin
      let topo = ctx.topo in
      List.filter_map
        (fun origin ->
          match Coloring.effective_origin topo origin with
          | None -> None (* no colouring point: stamp.lock-coverage reports *)
          | Some o ->
            (* Menger on the uphill DAG: two node-disjoint uphill paths
               from [o] to the tier-1 set exist iff no single vertex cuts
               [o] from every tier-1. A one-vertex cut must lie on every
               uphill path, in particular on the canonical one, so testing
               its vertices is exact. *)
            let path = canonical_uphill topo o in
            let cut =
              List.find_opt
                (fun c ->
                  c <> o
                  && not
                       (Disjoint.reaches_tier1_avoiding topo ~src:o
                          ~blocked:(fun v -> v = c)))
                path
            in
            Option.map
              (fun c ->
                Diagnostic.warning ~check:id
                  (Diagnostic.At_as (Topology.asn topo origin))
                  (Printf.sprintf
                     "every uphill path from colouring origin %d traverses \
                      AS %d: red and blue downhill paths cannot be \
                      node-disjoint for this destination (Φ = 0)"
                     (Topology.asn topo o) (Topology.asn topo c))
                  ~hint:
                    (Printf.sprintf
                       "add a provider path around AS %d to restore \
                        redundancy"
                       (Topology.asn topo c)))
              cut)
        (origins ctx)
    end
end

module Lock_coverage : Check.CHECK = struct
  let id = "stamp.lock-coverage"

  let doc =
    "every origin has a colouring point whose locked blue path reaches a \
     tier-1 AS (Lock-forced blue propagation can start)"

  let run (ctx : Check.ctx) =
    if not (guard ctx) then []
    else begin
      let topo = ctx.topo in
      List.filter_map
        (fun origin ->
          match Coloring.effective_origin topo origin with
          | Some o ->
            (* acyclicity + all-reach-tier1 hold (guard), so the locked
               blue walk from [o] terminates at a tier-1 for any provider
               order — coverage is satisfied *)
            ignore (canonical_uphill topo o : Topology.vertex list);
            None
          | None ->
            if Topology.is_tier1 topo origin then
              (* a tier-1 destination needs no colouring: it is its own
                 top of the hierarchy *)
              None
            else
              Some
                (Diagnostic.warning ~check:id
                   (Diagnostic.At_as (Topology.asn topo origin))
                   "no colouring point: the destination is single-homed all \
                    the way to a tier-1, so no locked blue path exists and \
                    STAMP provides no redundancy for it"
                   ~hint:
                     "multi-home the AS (or one of the ASes on its provider \
                      chain)"))
        (origins ctx)
    end
end

let () = Check.Registry.register (module Red_blue_disjoint)
let () = Check.Registry.register (module Lock_coverage)
