type severity = Error | Warning | Info

type location =
  | Global
  | At_as of int
  | At_link of int * int

type t = {
  check : string;
  severity : severity;
  location : location;
  message : string;
  hint : string option;
}

let make severity ~check ?hint location message =
  { check; severity; location; message; hint }

let error ~check ?hint location message = make Error ~check ?hint location message
let warning ~check ?hint location message =
  make Warning ~check ?hint location message
let info ~check ?hint location message = make Info ~check ?hint location message

let link a b = if a <= b then At_link (a, b) else At_link (b, a)

let is_error d = d.severity = Error

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let location_rank = function
  | Global -> (0, 0, 0)
  | At_as a -> (1, a, 0)
  | At_link (a, b) -> (2, a, b)

let compare d d' =
  let c = compare (severity_rank d.severity) (severity_rank d'.severity) in
  if c <> 0 then c
  else
    let c = String.compare d.check d'.check in
    if c <> 0 then c
    else
      let c = compare (location_rank d.location) (location_rank d'.location) in
      if c <> 0 then c else String.compare d.message d'.message

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let pp_location ppf = function
  | Global -> Format.pp_print_string ppf "topology"
  | At_as a -> Format.fprintf ppf "AS %d" a
  | At_link (a, b) -> Format.fprintf ppf "link %d-%d" a b

let pp ppf d =
  (* "@@" = a literal '@': plain "@ " is a Format break hint *)
  Format.fprintf ppf "%s %s @@ %a: %s"
    (severity_to_string d.severity)
    d.check pp_location d.location d.message;
  match d.hint with
  | None -> ()
  | Some h -> Format.fprintf ppf " (hint: %s)" h

(* minimal JSON string escaping, same dialect as the bench writer *)
let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let location_to_json = function
  | Global -> {|{"kind":"global"}|}
  | At_as a -> Printf.sprintf {|{"kind":"as","asn":%d}|} a
  | At_link (a, b) -> Printf.sprintf {|{"kind":"link","asns":[%d,%d]}|} a b

let to_json d =
  let hint =
    match d.hint with
    | None -> ""
    | Some h -> Printf.sprintf {|,"hint":"%s"|} (escape h)
  in
  Printf.sprintf {|{"check":"%s","severity":"%s","location":%s,"message":"%s"%s}|}
    (escape d.check)
    (severity_to_string d.severity)
    (location_to_json d.location)
    (escape d.message) hint
