(** One static check: a named, self-registering pass over a topology and
    (optionally) a scenario, mirroring {!Engine.Registry}'s pattern — check
    modules run [Registry.register] as a toplevel effect, and
    {!Staticcheck} forces their linking, so the catalog extends without
    touching the driver. *)

type ctx = {
  topo : Topology.t;
  spec : Scenario.spec option;
      (** when present, scenario checks run and per-destination STAMP
          checks restrict themselves to the spec's destination; when
          absent (whole-topology lint) they sweep every destination *)
  mrai_base : float option;  (** runner timer, for bounds checking *)
  detect_delay : float option;
      (** runner-level detection delay, for bounds checking; a spec
          override takes precedence *)
}

val ctx :
  ?spec:Scenario.spec ->
  ?mrai_base:float ->
  ?detect_delay:float ->
  Topology.t ->
  ctx

(** A check inspects the context and returns its findings — pure, no
    simulation, no RNG. [id] is the stable diagnostic id (dotted,
    lowercase, e.g. ["topo.tier1-clique"]); [doc] one line for catalogs
    and [--list] output. *)
module type CHECK = sig
  val id : string
  val doc : string
  val run : ctx -> Diagnostic.t list
end

(** Id → check mapping. Registration order is preserved (it is the report
    order); duplicate ids are ignored so re-registration is harmless. *)
module Registry : sig
  val register : (module CHECK) -> unit
  val find : string -> (module CHECK) option
  val names : unit -> string list

  val all : unit -> (module CHECK) list
  (** Registered checks in registration order. *)
end
