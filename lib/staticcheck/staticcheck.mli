(** The static safety analyzer: run every registered check over a
    topology (and optionally a scenario) before simulating anything.

    STAMP's Section 3 guarantees only hold when the substrate obeys
    structural invariants — valley-free exports, a connected tier-1 core,
    red/blue downhill disjointness, Lock-forced blue propagation — and
    path-vector safety itself is a static property of the policy graph (no
    dispute wheel ⇒ convergence). This module decides all of that in
    milliseconds, so broken inputs are rejected instead of simulated.

    Checks self-register in {!Check.Registry} (the {!Engine.Registry}
    pattern); the built-in catalog:

    - [topo.wellformed] — symmetric relationships, no self-loops, no
      provider cycles (SCC), connected graph;
    - [topo.tier1-clique] — the tier-1 core is peer-connected (full clique
      expected);
    - [policy.valley-free] — the export matrix is Gao–Rexford and every AS
      has an uphill path to a tier-1;
    - [policy.dispute-wheel] — no transit cycle through sibling groups:
      no dispute wheel, hence guaranteed convergence;
    - [stamp.disjoint] — per origin, a node-disjoint red fallback for some
      locked-blue choice exists (warning when Φ = 0);
    - [stamp.lock-coverage] — per origin, a colouring point exists and its
      locked blue path reaches a tier-1 (warning otherwise);
    - [scenario.sanity] — events reference live nodes and links,
      recoveries follow failures, MRAI / detect_delay in range.

    Severity contract: structural violations that break the simulation's
    premises are errors; STAMP capability gaps and style issues are
    warnings. [`Strict] validation raises on errors only, so healthy
    generated topologies (which may contain Φ = 0 origins) always pass. *)

type validate = [ `Off | `Warn | `Strict ]
(** How callers react to findings: [`Off] — skip analysis entirely;
    [`Warn] — analyze, attach diagnostics, log errors, never fail;
    [`Strict] — analyze and raise on any error-severity diagnostic. *)

type certificate =
  | Convergence_certified
      (** the policy graph is well-formed and dispute-wheel-free, so BGP
          convergence is guaranteed (Griffin–Shepherd–Wilfong) *)
  | Not_certified of string
      (** the check id and message that blocked certification *)

type report = {
  diagnostics : Diagnostic.t list;  (** sorted with {!Diagnostic.compare} *)
  certificate : certificate;
  timings : (string * float) list;
      (** per-check CPU seconds, in registration order *)
}

val analyze :
  ?spec:Scenario.spec ->
  ?mrai_base:float ->
  ?detect_delay:float ->
  Topology.t ->
  report
(** Run every registered check. With [spec], scenario checks run and the
    per-origin STAMP checks restrict to the spec's destination; without,
    they sweep all destinations (the whole-topology lint). *)

val errors : report -> Diagnostic.t list
val warnings : report -> Diagnostic.t list

val has_errors : report -> bool

val enforce : ?what:string -> validate -> report -> unit
(** Apply a validation policy to a report: [`Off] and error-free reports
    are no-ops; [`Warn] logs each error-severity diagnostic; [`Strict]
    raises [Invalid_argument] naming [what] (default ["topology"]) and the
    first offending check ids/messages.
    @raise Invalid_argument under [`Strict] with errors present. *)

val certificate_to_string : certificate -> string

val pp_report : Format.formatter -> report -> unit
(** Diagnostics one per line, then the certificate line. *)

val report_to_json : report -> string
(** One JSON object: [errors], [warnings], [certificate], [diagnostics]
    (array of {!Diagnostic.to_json} objects) and [timings_ms]. *)

val preflight :
  ?pool:Parallel.t ->
  ?mrai_base:float ->
  ?detect_delay:float ->
  Topology.t ->
  Scenario.spec list ->
  report list
(** Validate a whole batch of scenarios against one topology, one
    {!analyze} job per spec distributed over [pool] (inline when absent) —
    the fleet's pre-flight gate. Results are in submission order; the
    usual {!Parallel} determinism contract applies (the analysis is pure,
    so results are identical for any worker count). *)
