(** Structured findings of the static analyzer.

    A diagnostic names the check that produced it (a stable dotted id such
    as ["policy.dispute-wheel"]), a severity, a location in the topology
    (an AS, a link, or the whole graph) and a human message; most carry a
    fix hint. Locations use external AS numbers, never dense vertex
    indices, so output is stable across re-interning and meaningful next
    to the input files. *)

type severity = Error | Warning | Info

type location =
  | Global  (** about the topology or scenario as a whole *)
  | At_as of int  (** an AS, by external AS number *)
  | At_link of int * int  (** a link, by external AS numbers (normalised) *)

type t = {
  check : string;  (** stable id of the producing check *)
  severity : severity;
  location : location;
  message : string;
  hint : string option;  (** how to fix the input, when the check knows *)
}

val error : check:string -> ?hint:string -> location -> string -> t
val warning : check:string -> ?hint:string -> location -> string -> t
val info : check:string -> ?hint:string -> location -> string -> t

val link : int -> int -> location
(** Normalised link location (smaller AS number first). *)

val is_error : t -> bool

val compare : t -> t -> int
(** Stable report order: severity (errors first), then check id, then
    location, then message. *)

val severity_to_string : severity -> string

val pp : Format.formatter -> t -> unit
(** One line: [error topo.wellformed @ AS 7: message (hint: ...)]. *)

val to_json : t -> string
(** One JSON object, keys [check], [severity], [location], [message] and
    optionally [hint]. No external JSON dependency: emitted by hand like
    the bench's writer; messages are escaped. *)
