type ctx = {
  topo : Topology.t;
  spec : Scenario.spec option;
  mrai_base : float option;
  detect_delay : float option;
}

let ctx ?spec ?mrai_base ?detect_delay topo =
  { topo; spec; mrai_base; detect_delay }

module type CHECK = sig
  val id : string
  val doc : string
  val run : ctx -> Diagnostic.t list
end

module Registry = struct
  let checks : (module CHECK) list ref = ref []

  let id (module C : CHECK) = C.id

  let register c =
    if not (List.exists (fun c' -> id c' = id c) !checks) then
      checks := !checks @ [ c ]

  let find name = List.find_opt (fun c -> id c = name) !checks
  let names () = List.map id !checks
  let all () = !checks
end
