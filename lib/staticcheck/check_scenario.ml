(* Scenario sanity: every event must reference live nodes and links, the
   fail/recover ordering must make sense, and the timing knobs must be in
   range — all decidable before a single simulation event fires. *)

module Sanity : Check.CHECK = struct
  let id = "scenario.sanity"

  let doc =
    "scenario events reference existing nodes/links, recoveries follow \
     failures, and MRAI / detect_delay are in range"

  (* flatten [At] nesting into (offset, base event), accumulating *)
  let rec offset_of dt = function
    | Scenario.At (dt', e) -> offset_of (dt +. dt') e
    | e -> (dt, e)

  let run (ctx : Check.ctx) =
    match ctx.spec with
    | None -> []
    | Some spec ->
      let topo = ctx.topo in
      let n = Topology.num_vertices topo in
      let diags = ref [] in
      let add d = diags := d :: !diags in
      let in_range v = v >= 0 && v < n in
      let asn v = Topology.asn topo v in
      if not (in_range spec.Scenario.dest) then
        add
          (Diagnostic.error ~check:id Diagnostic.Global
             (Printf.sprintf "destination vertex %d is not in the topology"
                spec.Scenario.dest)
             ~hint:"pick a destination AS of this topology");
      (* resolve each event's vertices; drop events with dead references
         from the ordering simulation (they are already reported) *)
      let resolved =
        List.filter_map
          (fun event ->
            let dt, base = offset_of 0.0 event in
            if dt < 0.0 then begin
              add
                (Diagnostic.error ~check:id Diagnostic.Global
                   (Printf.sprintf "negative event offset %g" dt)
                   ~hint:"at-offsets are seconds after injection, >= 0");
              None
            end
            else begin
              let node_ok what v =
                if in_range v then true
                else begin
                  add
                    (Diagnostic.error ~check:id Diagnostic.Global
                       (Printf.sprintf "%s references vertex %d, not in the \
                                        topology"
                          what v)
                       ~hint:"reference an AS of this topology");
                  false
                end
              in
              let link_ok what u v =
                node_ok what u && node_ok what v
                &&
                if Topology.rel topo u v <> None then true
                else begin
                  add
                    (Diagnostic.error ~check:id
                       (Diagnostic.link (asn u) (asn v))
                       (Printf.sprintf "%s references a link that does not \
                                        exist"
                          what)
                       ~hint:"reference a link of this topology");
                  false
                end
              in
              match base with
              | Scenario.Fail_link (u, v) ->
                if link_ok "fail_link" u v then Some (dt, base) else None
              | Scenario.Recover_link (u, v) ->
                if link_ok "recover_link" u v then Some (dt, base) else None
              | Scenario.Deny_export (u, v) ->
                if link_ok "deny_export" u v then Some (dt, base) else None
              | Scenario.Allow_export (u, v) ->
                if link_ok "allow_export" u v then Some (dt, base) else None
              | Scenario.Fail_node u ->
                if node_ok "fail_node" u then begin
                  if u = spec.Scenario.dest then
                    add
                      (Diagnostic.warning ~check:id (Diagnostic.At_as (asn u))
                         "failing the destination itself: every AS loses \
                          reachability and transient counts are vacuous"
                         ~hint:"fail a transit AS instead");
                  Some (dt, base)
                end
                else None
              | Scenario.Recover_node u ->
                if node_ok "recover_node" u then Some (dt, base) else None
              | Scenario.At _ -> assert false (* flattened above *)
            end)
          spec.Scenario.events
      in
      (* fail/recover ordering: replay in time order (stable for ties, so
         same-time events keep their list order, as the runner injects
         them) *)
      let timed = List.stable_sort (fun (t, _) (t', _) -> compare t t') resolved in
      let down_links = Hashtbl.create 8 in
      let down_nodes = Hashtbl.create 8 in
      let denied = Hashtbl.create 8 in
      let key u v = if u <= v then (u, v) else (v, u) in
      List.iter
        (fun (_, base) ->
          match base with
          | Scenario.Fail_link (u, v) ->
            if Hashtbl.mem down_links (key u v) then
              add
                (Diagnostic.warning ~check:id (Diagnostic.link (asn u) (asn v))
                   "link fails twice without recovering in between"
                   ~hint:"drop the duplicate failure or recover first")
            else Hashtbl.add down_links (key u v) ()
          | Scenario.Recover_link (u, v) ->
            if Hashtbl.mem down_links (key u v) then
              Hashtbl.remove down_links (key u v)
            else
              add
                (Diagnostic.error ~check:id (Diagnostic.link (asn u) (asn v))
                   "link recovers before any failure (recover-before-fail)"
                   ~hint:"fail the link first, or drop the recovery")
          | Scenario.Fail_node u ->
            if Hashtbl.mem down_nodes u then
              add
                (Diagnostic.warning ~check:id (Diagnostic.At_as (asn u))
                   "node fails twice without recovering in between"
                   ~hint:"drop the duplicate failure or recover first")
            else Hashtbl.add down_nodes u ()
          | Scenario.Recover_node u ->
            if Hashtbl.mem down_nodes u then Hashtbl.remove down_nodes u
            else
              add
                (Diagnostic.error ~check:id (Diagnostic.At_as (asn u))
                   "node recovers before any failure (recover-before-fail)"
                   ~hint:"fail the node first, or drop the recovery")
          | Scenario.Deny_export (u, v) ->
            if Hashtbl.mem denied (u, v) then
              add
                (Diagnostic.warning ~check:id (Diagnostic.link (asn u) (asn v))
                   "export denied twice without re-allowing in between"
                   ~hint:"drop the duplicate policy change")
            else Hashtbl.add denied (u, v) ()
          | Scenario.Allow_export (u, v) ->
            if Hashtbl.mem denied (u, v) then Hashtbl.remove denied (u, v)
            else
              add
                (Diagnostic.error ~check:id (Diagnostic.link (asn u) (asn v))
                   "export allowed without a preceding denial"
                   ~hint:"deny the export first, or drop the event")
          | Scenario.At _ -> assert false)
        timed;
      (* timing knobs: a spec-level detect override beats the runner's *)
      let detect =
        match spec.Scenario.detect_delay with
        | Some _ as d -> d
        | None -> ctx.detect_delay
      in
      (match detect with
      | Some d when d < 0.0 ->
        add
          (Diagnostic.error ~check:id Diagnostic.Global
             (Printf.sprintf "detect_delay %g is negative" d)
             ~hint:"detection delays are seconds, >= 0")
      | Some d when d > 180.0 ->
        add
          (Diagnostic.warning ~check:id Diagnostic.Global
             (Printf.sprintf
                "detect_delay %g s exceeds the BGP hold-timer regime (90–180 \
                 s): every protocol will look broken for that long"
                d)
             ~hint:"use a delay within [0, 180] s")
      | Some _ | None -> ());
      (match ctx.mrai_base with
      | Some m when m <= 0.0 ->
        add
          (Diagnostic.error ~check:id Diagnostic.Global
             (Printf.sprintf "MRAI base %g must be positive" m)
             ~hint:"the paper uses 30 s")
      | Some m when m > 120.0 ->
        add
          (Diagnostic.warning ~check:id Diagnostic.Global
             (Printf.sprintf
                "MRAI base %g s is far above deployed practice (the paper \
                 uses 30 s)"
                m)
             ~hint:"use an MRAI base within (0, 120] s")
      | Some _ | None -> ());
      List.rev !diags
end

let () = Check.Registry.register (module Sanity)
