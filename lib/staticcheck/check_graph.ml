(* Relationship-graph structure checks: well-formedness of the link set
   and connectivity of the tier-1 core. *)

let fmt_asns topo ?(limit = 10) vs =
  let asns = List.map (Topology.asn topo) vs in
  let shown = List.filteri (fun i _ -> i < limit) asns in
  let body = String.concat ", " (List.map string_of_int shown) in
  if List.length asns > limit then
    Printf.sprintf "%s, … (%d in total)" body (List.length asns)
  else body

(* Strongly connected components of a directed graph over the dense
   vertex range, iterative Tarjan. [succs v] lists v's out-neighbours.
   Returns the components (vertex lists) in reverse topological order. *)
let scc n succs =
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let next_index = ref 0 in
  let comps = ref [] in
  for root = 0 to n - 1 do
    if index.(root) < 0 then begin
      (* explicit DFS frames: (vertex, next successor offset) *)
      let frames = ref [ (root, ref 0) ] in
      let start v =
        index.(v) <- !next_index;
        lowlink.(v) <- !next_index;
        incr next_index;
        stack := v :: !stack;
        on_stack.(v) <- true
      in
      start root;
      while !frames <> [] do
        match !frames with
        | [] -> assert false
        | (v, off) :: rest ->
          let ss = succs v in
          if !off < Array.length ss then begin
            let w = ss.(!off) in
            incr off;
            if index.(w) < 0 then begin
              start w;
              frames := (w, ref 0) :: !frames
            end
            else if on_stack.(w) then
              lowlink.(v) <- min lowlink.(v) index.(w)
          end
          else begin
            if lowlink.(v) = index.(v) then begin
              let comp = ref [] in
              let break = ref false in
              while not !break do
                match !stack with
                | [] -> assert false
                | w :: tl ->
                  stack := tl;
                  on_stack.(w) <- false;
                  comp := w :: !comp;
                  if w = v then break := true
              done;
              comps := !comp :: !comps
            end;
            frames := rest;
            match rest with
            | (parent, _) :: _ ->
              lowlink.(parent) <- min lowlink.(parent) lowlink.(v)
            | [] -> ()
          end
      done
    end
  done;
  !comps

(* Vertices on a customer→provider cycle: members of non-trivial SCCs of
   the directed provider graph (self-loops are impossible by
   construction). *)
let provider_cycle_members topo =
  let n = Topology.num_vertices topo in
  scc n (Topology.providers topo)
  |> List.filter (fun comp -> List.length comp >= 2)
  |> List.concat |> List.sort compare

module Wellformed : Check.CHECK = struct
  let id = "topo.wellformed"

  let doc =
    "relationship graph is well-formed: symmetric relationships, no \
     self-loops, no provider cycles (SCC), connected"

  let run (ctx : Check.ctx) =
    let topo = ctx.topo in
    let n = Topology.num_vertices topo in
    if n = 0 then
      [
        Diagnostic.error ~check:id Diagnostic.Global "topology is empty"
          ~hint:"add at least one AS link";
      ]
    else begin
      let diags = ref [] in
      let add d = diags := d :: !diags in
      (* symmetry and self-loop freedom are Builder invariants; re-verify
         them here so the analyzer stands on its own evidence *)
      Array.iter
        (fun u ->
          Array.iter
            (fun (v, r) ->
              if v = u then
                add
                  (Diagnostic.error ~check:id
                     (Diagnostic.At_as (Topology.asn topo u))
                     "self-loop link" ~hint:"remove the self link");
              let mirror = Topology.rel topo v u in
              if mirror <> Some (Relationship.invert r) then
                add
                  (Diagnostic.error ~check:id
                     (Diagnostic.link (Topology.asn topo u) (Topology.asn topo v))
                     "asymmetric relationship annotation"
                     ~hint:"declare the link once with a single relationship"))
            (Topology.neighbors topo u))
        (Topology.vertices topo);
      (match provider_cycle_members topo with
      | [] -> ()
      | cycle ->
        add
          (Diagnostic.error ~check:id Diagnostic.Global
             (Printf.sprintf
                "provider cycle: ASes %s form a customer→provider cycle, so \
                 \"prefer customer\" has no stable order"
                (fmt_asns topo cycle))
             ~hint:"orient the provider links into a hierarchy (Gao–Rexford)"));
      if not (Topology.is_connected topo) then
        add
          (Diagnostic.warning ~check:id Diagnostic.Global
             "underlying graph is disconnected: some AS pairs can never reach \
              each other"
             ~hint:"connect the components or split the input");
      List.rev !diags
    end
end

(* The transit core: provider-less ASes that actually provide transit
   (have at least one customer). A provider-less, customer-less AS is
   formally "tier-1" under [Topology.is_tier1] but carries nobody's
   routes; treating it as core would misread peering leaves as broken
   cores. *)
let core_candidates topo =
  Array.to_list (Topology.tier1s topo)
  |> List.filter (fun v -> Array.length (Topology.customers topo v) > 0)

(* lateral edges within the core: peer or sibling links *)
let lateral topo u v =
  match Topology.rel topo u v with
  | Some (Relationship.Peer | Relationship.Sibling) -> true
  | Some _ | None -> false

(* Whether the transit core is connected under lateral links (vacuously
   true for cores of size <= 1). *)
let core_connected topo =
  match core_candidates topo with
  | [] | [ _ ] -> true
  | first :: _ as core ->
    let reached = Hashtbl.create 8 in
    let rec dfs u =
      if not (Hashtbl.mem reached u) then begin
        Hashtbl.add reached u ();
        List.iter (fun v -> if lateral topo u v then dfs v) core
      end
    in
    dfs first;
    Hashtbl.length reached = List.length core

module Tier1_clique : Check.CHECK = struct
  let id = "topo.tier1-clique"

  let doc =
    "tier-1 transit core is connected by peer links (full clique expected) \
     so valley-free routes exist between all customer cones"

  let run (ctx : Check.ctx) =
    let topo = ctx.topo in
    if Topology.num_vertices topo < 2 then []
    else begin
      let core = core_candidates topo in
      let k = List.length core in
      if k = 0 then
        if Topology.provider_dag_is_acyclic topo then
          [
            Diagnostic.error ~check:id Diagnostic.Global
              "no tier-1 transit core: no provider-less AS has any customer, \
               so no AS can carry routes between cones"
              ~hint:"give the top of the hierarchy customers";
          ]
        else [] (* provider cycle: topo.wellformed names it *)
      else if k = 1 then []
      else begin
        let t1s = Array.of_list core in
        (* connectivity of the core under lateral links *)
        let reached = Hashtbl.create k in
        let rec dfs u =
          if not (Hashtbl.mem reached u) then begin
            Hashtbl.add reached u ();
            Array.iter (fun v -> if lateral topo u v then dfs v) t1s
          end
        in
        dfs t1s.(0);
        if Hashtbl.length reached < k then
          let stranded =
            Array.to_list t1s
            |> List.filter (fun v -> not (Hashtbl.mem reached v))
          in
          [
            Diagnostic.error ~check:id Diagnostic.Global
              (Printf.sprintf
                 "tier-1 core is not connected by peer links: ASes %s cannot \
                  exchange customer routes with the rest of the core"
                 (fmt_asns topo stranded))
              ~hint:"peer the tier-1 ASes with each other";
          ]
        else begin
          (* connected but not a full mesh: reachability holds, path
             inflation and single-peering fragility remain *)
          let missing = ref [] in
          Array.iter
            (fun u ->
              Array.iter
                (fun v ->
                  if u < v && not (lateral topo u v) then
                    missing := (u, v) :: !missing)
                t1s)
            t1s;
          List.rev_map
            (fun (u, v) ->
              Diagnostic.warning ~check:id
                (Diagnostic.link (Topology.asn topo u) (Topology.asn topo v))
                "tier-1 ASes are not directly peered (full clique expected)"
                ~hint:"add the missing tier-1 peer link")
            !missing
        end
      end
    end
end

let () = Check.Registry.register (module Wellformed)
let () = Check.Registry.register (module Tier1_clique)
