(** Text I/O for scenario specifications, so workloads can be written
    down, shipped under [examples/], and linted by [bin/stamp_check]
    without running a simulation.

    Format — one directive per line, [#] starts a comment:

    {v
    dest <asn>                  # required, exactly once
    detect <seconds>            # optional detect_delay override
    fail_link <asn> <asn>
    fail_node <asn>
    deny_export <asn> <asn>
    recover_link <asn> <asn>
    recover_node <asn>
    allow_export <asn> <asn>
    at <seconds> <event...>     # timed wrapper, nestable
    v}

    Events appear in file order. AS numbers are resolved against the
    accompanying topology; the parser only requires the ASes to exist —
    semantic problems (a failed link that is not in the topology,
    recovering a link that never failed, out-of-range delays) are the
    static analyzer's [scenario.sanity] check's job, so a questionable
    scenario can still be parsed and diagnosed. *)

val parse : Topology.t -> string -> Scenario.spec
(** Parse the content of a scenario file against a topology.
    @raise Invalid_argument on malformed lines, unknown AS numbers, a
    missing or duplicate [dest] directive (with line numbers). *)

val load : Topology.t -> string -> Scenario.spec
(** [load topo path] reads and parses a scenario file.
    @raise Sys_error if the file cannot be read. *)

val to_string : Topology.t -> Scenario.spec -> string
(** Serialize a spec to the scenario format. Round-trips with {!parse}. *)

val save : Topology.t -> Scenario.spec -> string -> unit
(** Write {!to_string} output to a file. *)
