type event =
  | Fail_link of Topology.vertex * Topology.vertex
  | Fail_node of Topology.vertex
  | Deny_export of Topology.vertex * Topology.vertex
  | Recover_link of Topology.vertex * Topology.vertex
  | Recover_node of Topology.vertex
  | Allow_export of Topology.vertex * Topology.vertex
  | At of float * event

type spec = {
  dest : Topology.vertex;
  events : event list;
  detect_delay : float option;
}

let rec pp_event topo ppf = function
  | Fail_link (u, v) ->
    Format.fprintf ppf "link %d-%d" (Topology.asn topo u) (Topology.asn topo v)
  | Fail_node v -> Format.fprintf ppf "node %d" (Topology.asn topo v)
  | Deny_export (u, v) ->
    Format.fprintf ppf "policy %d-x->%d" (Topology.asn topo u)
      (Topology.asn topo v)
  | Recover_link (u, v) ->
    Format.fprintf ppf "recover link %d-%d" (Topology.asn topo u)
      (Topology.asn topo v)
  | Recover_node v -> Format.fprintf ppf "recover node %d" (Topology.asn topo v)
  | Allow_export (u, v) ->
    Format.fprintf ppf "policy %d-ok->%d" (Topology.asn topo u)
      (Topology.asn topo v)
  | At (dt, e) -> Format.fprintf ppf "@@%g %a" dt (pp_event topo) e

let pp_spec topo ppf s =
  Format.fprintf ppf "dest=%d fail=[%a]" (Topology.asn topo s.dest)
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       (pp_event topo))
    s.events;
  (* absent for [None] so every scenario string pinned before the field
     existed is unchanged *)
  match s.detect_delay with
  | None -> ()
  | Some d -> Format.fprintf ppf " detect=%g" d

let random_multi_homed st topo =
  let mh = Topology.multi_homed topo in
  if Array.length mh = 0 then
    invalid_arg "Scenario: topology has no multi-homed AS";
  mh.(Random.State.int st (Array.length mh))

let single_link st topo =
  let dest = random_multi_homed st topo in
  let provs = Topology.providers topo dest in
  let p = provs.(Random.State.int st (Array.length provs)) in
  { dest; events = [ Fail_link (dest, p) ]; detect_delay = None }

(* Provider links in the uphill cone of [dest], excluding any link touching
   one of the [avoid] vertices. *)
let cone_provider_links topo ~dest ~avoid =
  let reach = Tiers.uphill_reachable topo dest in
  let links = ref [] in
  Array.iteri
    (fun v in_cone ->
      if in_cone && (not (List.mem v avoid)) && v <> dest then
        Array.iter
          (fun p -> if not (List.mem p avoid) then links := (v, p) :: !links)
          (Topology.providers topo v))
    reach;
  List.rev !links

let with_resampling ?(attempts = 1000) name f st topo =
  if attempts <= 0 then
    invalid_arg "Scenario.with_resampling: non-positive attempts";
  let rec attempt k =
    if k = 0 then
      invalid_arg
        (Printf.sprintf
           "Scenario.%s: no suitable instance found after %d attempts \
            (topology: %d ASes, %d multi-homed)"
           name attempts
           (Topology.num_vertices topo)
           (Array.length (Topology.multi_homed topo)))
    else match f st topo with Some s -> s | None -> attempt (k - 1)
  in
  attempt attempts

let two_links_apart =
  with_resampling "two_links_apart" (fun st topo ->
      let dest = random_multi_homed st topo in
      let provs = Topology.providers topo dest in
      let p = provs.(Random.State.int st (Array.length provs)) in
      match cone_provider_links topo ~dest ~avoid:[ dest; p ] with
      | [] -> None (* cone too small: resample *)
      | links ->
        let x, px = List.nth links (Random.State.int st (List.length links)) in
        Some
          { dest;
            events = [ Fail_link (dest, p); Fail_link (x, px) ];
            detect_delay = None })

let two_links_shared =
  with_resampling "two_links_shared" (fun st topo ->
      let dest = random_multi_homed st topo in
      let provs =
        Array.to_list (Topology.providers topo dest)
        |> List.filter (fun p -> Array.length (Topology.providers topo p) > 0)
      in
      match provs with
      | [] -> None (* all providers are tier-1: resample *)
      | _ ->
        let p = List.nth provs (Random.State.int st (List.length provs)) in
        let pps = Topology.providers topo p in
        let pp = pps.(Random.State.int st (Array.length pps)) in
        Some
          { dest;
            events = [ Fail_link (dest, p); Fail_link (p, pp) ];
            detect_delay = None })

let node_failure st topo =
  let dest = random_multi_homed st topo in
  let provs = Topology.providers topo dest in
  let p = provs.(Random.State.int st (Array.length provs)) in
  { dest; events = [ Fail_node p ]; detect_delay = None }

let policy_withdraw st topo =
  let dest = random_multi_homed st topo in
  let provs = Topology.providers topo dest in
  let p = provs.(Random.State.int st (Array.length provs)) in
  { dest; events = [ Deny_export (dest, p) ]; detect_delay = None }

(* --- Churn workloads ---------------------------------------------------- *)

let flap ~period ~count st topo =
  if period <= 0. || Float.is_nan period then
    invalid_arg "Scenario.flap: non-positive period";
  if count <= 0 then invalid_arg "Scenario.flap: non-positive count";
  let dest = random_multi_homed st topo in
  let provs = Topology.providers topo dest in
  let p = provs.(Random.State.int st (Array.length provs)) in
  let events = ref [] in
  for k = count - 1 downto 0 do
    let t0 = float_of_int k *. period in
    events :=
      At (t0, Fail_link (dest, p))
      :: At (t0 +. (period /. 2.), Recover_link (dest, p))
      :: !events
  done;
  { dest; events = !events; detect_delay = None }

(* Exponential inter-arrival time with the given rate, from the seeded RNG.
   [Random.State.float st 1.] is in [0,1), so the log argument stays in
   (0,1] and the sample is finite and non-negative. *)
let exp_sample st ~rate = -.log (1. -. Random.State.float st 1.) /. rate

let churn ~rate ~duration st topo =
  if rate <= 0. || Float.is_nan rate then
    invalid_arg "Scenario.churn: non-positive rate";
  if duration <= 0. || Float.is_nan duration then
    invalid_arg "Scenario.churn: non-positive duration";
  let dest = random_multi_homed st topo in
  let provs = Topology.providers topo dest in
  (* Candidate links: the origin's own provider links plus provider links in
     its uphill cone — the links whose failure the destination can actually
     feel. Each holds an up/down state so the stream alternates
     fail/recover per link and never fails a dead link twice. *)
  let candidates =
    Array.to_list (Array.map (fun p -> (dest, p)) provs)
    @ cone_provider_links topo ~dest ~avoid:[ dest ]
  in
  let links = Array.of_list candidates in
  let up = Array.make (Array.length links) true in
  let events = ref [] in
  let t = ref (exp_sample st ~rate) in
  while !t < duration do
    let i = Random.State.int st (Array.length links) in
    let u, v = links.(i) in
    let e = if up.(i) then Fail_link (u, v) else Recover_link (u, v) in
    up.(i) <- not up.(i);
    events := At (!t, e) :: !events;
    t := !t +. exp_sample st ~rate
  done;
  { dest; events = List.rev !events; detect_delay = None }
