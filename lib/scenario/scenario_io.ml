let strip_comment line =
  match String.index_opt line '#' with
  | None -> line
  | Some i -> String.sub line 0 i

let lines_of content =
  String.split_on_char '\n' content
  |> List.mapi (fun i l -> (i + 1, String.trim (strip_comment l)))
  |> List.filter (fun (_, l) -> l <> "")

let tokens_of line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun t -> t <> "")

let parse topo content =
  let err lineno fmt =
    Printf.ksprintf
      (fun msg ->
        invalid_arg (Printf.sprintf "Scenario_io: %s on line %d" msg lineno))
      fmt
  in
  let vertex lineno s =
    match int_of_string_opt s with
    | None -> err lineno "bad AS number %S" s
    | Some asn -> (
      match Topology.vertex_of_asn topo asn with
      | Some v -> v
      | None -> err lineno "AS %d not in topology" asn)
  in
  let float_of lineno s =
    match float_of_string_opt s with
    | Some f -> f
    | None -> err lineno "bad number %S" s
  in
  let rec event lineno = function
    | [ "fail_link"; a; b ] ->
      Scenario.Fail_link (vertex lineno a, vertex lineno b)
    | [ "fail_node"; a ] -> Scenario.Fail_node (vertex lineno a)
    | [ "deny_export"; a; b ] ->
      Scenario.Deny_export (vertex lineno a, vertex lineno b)
    | [ "recover_link"; a; b ] ->
      Scenario.Recover_link (vertex lineno a, vertex lineno b)
    | [ "recover_node"; a ] -> Scenario.Recover_node (vertex lineno a)
    | [ "allow_export"; a; b ] ->
      Scenario.Allow_export (vertex lineno a, vertex lineno b)
    | "at" :: dt :: (_ :: _ as rest) ->
      Scenario.At (float_of lineno dt, event lineno rest)
    | toks -> err lineno "malformed event %S" (String.concat " " toks)
  in
  let dest = ref None and detect = ref None and events = ref [] in
  List.iter
    (fun (lineno, line) ->
      match tokens_of line with
      | [ "dest"; a ] ->
        if !dest <> None then err lineno "duplicate dest directive";
        dest := Some (vertex lineno a)
      | [ "detect"; dt ] ->
        if !detect <> None then err lineno "duplicate detect directive";
        detect := Some (float_of lineno dt)
      | toks -> events := event lineno toks :: !events)
    (lines_of content);
  match !dest with
  | None -> invalid_arg "Scenario_io: missing dest directive"
  | Some dest ->
    { Scenario.dest; events = List.rev !events; detect_delay = !detect }

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load topo path = parse topo (read_file path)

let to_string topo (spec : Scenario.spec) =
  let buf = Buffer.create 256 in
  let asn v = Topology.asn topo v in
  Buffer.add_string buf (Printf.sprintf "dest %d\n" (asn spec.dest));
  (match spec.detect_delay with
  | None -> ()
  | Some dt -> Buffer.add_string buf (Printf.sprintf "detect %.17g\n" dt));
  let rec emit = function
    | Scenario.Fail_link (u, v) -> Printf.sprintf "fail_link %d %d" (asn u) (asn v)
    | Scenario.Fail_node u -> Printf.sprintf "fail_node %d" (asn u)
    | Scenario.Deny_export (u, v) ->
      Printf.sprintf "deny_export %d %d" (asn u) (asn v)
    | Scenario.Recover_link (u, v) ->
      Printf.sprintf "recover_link %d %d" (asn u) (asn v)
    | Scenario.Recover_node u -> Printf.sprintf "recover_node %d" (asn u)
    | Scenario.Allow_export (u, v) ->
      Printf.sprintf "allow_export %d %d" (asn u) (asn v)
    | Scenario.At (dt, e) -> Printf.sprintf "at %.17g %s" dt (emit e)
  in
  List.iter
    (fun e ->
      Buffer.add_string buf (emit e);
      Buffer.add_char buf '\n')
    spec.events;
  Buffer.contents buf

let save topo spec path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string topo spec))
