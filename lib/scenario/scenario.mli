(** Failure workloads of the paper's Section 6.2, plus churn extensions.

    Every scenario picks a random multi-homed destination (the paper's
    "origin AS"), lets routing converge, then injects routing events.
    Scenario sampling is deterministic in the supplied RNG. *)

type event =
  | Fail_link of Topology.vertex * Topology.vertex
  | Fail_node of Topology.vertex
  | Deny_export of Topology.vertex * Topology.vertex
      (** policy change: first AS stops exporting to the second *)
  | Recover_link of Topology.vertex * Topology.vertex
      (** the link comes back: the session re-establishes and both ends
          re-announce *)
  | Recover_node of Topology.vertex
      (** the AS comes back with empty RIBs and re-learns from neighbours *)
  | Allow_export of Topology.vertex * Topology.vertex
      (** policy change undone: first AS resumes exporting to the second *)
  | At of float * event
      (** timed wrapper: inject the inner event [dt] seconds after the
          scenario's injection instant instead of immediately. Nesting
          accumulates offsets. *)

type spec = {
  dest : Topology.vertex;  (** the origin/destination AS *)
  events : event list;
      (** injected after convergence; immediately unless wrapped in {!At} *)
  detect_delay : float option;
      (** when set, overrides the runner's failure-detection delay for this
          scenario: routers adjacent to a failed link or node react this
          many seconds after the failure instant (the data plane is broken
          meanwhile). [None] — the generators' default — defers to the
          runner's [?detect_delay] argument. *)
}

val pp_event : Topology.t -> Format.formatter -> event -> unit

val pp_spec : Topology.t -> Format.formatter -> spec -> unit
(** Prints destination and events; a [detect_delay] override is appended as
    [detect=...] only when present, so historical scenario strings are
    unchanged. *)

val with_resampling :
  ?attempts:int ->
  string ->
  (Random.State.t -> Topology.t -> spec option) ->
  Random.State.t ->
  Topology.t ->
  spec
(** [with_resampling name f st topo] draws from [f] until it yields a
    scenario, retrying up to [attempts] times (default 1000).
    @raise Invalid_argument when every attempt returns [None]; the message
    names the generator, the attempt count, and the topology's size and
    multi-homed count so a hopeless generator/topology pairing is
    diagnosable from the error alone. *)

val single_link : Random.State.t -> Topology.t -> spec
(** Figure 2: a multi-homed origin fails one of its provider links. *)

val two_links_apart : Random.State.t -> Topology.t -> spec
(** Figure 3(a): the origin fails one provider link, and a randomly
    selected indirect-provider link (a provider link in the origin's uphill
    cone, multiple hops away and sharing no AS with the first) fails
    simultaneously. *)

val two_links_shared : Random.State.t -> Topology.t -> spec
(** Figure 3(b): the origin fails a link to one of its providers, and that
    provider simultaneously fails one of its own provider links. *)

val node_failure : Random.State.t -> Topology.t -> spec
(** Section 6.2.2's nod: a single AS failure adjacent to the origin — one
    of the origin's providers fails entirely (withdrawing routes from all
    its neighbours). *)

val policy_withdraw : Random.State.t -> Topology.t -> spec
(** The paper's policy-change event class: a multi-homed origin stops
    announcing its prefix to one of its providers. Same withdrawal
    semantics as a link failure, but the link stays physically up. *)

val flap : period:float -> count:int -> Random.State.t -> Topology.t -> spec
(** Link flapping: one of the origin's provider links fails and recovers
    [count] times. Flap [k] fails the link at [k * period] and recovers it
    half a period later, so the link spends half its time down.
    @raise Invalid_argument on non-positive [period] or [count]. *)

val churn : rate:float -> duration:float -> Random.State.t -> Topology.t -> spec
(** Sustained churn: a Poisson-ish stream of link events at [rate] events
    per second of virtual time over [duration] seconds, drawn from the
    seeded RNG (exponential inter-arrivals). Each event picks a uniformly
    random link among the origin's provider links and the provider links in
    its uphill cone, failing it if up and recovering it if down — links may
    be left down when the stream ends.
    @raise Invalid_argument on non-positive [rate] or [duration]. *)
