(** Failure overlay over an immutable topology: the set of links and nodes
    currently down. Shared by every protocol engine; the topology itself is
    never mutated. *)

type t

val create : n:int -> t
(** Everything up, for a topology of [n] vertices. *)

val fail_link : t -> Topology.vertex -> Topology.vertex -> unit
val recover_link : t -> Topology.vertex -> Topology.vertex -> unit
val fail_node : t -> Topology.vertex -> unit
val recover_node : t -> Topology.vertex -> unit

val link_up : t -> Topology.vertex -> Topology.vertex -> bool
(** Whether a link is usable: neither endpoint down, link not failed. *)

val node_up : t -> Topology.vertex -> bool

val failed_links : t -> (Topology.vertex * Topology.vertex) list
(** Currently failed links (canonical order, smaller vertex first). *)
