type t = {
  interval : float;
  mutable next_ok : float;
  mutable flush_scheduled : bool;
}

let create st ?(base = 30.) () =
  if base < 0. then invalid_arg "Mrai.create: negative base";
  let factor = 0.75 +. Random.State.float st 0.25 in
  { interval = base *. factor; next_ok = 0.; flush_scheduled = false }

let interval t = t.interval
let ready t ~now = now >= t.next_ok
let note_sent t ~now = t.next_ok <- now +. t.interval
let next_allowed t = t.next_ok
let flush_scheduled t = t.flush_scheduled
let set_flush_scheduled t b = t.flush_scheduled <- b
