type t = {
  down_links : (int * int, unit) Hashtbl.t;
  node_down : bool array;
}

let create ~n = { down_links = Hashtbl.create 8; node_down = Array.make n false }
let key u v = if u < v then (u, v) else (v, u)
let fail_link t u v = Hashtbl.replace t.down_links (key u v) ()
let recover_link t u v = Hashtbl.remove t.down_links (key u v)
let fail_node t v = t.node_down.(v) <- true
let recover_node t v = t.node_down.(v) <- false

let link_up t u v =
  (not t.node_down.(u))
  && (not t.node_down.(v))
  && not (Hashtbl.mem t.down_links (key u v))

let node_up t v = not t.node_down.(v)

let failed_links t =
  Hashtbl.fold (fun k () acc -> k :: acc) t.down_links []
  |> List.sort compare
