(** The session substrate every protocol engine shares, implemented once:
    per-directed-link ordered {!Channel}s with U[10 ms, 20 ms] delays,
    per-peer (per-process) MRAI timers of 30 s × U[0.75, 1.0] with
    immediate withdrawals, session-reset semantics on failure (in-flight
    messages on a dead link are dropped and counted), link/node up-down
    bookkeeping ({!Link_state}) and the per-engine update {!Counters}.

    A protocol engine built on this core is reduced to its decision,
    export and attribute policy: it computes {e what} a neighbour should
    hear and hands the delta to {!advertise}; the core owns {e when} and
    {e whether} the message travels.

    Reproducibility contract: {!create} draws RNG floats in the exact
    historical order (channels and MRAI timers per directed link, in
    vertices × neighbors iteration order; one draw per MRAI timer), and
    {!send} draws one float per message — so engines ported onto the core
    reproduce their previous runs bit for bit. *)

type 'msg t
(** A session core carrying protocol messages of type ['msg]. *)

val create :
  ?mrai_base:float ->
  ?delay_lo:float ->
  ?delay_hi:float ->
  ?detect_delay:float ->
  ?procs:int ->
  ?trace:Trace.sink ->
  who:string ->
  Sim.t ->
  Topology.t ->
  'msg t
(** Build channels and MRAI state for every directed link. [procs] (default
    1) is the number of routing processes per router — each gets its own
    MRAI timer per directed link (STAMP runs two). [detect_delay] (default
    0) postpones the control-plane reaction to every subsequent
    {!fail_link} while the data plane is already broken. [trace] (default
    {!Trace.null}) receives the session substrate's structured events —
    enqueue/deliver/drop per channel, MRAI deferrals and flushes, session
    resets and decisions ({!note_decision}) — stamped with [who] as engine
    id and locations in ASN space; with the null sink every emission site
    reduces to one branch, and traced runs are bit-identical to untraced
    ones (tracing draws no randomness and schedules nothing). [who]
    prefixes error messages (["Bgp_net.fail_link: vertices not
    adjacent"]).
    @raise Invalid_argument on a negative [detect_delay] or non-positive
    [procs]. *)

val on_receive :
  'msg t -> (src:Topology.vertex -> dst:Topology.vertex -> 'msg -> unit) -> unit
(** Install the engine's receive function. Must be called before the first
    message is delivered; kept separate from {!create} so the engine can
    close over its own state without perturbing construction order. *)

(** {1 Sending} *)

val send :
  'msg t ->
  src:Topology.vertex ->
  dst:Topology.vertex ->
  kind:[ `Announce | `Withdraw ] ->
  'msg ->
  unit
(** Send one message on the directed link, bumping the matching counter.
    Used directly for updates outside the MRAI regime (R-BGP failover
    paths, STAMP's immediate policy withdrawals); regular best-route
    deltas go through {!advertise}. *)

val advertise :
  'msg t ->
  ?proc:int ->
  src:Topology.vertex ->
  dst:Topology.vertex ->
  rib_out:(Topology.vertex, 'adv) Hashtbl.t ->
  desired:'adv option ->
  announce:('adv -> 'msg) ->
  withdraw:(unit -> 'msg) ->
  retry:(unit -> unit) ->
  unit ->
  unit
(** The shared advertisement skeleton: compare [desired] (what the
    neighbour should currently hear, [None] for nothing) against
    [rib_out]'s record of what it last heard, then send the delta —
    withdrawals immediately, announcements under the [(src, dst, proc)]
    MRAI timer, deferring with a single scheduled flush when the timer is
    not ready. [retry] must re-enter the engine's own advertise path (so
    the desired value is recomputed when the flush fires). No-op while the
    link is down. *)

(** {1 Failure bookkeeping} *)

val fail_link :
  'msg t -> Topology.vertex -> Topology.vertex -> react:(unit -> unit) -> unit
(** Mark the link down (data plane breaks now) and run [react] — the
    engine's session-reset logic — immediately, or after the core's
    [detect_delay] if positive.
    @raise Invalid_argument if the vertices are not adjacent. *)

val recover_link :
  'msg t -> Topology.vertex -> Topology.vertex -> react:(unit -> unit) -> unit
(** Mark the link up and run [react] (session re-establishment) at once.
    @raise Invalid_argument if the vertices are not adjacent. *)

val fail_node : 'msg t -> Topology.vertex -> unit
val recover_node : 'msg t -> Topology.vertex -> unit

val check_adjacent :
  'msg t -> op:string -> Topology.vertex -> Topology.vertex -> unit
(** Validation helper for engine operations on a vertex pair:
    @raise Invalid_argument ["<who>.<op>: vertices not adjacent"] when the
    pair shares no link. *)

(** {1 Observation} *)

val sim : 'msg t -> Sim.t
val links : 'msg t -> Link_state.t
val link_up : 'msg t -> Topology.vertex -> Topology.vertex -> bool
val node_up : 'msg t -> Topology.vertex -> bool
val detect_delay : 'msg t -> float

val counters : 'msg t -> Counters.t
(** Live counters (mutated as the engine runs); snapshot before storing. *)

val message_count : 'msg t -> int
(** Updates sent so far (announcements + withdrawals). *)

val last_change : 'msg t -> float
val note_change : 'msg t -> unit
(** Engines call this when any router's best route changes; {!last_change}
    is then the convergence instant once the queue drains. *)

(** {1 Tracing} *)

val trace : 'msg t -> Trace.sink
val trace_enabled : 'msg t -> bool

val note_decision :
  'msg t ->
  node:Topology.vertex ->
  old_next:Topology.vertex option ->
  new_next:Topology.vertex option ->
  cause:string ->
  unit
(** {!note_change} plus a {!Trace.Decision} event at the router (next hops
    are translated to ASN space; [None] = no route or the origin's own
    route). The timestamp side effect is unconditional, so engines can call
    this at every best-route change whether or not tracing is on. *)

val emit_node : 'msg t -> Topology.vertex -> Trace.kind -> unit
(** Emit an engine-specific event located at a router (ASN-translated),
    stamped with the core's [who] and the current virtual time. No-op when
    tracing is off — but build the kind under {!trace_enabled} if it
    allocates. *)
