type status = Delivered | Looped | Blackholed

let equal_status a b =
  match (a, b) with
  | Delivered, Delivered | Looped, Looped | Blackholed, Blackholed -> true
  | (Delivered | Looped | Blackholed), _ -> false

let pp_status ppf s =
  Format.pp_print_string ppf
    (match s with
    | Delivered -> "delivered"
    | Looped -> "looped"
    | Blackholed -> "blackholed")

type cell = Unknown | In_progress | Done of status

let walk_all ~n ~dest ~start ~step ~state_id ~num_states =
  let memo = Array.make (n * num_states) Unknown in
  let rec go v s =
    if v = dest then Delivered
    else begin
      let sid = state_id s in
      assert (sid >= 0 && sid < num_states);
      let idx = (v * num_states) + sid in
      match memo.(idx) with
      | Done st -> st
      | In_progress -> Looped
      | Unknown ->
        memo.(idx) <- In_progress;
        let st =
          match step v s with
          | `Drop -> Blackholed
          | `Deliver -> Delivered
          | `Forward (u, s') -> go u s'
        in
        memo.(idx) <- Done st;
        st
    end
  in
  Array.init n (fun v -> go v (start v))

let walk_one ~dest ~start ~step ~src ~max_hops =
  let rec go v s hops =
    if v = dest then Delivered
    else if hops > max_hops then Looped
    else
      match step v s with
      | `Drop -> Blackholed
      | `Deliver -> Delivered
      | `Forward (u, s') -> go u s' (hops + 1)
  in
  go src start 0
