(** Per-engine update-traffic counters, maintained by {!Session_core} for
    every protocol uniformly: what was sent (announcements, withdrawals),
    how often the MRAI timer held an announcement back, and how many
    in-flight messages a session reset destroyed. One instance per engine
    per run; reports snapshot it at measurement time. *)

type t = {
  mutable announcements : int;
  mutable withdrawals : int;
  mutable mrai_deferrals : int;
      (** advertisement attempts deferred because the per-peer MRAI timer
          was not yet ready (each deferred attempt counts, whether or not a
          flush was already scheduled) *)
  mutable lost_to_resets : int;
      (** messages that were in flight on a link when it (or an endpoint
          node) went down, and were therefore never delivered *)
}

val make : unit -> t
(** All zeros. *)

val snapshot : t -> t
(** An independent copy, immune to further engine activity. *)

val messages : t -> int
(** [announcements + withdrawals]: every update the engine sent. *)

val non_negative : t -> bool

val add : into:t -> t -> unit
(** Accumulate [c] into [into] (for aggregating across runs). *)

val pp : Format.formatter -> t -> unit
