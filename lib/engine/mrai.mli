(** Per-peer Minimum Route Advertisement Interval state.

    The paper configures a peer-based MRAI of 30 s multiplied by a random
    factor uniform in [0.75, 1.0]; each (router, peer) direction draws its
    interval once at session setup. The timer rate-limits announcements;
    withdrawals are sent immediately (standard WRATE-off behaviour), which
    is also what makes BGP path exploration visible. *)

type t

val create : Random.State.t -> ?base:float -> unit -> t
(** Draw the interval as [base *. U(0.75, 1.0)] (default base 30 s). A base
    of [0.] disables rate limiting. *)

val interval : t -> float

val ready : t -> now:float -> bool
(** Whether an announcement may be sent at time [now]. *)

val note_sent : t -> now:float -> unit
(** Record that an announcement was sent; the next one is allowed at
    [now +. interval]. *)

val next_allowed : t -> float
(** Earliest time the next announcement may be sent. *)

val flush_scheduled : t -> bool
(** Whether a deferred-flush callback is already pending, to avoid
    scheduling duplicates. *)

val set_flush_scheduled : t -> bool -> unit
