(** Generic memoized forwarding-plane walker.

    Given each AS's current forwarding behaviour — a step function mapping
    (vertex, packet state) to the next hop — compute, for {e every} source
    AS at once, whether a packet would reach the destination, loop, or be
    dropped. Packet state captures protocol-specific headers (the packet's
    colour and whether it was already re-coloured for STAMP, the deflection
    bit for R-BGP); plain BGP uses a single state.

    Cost is O(vertices × states) per call thanks to memoization, which is
    what makes the checkpointed transient-problem monitor affordable. *)

type status =
  | Delivered  (** the packet reaches the destination *)
  | Looped  (** the packet revisits a (vertex, state) pair *)
  | Blackholed  (** some AS on the way drops the packet *)

val equal_status : status -> status -> bool
val pp_status : Format.formatter -> status -> unit

val walk_all :
  n:int ->
  dest:Topology.vertex ->
  start:(Topology.vertex -> 'state) ->
  step:
    (Topology.vertex ->
    'state ->
    [ `Forward of Topology.vertex * 'state | `Drop | `Deliver ]) ->
  state_id:('state -> int) ->
  num_states:int ->
  status array
(** [walk_all ~n ~dest ~start ~step ~state_id ~num_states] walks from every
    vertex. [state_id] must injectively map states to
    [[0, num_states - 1]]. The destination is [Delivered] for every state
    by definition. A step may also resolve the walk directly: [`Deliver]
    asserts the packet reaches the destination from here (used for pinned
    source-routed failover paths, whose intermediate hops don't consult
    their own tables). *)

val walk_one :
  dest:Topology.vertex ->
  start:'state ->
  step:
    (Topology.vertex ->
    'state ->
    [ `Forward of Topology.vertex * 'state | `Drop | `Deliver ]) ->
  src:Topology.vertex ->
  max_hops:int ->
  status
(** Walk a single packet without memoization (used by tests and examples to
    trace individual paths). [Looped] is reported after [max_hops] hops. *)
