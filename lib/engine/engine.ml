type config = {
  seed : int;
  mrai_base : float;
  delay_lo : float;
  delay_hi : float;
  detect_delay : float;
  trace : Trace.sink;
}

let default_config =
  { seed = 0; mrai_base = 30.; delay_lo = 0.010; delay_hi = 0.020;
    detect_delay = 0.; trace = Trace.null }

exception Unsupported of { engine : string; what : string }

let unsupported ~engine what = raise (Unsupported { engine; what })

module type S = sig
  type t

  val name : string
  val create : Sim.t -> Topology.t -> dest:Topology.vertex -> config -> t
  val start : t -> unit
  val fail_link : t -> Topology.vertex -> Topology.vertex -> unit
  val recover_link : t -> Topology.vertex -> Topology.vertex -> unit
  val fail_node : t -> Topology.vertex -> unit
  val recover_node : t -> Topology.vertex -> unit
  val deny_export : t -> Topology.vertex -> Topology.vertex -> unit
  val allow_export : t -> Topology.vertex -> Topology.vertex -> unit
  val probe : t -> Fwd_walk.status array
  val message_count : t -> int
  val last_change : t -> float
  val counters : t -> Counters.t
end

type instance = Instance : (module S with type t = 'a) * 'a -> instance

let create (module E : S) sim topo ~dest config =
  Instance ((module E), E.create sim topo ~dest config)

let name (Instance ((module E), _)) = E.name
let start (Instance ((module E), t)) = E.start t
let fail_link (Instance ((module E), t)) u v = E.fail_link t u v
let recover_link (Instance ((module E), t)) u v = E.recover_link t u v
let fail_node (Instance ((module E), t)) v = E.fail_node t v
let recover_node (Instance ((module E), t)) v = E.recover_node t v
let deny_export (Instance ((module E), t)) u v = E.deny_export t u v
let allow_export (Instance ((module E), t)) u v = E.allow_export t u v
let probe (Instance ((module E), t)) = E.probe t
let message_count (Instance ((module E), t)) = E.message_count t
let last_change (Instance ((module E), t)) = E.last_change t
let counters (Instance ((module E), t)) = E.counters t

module Registry = struct
  let table : (string, (module S)) Hashtbl.t = Hashtbl.create 8
  let order : string list ref = ref []

  let register (module E : S) =
    if not (Hashtbl.mem table E.name) then begin
      Hashtbl.replace table E.name (module E : S);
      order := E.name :: !order
    end

  let find name = Hashtbl.find_opt table name
  let names () = List.rev !order

  let all () =
    List.filter_map
      (fun n -> Option.map (fun e -> (n, e)) (Hashtbl.find_opt table n))
      (names ())
end
