type t = {
  mutable announcements : int;
  mutable withdrawals : int;
  mutable mrai_deferrals : int;
  mutable lost_to_resets : int;
}

let make () =
  { announcements = 0; withdrawals = 0; mrai_deferrals = 0; lost_to_resets = 0 }

let snapshot c =
  {
    announcements = c.announcements;
    withdrawals = c.withdrawals;
    mrai_deferrals = c.mrai_deferrals;
    lost_to_resets = c.lost_to_resets;
  }

let messages c = c.announcements + c.withdrawals

let non_negative c =
  c.announcements >= 0 && c.withdrawals >= 0 && c.mrai_deferrals >= 0
  && c.lost_to_resets >= 0

let add ~into c =
  into.announcements <- into.announcements + c.announcements;
  into.withdrawals <- into.withdrawals + c.withdrawals;
  into.mrai_deferrals <- into.mrai_deferrals + c.mrai_deferrals;
  into.lost_to_resets <- into.lost_to_resets + c.lost_to_resets

let pp ppf c =
  Format.fprintf ppf "ann=%d wd=%d mrai-deferred=%d lost=%d" c.announcements
    c.withdrawals c.mrai_deferrals c.lost_to_resets
