type 'msg t = {
  sim : Sim.t;
  topo : Topology.t;
  who : string;
  links : Link_state.t;
  counters : Counters.t;
  detect_delay : float;
  trace : Trace.sink;
  chans : (Topology.vertex * Topology.vertex, 'msg Channel.t) Hashtbl.t;
  mrais : (Topology.vertex * Topology.vertex * int, Mrai.t) Hashtbl.t;
  mutable last_change : float;
  mutable handler : src:Topology.vertex -> dst:Topology.vertex -> 'msg -> unit;
}

(* Trace emission helpers: every call is guarded by [Trace.enabled], so a
   Null-sink run performs one branch and no allocation per potential
   event — the zero-cost-when-off contract. Locations are emitted in ASN
   space (what trace consumers see), not vertex-index space. *)
let trace_link core u v kind =
  if Trace.enabled core.trace then
    Trace.emit core.trace ~vtime:(Sim.now core.sim) ~engine:core.who
      ~loc:(Trace.Link (Topology.asn core.topo u, Topology.asn core.topo v))
      kind

let trace_node core v kind =
  if Trace.enabled core.trace then
    Trace.emit core.trace ~vtime:(Sim.now core.sim) ~engine:core.who
      ~loc:(Trace.Node (Topology.asn core.topo v))
      kind

let create ?(mrai_base = 30.) ?(delay_lo = 0.010) ?(delay_hi = 0.020)
    ?(detect_delay = 0.) ?(procs = 1) ?(trace = Trace.null) ~who sim topo =
  if detect_delay < 0. || Float.is_nan detect_delay then
    invalid_arg (who ^ ".create: negative detect delay");
  if procs < 1 then invalid_arg (who ^ ".create: non-positive process count");
  let core =
    {
      sim;
      topo;
      who;
      links = Link_state.create ~n:(Topology.num_vertices topo);
      counters = Counters.make ();
      detect_delay;
      trace;
      chans = Hashtbl.create 64;
      mrais = Hashtbl.create 64;
      last_change = 0.;
      handler =
        (fun ~src:_ ~dst:_ _ ->
          invalid_arg (who ^ ": Session_core receive handler not installed"));
    }
  in
  (* One ordered channel and [procs] MRAI timers per directed link, in the
     fixed vertices × neighbors iteration order every engine historically
     used. The order is part of the reproducibility contract: Mrai.create
     draws one RNG float per timer, so any reordering would shift every
     later draw and silently change all pinned experiment numbers. *)
  Array.iter
    (fun u ->
      Array.iter
        (fun (v, _) ->
          let deliver msg =
            (* messages in flight when a link or endpoint fails are lost *)
            if Link_state.link_up core.links u v then begin
              trace_link core u v Trace.Deliver;
              core.handler ~src:u ~dst:v msg
            end
            else begin
              trace_link core u v Trace.Drop;
              core.counters.lost_to_resets <-
                core.counters.lost_to_resets + 1
            end
          in
          Hashtbl.replace core.chans (u, v)
            (Channel.create sim ~delay_lo ~delay_hi ~deliver);
          for p = 0 to procs - 1 do
            Hashtbl.replace core.mrais (u, v, p)
              (Mrai.create (Sim.rng sim) ~base:mrai_base ())
          done)
        (Topology.neighbors topo u))
    (Topology.vertices topo);
  core

let on_receive core handler = core.handler <- handler
let sim core = core.sim
let links core = core.links
let counters core = core.counters
let detect_delay core = core.detect_delay
let link_up core u v = Link_state.link_up core.links u v
let node_up core v = Link_state.node_up core.links v
let last_change core = core.last_change
let note_change core = core.last_change <- Sim.now core.sim
let message_count core = Counters.messages core.counters
let trace core = core.trace
let trace_enabled core = Trace.enabled core.trace
let emit_node core v kind = trace_node core v kind

let note_decision core ~node ~old_next ~new_next ~cause =
  core.last_change <- Sim.now core.sim;
  if Trace.enabled core.trace then
    Trace.emit core.trace ~vtime:(Sim.now core.sim) ~engine:core.who
      ~loc:(Trace.Node (Topology.asn core.topo node))
      (Trace.Decision
         {
           old_next = Option.map (Topology.asn core.topo) old_next;
           new_next = Option.map (Topology.asn core.topo) new_next;
           cause;
         })

let send core ~src ~dst ~kind msg =
  (match kind with
  | `Announce ->
    core.counters.announcements <- core.counters.announcements + 1
  | `Withdraw -> core.counters.withdrawals <- core.counters.withdrawals + 1);
  let chan = Hashtbl.find core.chans (src, dst) in
  Channel.send chan msg;
  if Trace.enabled core.trace then
    trace_link core src dst
      (Trace.Enqueue
         {
           msg = (match kind with `Announce -> Trace.Announce
                                | `Withdraw -> Trace.Withdraw);
           deliver_at = Channel.last_delivery chan;
         })

(* Reconcile what neighbour [dst] should currently hear from [src] with
   what it last heard; send the delta, deferring announcements under MRAI.
   [retry] re-enters the engine's own advertise path when a deferred flush
   fires, so the desired value is recomputed at flush time. *)
let advertise core ?(proc = 0) ~src ~dst ~rib_out ~desired ~announce ~withdraw
    ~retry () =
  if Link_state.link_up core.links src dst then begin
    let current = Hashtbl.find_opt rib_out dst in
    match (desired, current) with
    | None, None -> ()
    | None, Some _ ->
      (* withdrawals are immediate *)
      Hashtbl.remove rib_out dst;
      send core ~src ~dst ~kind:`Withdraw (withdraw ())
    | Some p, Some p' when p = p' -> ()
    | Some p, (Some _ | None) ->
      let m = Hashtbl.find core.mrais (src, dst, proc) in
      let now = Sim.now core.sim in
      if Mrai.ready m ~now then begin
        Mrai.note_sent m ~now;
        Hashtbl.replace rib_out dst p;
        send core ~src ~dst ~kind:`Announce (announce p)
      end
      else begin
        core.counters.mrai_deferrals <- core.counters.mrai_deferrals + 1;
        if Trace.enabled core.trace then
          trace_link core src dst
            (Trace.Mrai_defer { until = Mrai.next_allowed m; proc });
        if not (Mrai.flush_scheduled m) then begin
          Mrai.set_flush_scheduled m true;
          Sim.schedule_at core.sim ~time:(Mrai.next_allowed m) (fun _ ->
              Mrai.set_flush_scheduled m false;
              if Trace.enabled core.trace then
                trace_link core src dst (Trace.Mrai_flush { proc });
              retry ())
        end
      end
  end

let check_adjacent core ~op u v =
  if Topology.rel core.topo u v = None then
    invalid_arg (Printf.sprintf "%s.%s: vertices not adjacent" core.who op)

let fail_link core u v ~react =
  check_adjacent core ~op:"fail_link" u v;
  (* the data plane breaks immediately; the control plane reacts once the
     session failure is detected (hold timers, BFD, ...) *)
  Link_state.fail_link core.links u v;
  trace_link core u v Trace.Session_reset;
  if core.detect_delay = 0. then react ()
  else Sim.schedule core.sim ~delay:core.detect_delay (fun _ -> react ())

let recover_link core u v ~react =
  check_adjacent core ~op:"recover_link" u v;
  Link_state.recover_link core.links u v;
  trace_link core u v Trace.Session_up;
  react ()

let fail_node core v =
  Link_state.fail_node core.links v;
  trace_node core v Trace.Session_reset

let recover_node core v =
  Link_state.recover_node core.links v;
  trace_node core v Trace.Session_up
