(** First-class protocol engines: the full lifecycle every routing process
    in this repository exposes — construction, start, failure/recovery and
    policy events, the forwarding-plane probe and the update counters —
    captured as a module type, plus packed instances and a registry.

    Analysis code (Runner, Experiment, the bench fleet, conformance tests)
    is generic over {!S}: adding protocol #5 means writing its decision /
    export / attribute policy on top of {!Session_core}, wrapping it in an
    [S] implementation, and registering it — nothing else changes. *)

type config = {
  seed : int;
      (** protocol-level seeding beyond the simulation RNG (e.g. STAMP's
          coloring draw) *)
  mrai_base : float;  (** MRAI base interval in seconds (paper: 30 s) *)
  delay_lo : float;  (** message-delay lower bound (paper: 10 ms) *)
  delay_hi : float;  (** message-delay upper bound (paper: 20 ms) *)
  detect_delay : float;
      (** seconds between a link failing and the adjacent routers reacting
          (0 = instantaneous detection) *)
  trace : Trace.sink;
      (** where the engine's session substrate sends structured trace
          events ({!Trace.null} = tracing off, the default — guaranteed
          bit-identical to an untraced run) *)
}

val default_config : config
(** The paper's parameters: seed 0, MRAI 30 s, delays U[10 ms, 20 ms],
    instantaneous failure detection, no tracing. *)

exception Unsupported of { engine : string; what : string }
(** Raised by an engine for an event kind it genuinely cannot model;
    [what] names the event kind. The generic Runner turns this into a
    clear [Invalid_argument]. None of the four built-in engines raise
    it — it exists for restricted future engines. *)

val unsupported : engine:string -> string -> 'a
(** [unsupported ~engine what] raises {!Unsupported}. *)

(** The engine lifecycle. All failure/recovery and policy operations take
    effect at the current simulation time. *)
module type S = sig
  type t

  val name : string
  (** Display name, also the registry key (e.g. ["R-BGP without RCI"]). *)

  val create : Sim.t -> Topology.t -> dest:Topology.vertex -> config -> t
  (** Build the network for one destination. Nothing is announced until
      {!start}. *)

  val start : t -> unit
  (** The destination originates its prefix; run the sim to converge. *)

  val fail_link : t -> Topology.vertex -> Topology.vertex -> unit
  val recover_link : t -> Topology.vertex -> Topology.vertex -> unit
  val fail_node : t -> Topology.vertex -> unit
  val recover_node : t -> Topology.vertex -> unit
  val deny_export : t -> Topology.vertex -> Topology.vertex -> unit
  val allow_export : t -> Topology.vertex -> Topology.vertex -> unit

  val probe : t -> Fwd_walk.status array
  (** Forwarding-plane status of every AS right now. *)

  val message_count : t -> int
  val last_change : t -> float
  val counters : t -> Counters.t
end

type instance = Instance : (module S with type t = 'a) * 'a -> instance
(** A packed engine: implementation and network value together, so driver
    code can hold heterogeneous engines in one list. *)

val create :
  (module S) -> Sim.t -> Topology.t -> dest:Topology.vertex -> config -> instance

(** Generic accessors over a packed instance. *)

val name : instance -> string
val start : instance -> unit
val fail_link : instance -> Topology.vertex -> Topology.vertex -> unit
val recover_link : instance -> Topology.vertex -> Topology.vertex -> unit
val fail_node : instance -> Topology.vertex -> unit
val recover_node : instance -> Topology.vertex -> unit
val deny_export : instance -> Topology.vertex -> Topology.vertex -> unit
val allow_export : instance -> Topology.vertex -> Topology.vertex -> unit
val probe : instance -> Fwd_walk.status array
val message_count : instance -> int
val last_change : instance -> float
val counters : instance -> Counters.t

(** Name → packed engine mapping. Engines self-register at module
    initialisation (their adapter modules run [register] as a toplevel
    effect); registration order is preserved and duplicate names are
    ignored, so re-registration is harmless. *)
module Registry : sig
  val register : (module S) -> unit
  val find : string -> (module S) option
  val names : unit -> string list

  val all : unit -> (string * (module S)) list
  (** Registered engines in registration order. *)
end
