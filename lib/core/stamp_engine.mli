(** {!Stamp_net} packed as a first-class {!Engine.S}. The paper's default
    variant (random-choice coloring, no unlocked-blue spreading) is
    registered under ["STAMP"] at module initialisation; {!make} builds
    ablation variants for the benches. *)

val default : (module Engine.S)

val make :
  ?spread_unlocked_blue:bool ->
  ?strategy:Coloring.strategy ->
  ?name:string ->
  unit ->
  (module Engine.S)
(** An ablation variant (not registered unless you do so yourself). The
    coloring is drawn per-run from {!Engine.config}[.seed]. *)
