type entry = { route : Route.t; lock : bool }

type body =
  | Announce of { path : Topology.vertex list; lock : bool; et_ok : bool }
  | Withdraw of { et_ok : bool }

type msg = { color : Color.t; body : body }

type process = {
  adj_rib_in : (Topology.vertex, entry) Hashtbl.t;
  mutable best : entry option;
  rib_out : (Topology.vertex, Topology.vertex list * bool) Hashtbl.t;
      (** what was last announced to each neighbour: (path, lock bit) *)
  mutable unstable : bool;
  mutable loss_pending : bool;
      (** our next updates are consequences of a route loss (ET=0) *)
}

type router = {
  v : Topology.vertex;
  procs : process array; (* indexed by Color.to_int *)
  export_deny : (Topology.vertex, unit) Hashtbl.t;
}

type t = {
  core : msg Session_core.t;
  topo : Topology.t;
  dest : Topology.vertex;
  coloring : Coloring.t;
  spread_unlocked_blue : bool;
  routers : router array;
}

let sim t = Session_core.sim t.core
let dest t = t.dest

let rel_exn t u v =
  match Topology.rel t.topo u v with
  | Some r -> r
  | None -> invalid_arg "Stamp_net: vertices not adjacent"

let proc r color = r.procs.(Color.to_int color)

(* --- selective announcement ----------------------------------------- *)

(* Whether a process's best may be exported to a neighbour of class
   [to_rel] under valley-free rules (plus the never-announce-back rule). *)
let standard_export (e : entry option) ~to_rel ~neighbor =
  match e with
  | Some { route; _ }
    when Route.learned_from route <> Some neighbor
         && Export.exportable route ~to_rel ->
    Some route
  | Some _ | None -> None

let blue_lock_held t r =
  r.v = t.dest
  || Hashtbl.fold
       (fun _ (e : entry) acc -> acc || e.lock)
       (proc r Color.Blue).adj_rib_in false

(* The provider the locked blue route must be re-announced to: the first
   alive provider in the AS's coloring preference order. *)
let designated_provider t r =
  let prefs = Coloring.preference t.coloring r.v in
  let rec scan i =
    if i >= Array.length prefs then None
    else if Session_core.link_up t.core r.v prefs.(i) then Some prefs.(i)
    else scan (i + 1)
  in
  scan 0

let alive_provider_count t r =
  Array.fold_left
    (fun acc p -> if Session_core.link_up t.core r.v p then acc + 1 else acc)
    0
    (Topology.providers t.topo r.v)

(* Single-homed origin chains relay both colours upward so the initial
   colouring can happen at the first multi-homed ancestor (footnote 4). *)
let is_relay t r ~red_best ~blue_best =
  alive_provider_count t r = 1
  && (r.v = t.dest
     ||
     match (red_best, blue_best) with
     | Some (r1 : Route.t), Some (r2 : Route.t) ->
       Route.learned_from r1 = Route.learned_from r2
     | _ -> false)

(* What should neighbour [n] currently hear from [r] on process [color]?
   Returns the (path, lock) announcement, or None for nothing/withdraw. *)
let desired t r n color =
  let to_rel = rel_exn t r.v n in
  let e = (proc r color).best in
  match (to_rel : Relationship.t) with
  | Customer | Peer | Sibling -> begin
    match standard_export e ~to_rel ~neighbor:n with
    | Some route -> Some (r.v :: route.Route.as_path, false)
    | None -> None
  end
  | Provider -> begin
    let red_best =
      standard_export (proc r Color.Red).best ~to_rel ~neighbor:n
    in
    let blue_best =
      standard_export (proc r Color.Blue).best ~to_rel ~neighbor:n
    in
    let lock_held = blue_lock_held t r in
    let designated =
      if lock_held && blue_best <> None then designated_provider t r else None
    in
    let relay = is_relay t r ~red_best ~blue_best in
    let plan : (Topology.vertex list * bool) option =
      match color with
      | Blue ->
        (* Only the locked blue route propagates to providers (to exactly
           one of them). Unlocked blue is "not required to propagate"
           (Section 4.1) and deliberately is not: announcing it to red-less
           providers would couple the blue process to red churn — whenever
           a red route (re)appears, its precedence would force a blue
           withdrawal, punching transient holes into the blue tree. Blue
           still reaches every AS through the locked chain to a tier-1 and
           the unrestricted announcements to customers and peers. *)
        if Some n = designated then
          Option.map (fun (b : Route.t) -> (r.v :: b.as_path, true)) blue_best
        else if t.spread_unlocked_blue && red_best = None && not relay then
          (* ablation mode: fill red-less providers with unlocked blue *)
          Option.map (fun (b : Route.t) -> (r.v :: b.as_path, false)) blue_best
        else None
      | Red ->
        if relay then
          Option.map (fun (b : Route.t) -> (r.v :: b.as_path, false)) red_best
        else if Some n = designated then None
          (* red yields the locked blue provider *)
        else Option.map (fun (b : Route.t) -> (r.v :: b.as_path, false)) red_best
    in
    plan
  end

let rec advertise_to t r n color =
  let p = proc r color in
  let want =
    if Hashtbl.mem r.export_deny n then None else desired t r n color
  in
  Session_core.advertise t.core ~proc:(Color.to_int color) ~src:r.v ~dst:n
    ~rib_out:p.rib_out ~desired:want
    ~announce:(fun (path, lock) ->
      { color; body = Announce { path; lock; et_ok = not p.loss_pending } })
    ~withdraw:(fun () ->
      { color; body = Withdraw { et_ok = not p.loss_pending } })
    ~retry:(fun () -> advertise_to t r n color)
    ()

let advertise_all t r =
  Array.iter
    (fun (n, _) ->
      List.iter (fun color -> advertise_to t r n color) Color.all)
    (Topology.neighbors t.topo r.v)

(* --- decision -------------------------------------------------------- *)

let origin_entry color =
  (* the destination's own blue route carries the lock obligation *)
  { route = Route.origin; lock = Color.equal color Color.Blue }

let select_entry tbl =
  Hashtbl.fold
    (fun _ (e : entry) acc ->
      match acc with
      | None -> Some e
      | Some cur -> if Decision.better e.route cur.route then Some e else acc)
    tbl None

(* Recompute one process's best; [loss] says whether the triggering event
   was a route loss (drives the ET attribute and the instability flag).
   Any rib change can alter the provider plan of both colours, so the
   caller re-advertises everything afterwards. *)
let recompute t r color ~loss =
  let p = proc r color in
  let best' =
    if r.v = t.dest then Some (origin_entry color) else select_entry p.adj_rib_in
  in
  if best' <> p.best then begin
    let next e = Option.bind e (fun e -> Route.learned_from e.route) in
    let old_next = next p.best and new_next = next best' in
    let cause =
      Color.to_string color
      ^
      match (p.best, best') with
      | _, None -> ":route-loss"
      | None, Some _ -> ":route-learned"
      | Some _, Some _ -> ":route-change"
    in
    let was_unstable = p.unstable in
    p.best <- best';
    Session_core.note_decision t.core ~node:r.v ~old_next ~new_next ~cause;
    if loss then begin
      p.unstable <- true;
      p.loss_pending <- true
    end
    else begin
      p.unstable <- false;
      p.loss_pending <- false
    end;
    (* instability flips re-colour traffic away from (or back onto) this
       process: the ET-bit view of the event, for the trace *)
    if p.unstable <> was_unstable && Session_core.trace_enabled t.core then
      Session_core.emit_node t.core r.v
        (Trace.Recolor
           { color = Color.to_string color; et_ok = not p.unstable })
  end

let receive t r ~from { color; body } =
  if Session_core.node_up t.core r.v then begin
    let p = proc r color in
    (* the ET bit decides: a poisoning withdrawal sent while a *better*
       route propagates carries ET=1 and must not trigger switching
       (Lemma 3.1 — improvements cause no transients); withdrawal-type
       events (failures, policy changes) are marked ET=0 by the AS where
       they happened *)
    let loss =
      match body with
      | Withdraw { et_ok } | Announce { et_ok; _ } -> not et_ok
    in
    (match body with
    | Announce { path; lock; _ } ->
      if List.mem r.v path then Hashtbl.remove p.adj_rib_in from
      else
        Hashtbl.replace p.adj_rib_in from
          { route = { Route.as_path = path; cls = rel_exn t r.v from }; lock }
    | Withdraw _ -> Hashtbl.remove p.adj_rib_in from);
    recompute t r color ~loss;
    advertise_all t r
  end

(* --- construction ----------------------------------------------------- *)

let create sim topo ~dest ~coloring ?(mrai_base = 30.) ?(delay_lo = 0.010)
    ?(delay_hi = 0.020) ?(detect_delay = 0.) ?(spread_unlocked_blue = false)
    ?(trace = Trace.null) () =
  let n = Topology.num_vertices topo in
  if dest < 0 || dest >= n then invalid_arg "Stamp_net.create: bad destination";
  let routers =
    Array.init n (fun v ->
        {
          v;
          procs =
            Array.init 2 (fun _ ->
                {
                  adj_rib_in = Hashtbl.create 8;
                  best = None;
                  rib_out = Hashtbl.create 8;
                  unstable = false;
                  loss_pending = false;
                });
          export_deny = Hashtbl.create 2;
        })
  in
  (* procs:2 — one MRAI timer per colour per directed link, drawn in
     Color.all order exactly as before *)
  let core =
    Session_core.create ~mrai_base ~delay_lo ~delay_hi ~detect_delay ~procs:2
      ~trace ~who:"Stamp_net" sim topo
  in
  let t = { core; topo; dest; coloring; spread_unlocked_blue; routers } in
  Session_core.on_receive core (fun ~src ~dst msg ->
      receive t t.routers.(dst) ~from:src msg);
  t

let start t =
  let r = t.routers.(t.dest) in
  List.iter (fun color -> recompute t r color ~loss:false) Color.all;
  advertise_all t r

(* --- failures ---------------------------------------------------------- *)

let drop_session t u v =
  let clear r peer =
    List.iter
      (fun color ->
        let p = proc r color in
        let lost_best =
          match p.best with
          | Some { route; _ } -> Route.learned_from route = Some peer
          | None -> false
        in
        Hashtbl.remove p.adj_rib_in peer;
        Hashtbl.remove p.rib_out peer;
        recompute t r color ~loss:lost_best)
      Color.all;
    advertise_all t r
  in
  clear t.routers.(u) v;
  clear t.routers.(v) u

let fail_link t u v = Session_core.fail_link t.core u v ~react:(fun () -> drop_session t u v)

let recover_link t u v =
  Session_core.recover_link t.core u v ~react:(fun () ->
      (* both sessions re-establish with empty state; each side
         re-advertises whatever the selective-announcement plan currently
         assigns the peer *)
      let refresh r peer =
        List.iter
          (fun color ->
            let p = proc r color in
            Hashtbl.remove p.adj_rib_in peer;
            Hashtbl.remove p.rib_out peer;
            recompute t r color ~loss:false)
          Color.all;
        advertise_all t r
      in
      refresh t.routers.(u) v;
      refresh t.routers.(v) u)

let fail_node t v =
  Session_core.fail_node t.core v;
  let r = t.routers.(v) in
  List.iter
    (fun color ->
      let p = proc r color in
      Hashtbl.reset p.adj_rib_in;
      Hashtbl.reset p.rib_out;
      p.best <- None)
    Color.all;
  Array.iter
    (fun (n, _) ->
      let rn = t.routers.(n) in
      List.iter
        (fun color ->
          let p = proc rn color in
          let lost_best =
            match p.best with
            | Some { route; _ } -> Route.learned_from route = Some v
            | None -> false
          in
          Hashtbl.remove p.adj_rib_in v;
          Hashtbl.remove p.rib_out v;
          recompute t rn color ~loss:lost_best)
        Color.all;
      advertise_all t rn)
    (Topology.neighbors t.topo v)

let recover_node t v =
  Session_core.recover_node t.core v;
  let r = t.routers.(v) in
  (* the returning router restarts both processes from scratch *)
  List.iter
    (fun color ->
      let p = proc r color in
      Hashtbl.reset p.adj_rib_in;
      Hashtbl.reset p.rib_out;
      p.best <- None;
      p.unstable <- false;
      p.loss_pending <- false;
      recompute t r color ~loss:false)
    Color.all;
  advertise_all t r;
  (* neighbours re-run the selective-announcement plan — in particular the
     locked-blue-provider designation, which may now prefer a provider that
     just came back *)
  Array.iter
    (fun (n, _) ->
      let rn = t.routers.(n) in
      List.iter
        (fun color ->
          let p = proc rn color in
          Hashtbl.remove p.adj_rib_in v;
          Hashtbl.remove p.rib_out v;
          recompute t rn color ~loss:false)
        Color.all;
      advertise_all t rn)
    (Topology.neighbors t.topo v)

let deny_export t v n =
  Session_core.check_adjacent t.core ~op:"deny_export" v n;
  let r = t.routers.(v) in
  Hashtbl.replace r.export_deny n ();
  (* a policy change is a withdrawal-type event: the AS where it happens
     marks the resulting withdrawals ET=0 (Section 5.2) *)
  List.iter
    (fun color ->
      let p = proc r color in
      if Hashtbl.mem p.rib_out n then begin
        Hashtbl.remove p.rib_out n;
        Session_core.send t.core ~src:v ~dst:n ~kind:`Withdraw
          { color; body = Withdraw { et_ok = false } }
      end)
    Color.all

let allow_export t v n =
  Session_core.check_adjacent t.core ~op:"allow_export" v n;
  Hashtbl.remove t.routers.(v).export_deny n;
  List.iter (fun c -> advertise_to t t.routers.(v) n c) Color.all

(* --- observation -------------------------------------------------------- *)

let best t color v =
  Option.map (fun e -> e.route) (proc t.routers.(v) color).best

let path t color v =
  Option.map (fun (r : Route.t) -> v :: r.as_path) (best t color v)

let has_both t v = best t Color.Red v <> None && best t Color.Blue v <> None
let blue_is_locked t v = blue_lock_held t t.routers.(v)
let unstable t color v = (proc t.routers.(v) color).unstable

let in_use t v =
  match (best t Color.Red v, best t Color.Blue v) with
  | None, None -> None
  | Some _, None -> Some Color.Red
  | None, Some _ -> Some Color.Blue
  | Some r, Some b ->
    if Decision.better r b then Some Color.Red else Some Color.Blue

(* Colour-aware forwarding (Section 5): forward on the packet's colour;
   when that process's route is missing, broken or unstable, re-colour the
   packet — at most once — and use the other process. *)
let walk_all t =
  let links = Session_core.links t.core in
  let usable v color =
    match best t color v with
    | Some r -> begin
      match Route.learned_from r with
      | Some nh when Link_state.link_up links v nh -> Some nh
      | Some _ | None -> None
    end
    | None -> None
  in
  let step v (color, switched) =
    if not (Link_state.node_up links v) then `Drop
    else begin
      let stable c =
        match usable v c with
        | Some nh when not (unstable t c v) -> Some nh
        | Some _ | None -> None
      in
      if switched then
        (* the packet was already re-coloured once: stick to its colour *)
        match usable v color with
        | Some nh -> `Forward (nh, (color, true))
        | None -> `Drop
      else
        match stable color with
        | Some nh -> `Forward (nh, (color, false))
        | None -> begin
          match stable (Color.other color) with
          | Some nh -> `Forward (nh, (Color.other color, true))
          | None -> begin
            (* both processes disturbed: any process that still has a
               route can be used (Section 5.2) *)
            match usable v color with
            | Some nh -> `Forward (nh, (color, false))
            | None -> begin
              match usable v (Color.other color) with
              | Some nh -> `Forward (nh, (Color.other color, true))
              | None -> `Drop
            end
          end
        end
    end
  in
  let start v =
    match in_use t v with
    | Some c -> (c, false)
    | None -> (Color.Blue, false)
  in
  Fwd_walk.walk_all
    ~n:(Topology.num_vertices t.topo)
    ~dest:t.dest ~start ~step
    ~state_id:(fun (c, sw) -> (2 * Color.to_int c) + Bool.to_int sw)
    ~num_states:4

let announced t color v =
  Hashtbl.fold
    (fun n (_, lock) acc -> (n, lock) :: acc)
    (proc t.routers.(v) color).rib_out []
  |> List.sort compare

let message_count t = Session_core.message_count t.core
let last_change t = Session_core.last_change t.core
let counters t = Session_core.counters t.core

let to_table t color : Static_route.table =
  Array.map
    (fun r ->
      match (proc r color).best with
      | None -> None
      | Some { route; _ } ->
        Some { Static_route.as_path = route.Route.as_path; cls = route.Route.cls })
    t.routers
