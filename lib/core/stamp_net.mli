(** The STAMP protocol engine: two coordinated BGP processes per AS
    (Section 4 of the paper), the [Lock] and [ET] path attributes, and
    colour-aware packet forwarding (Section 5).

    Each AS runs a red and a blue process. Both are standard BGP processes
    (same decision process, valley-free export, per-peer-per-process MRAI,
    [10 ms, 20 ms] delays) except for the {e selective announcement} rules
    towards providers:

    - announcements to customers and peers proceed freely for both colours;
    - an AS holding a locked blue route re-announces its blue best, with
      [Lock] set, to exactly one provider (the first alive provider in its
      {!Coloring} preference order);
    - red routes take precedence on all remaining providers; unlocked blue
      fills providers for which no red route is available;
    - an AS with a {e single} provider that relays both colours from the
      same customer (a single-homed origin chain, paper footnote 4), or the
      single-homed origin itself, announces both colours to that provider —
      the initial colouring then happens at the first multi-homed ancestor.

    The [ET] attribute (1 bit per update: caused by a route loss or not)
    drives instability detection: a process whose best route is lost or
    replaced by an [ET=0] update is flagged unstable, and packets are
    switched to the other process, at most once per packet (Section 5.2). *)

type t

val create :
  Sim.t ->
  Topology.t ->
  dest:Topology.vertex ->
  coloring:Coloring.t ->
  ?mrai_base:float ->
  ?delay_lo:float ->
  ?delay_hi:float ->
  ?detect_delay:float ->
  ?spread_unlocked_blue:bool ->
  ?trace:Trace.sink ->
  unit ->
  t
(** [detect_delay] (default 0) postpones the adjacent routers' reaction to
    every subsequent {!fail_link} while the data plane is already broken
    (Theorem 5.1 only promises loop/blackhole freedom {e once the adjacent
    ASes have detected the event}: a positive delay opens a window in
    which even STAMP drops packets at the dead link, quantified by the
    `ablation` bench target).

    [spread_unlocked_blue] (default [false]) re-enables the propagation of
    unlocked blue routes to red-less providers — the paper permits but does
    not require it. Kept as an ablation switch: it couples the blue
    process to red churn and measurably worsens STAMP's transient counts
    (see DESIGN.md, design decision 6, and the `ablation` bench target). *)

val start : t -> unit
(** The destination originates its prefix on both processes. *)

val sim : t -> Sim.t
val dest : t -> Topology.vertex

(** {1 Failure injection} *)

val fail_link : t -> Topology.vertex -> Topology.vertex -> unit
(** Fail a link; the adjacent routers react after the creation-time
    [detect_delay] (default 0). *)

val fail_node : t -> Topology.vertex -> unit

val deny_export : t -> Topology.vertex -> Topology.vertex -> unit
(** Policy change: stop exporting both colours to a neighbour (withdrawals
    follow immediately). *)

val allow_export : t -> Topology.vertex -> Topology.vertex -> unit
(** Revert {!deny_export}. *)

val recover_link : t -> Topology.vertex -> Topology.vertex -> unit
(** Bring a link back up: the sessions re-establish and both ends
    re-advertise per the current selective-announcement plan. A route
    addition event — by Lemma 3.1 it must cause no transient loops or
    failures, which the test suite checks. *)

val recover_node : t -> Topology.vertex -> unit
(** Bring a failed AS back: its links come up, the returning router
    restarts both processes from scratch, and every neighbour re-runs the
    selective-announcement plan — including the locked-blue-provider
    designation, which may move back onto a recovered provider. *)

(** {1 Observation} *)

val best : t -> Color.t -> Topology.vertex -> Route.t option
(** Current best route of one process at an AS. *)

val path : t -> Color.t -> Topology.vertex -> Topology.vertex list option
(** Full forwarding path [v :: as_path] of one process, if any. *)

val has_both : t -> Topology.vertex -> bool
(** Whether both processes currently hold a route at this AS. *)

val blue_is_locked : t -> Topology.vertex -> bool
(** Whether the AS holds any blue route with the [Lock] attribute set
    (its own origin route counts at the destination). *)

val unstable : t -> Color.t -> Topology.vertex -> bool
(** Whether the process is currently flagged unstable at this AS (it
    received a loss-caused update or an adjacent failure on its best). *)

val in_use : t -> Topology.vertex -> Color.t option
(** The process whose route the AS currently prefers for its own traffic
    ([None] when neither process has a route). *)

val walk_all : t -> Fwd_walk.status array
(** Colour-aware forwarding status of every AS: packets start in the
    source's {!in_use} colour, follow same-colour routes, and are
    re-coloured at most once when the current colour's route is missing,
    broken or unstable. *)

val announced : t -> Color.t -> Topology.vertex -> (Topology.vertex * bool) list
(** The neighbours a process currently advertises a route to, with the
    [Lock] bit as sent, in increasing neighbour order. Exposed so tests can
    check the selective-announcement invariants (red and blue never to the
    same provider; at most one locked blue provider). *)

val message_count : t -> int
(** Updates sent across both processes (the paper's Section 6.3 overhead
    metric: expected below twice the BGP count). *)

val last_change : t -> float

val counters : t -> Counters.t
(** The engine's live {!Session_core} update counters (both processes). *)

val to_table : t -> Color.t -> Static_route.table
