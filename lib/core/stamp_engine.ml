let make ?(spread_unlocked_blue = false) ?(strategy = Coloring.Random_choice)
    ?(name = "STAMP") () : (module Engine.S) =
  let engine_name = name in
  (module struct
    type t = Stamp_net.t

    let name = engine_name

    let create sim topo ~dest (c : Engine.config) =
      (* the coloring draws from its own RNG seeded by config.seed, before
         Stamp_net.create consumes the simulation RNG — the historical
         make_driver order *)
      let coloring = Coloring.create strategy ~seed:c.seed topo ~dest in
      Stamp_net.create sim topo ~dest ~coloring ~mrai_base:c.mrai_base
        ~delay_lo:c.delay_lo ~delay_hi:c.delay_hi
        ~detect_delay:c.detect_delay ~spread_unlocked_blue ~trace:c.trace ()

    let start = Stamp_net.start
    let fail_link = Stamp_net.fail_link
    let recover_link = Stamp_net.recover_link
    let fail_node = Stamp_net.fail_node
    let recover_node = Stamp_net.recover_node
    let deny_export = Stamp_net.deny_export
    let allow_export = Stamp_net.allow_export
    let probe = Stamp_net.walk_all
    let message_count = Stamp_net.message_count
    let last_change = Stamp_net.last_change
    let counters = Stamp_net.counters
  end)

let default = make ()
let () = Engine.Registry.register default
