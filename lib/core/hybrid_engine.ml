let make ?(name = "STAMP-BGP hybrid") ~deployed () : (module Engine.S) =
  let engine_name = name in
  (module struct
    type t = Hybrid_net.t

    let name = engine_name

    let create sim topo ~dest (c : Engine.config) =
      Hybrid_net.create sim topo ~dest ~deployed ~mrai_base:c.mrai_base
        ~delay_lo:c.delay_lo ~delay_hi:c.delay_hi
        ~detect_delay:c.detect_delay ~trace:c.trace ()

    let start = Hybrid_net.start
    let fail_link = Hybrid_net.fail_link
    let recover_link = Hybrid_net.recover_link
    let fail_node = Hybrid_net.fail_node
    let recover_node = Hybrid_net.recover_node
    let deny_export = Hybrid_net.deny_export
    let allow_export = Hybrid_net.allow_export
    let probe = Hybrid_net.walk_all
    let message_count = Hybrid_net.message_count
    let last_change = Hybrid_net.last_change
    let counters = Hybrid_net.counters
  end)

let full = make ~name:"STAMP-BGP hybrid (full deployment)" ~deployed:(fun _ -> true) ()
let () = Engine.Registry.register full
