(** Partial STAMP deployment in the event-driven simulator (the dynamic
    counterpart of Section 6.3's tier-1-only analysis).

    Design: below full deployment, STAMP's coordinated announcement rules
    cannot run end to end — a locked blue chain breaks at the first legacy
    hop, and any deviation of the advertised routes from plain BGP turns
    out to inject extra convergence churn into the legacy region (we
    measured this; see DESIGN.md). What a partially deployed AS {e can}
    soundly do is exactly what the paper's Section 5 requires of routers:
    keep a second, maximally downhill-disjoint route from its RIB as a
    local {e blue table}, detect that its primary is disturbed, and
    re-colour packets onto the backup — at most once per packet. The
    control plane stays byte-for-byte plain BGP (so partial deployment can
    never make routing worse), and the backup candidates are ordinary
    advertised routes, so forwarding through legacy neighbours follows the
    very paths they advertised.

    An upgraded AS therefore provides the protection the static analysis
    counts — "two downhill node-disjoint paths" — whenever its RIB holds a
    disjoint alternate, which for tier-1 ASes is the paper's ≈ 75 % of
    destinations. *)

type t

val create :
  Sim.t ->
  Topology.t ->
  dest:Topology.vertex ->
  deployed:(Topology.vertex -> bool) ->
  ?mrai_base:float ->
  ?delay_lo:float ->
  ?delay_hi:float ->
  ?detect_delay:float ->
  ?trace:Trace.sink ->
  unit ->
  t
(** Build routers and channels ({!Session_core}). [trace] (default
    {!Trace.null}) receives the session substrate's events plus
    per-router decision changes. [detect_delay] (default
    0) postpones the control-plane reaction to every subsequent
    {!fail_link}. *)

val start : t -> unit
val sim : t -> Sim.t
val dest : t -> Topology.vertex
val is_deployed : t -> Topology.vertex -> bool

val fail_link : t -> Topology.vertex -> Topology.vertex -> unit

val recover_link : t -> Topology.vertex -> Topology.vertex -> unit
(** Bring a link back: the session re-establishes and both sides
    re-advertise their current best routes (backup tables refresh as the
    RIBs change). *)

val fail_node : t -> Topology.vertex -> unit
(** Fail an AS entirely (legacy BGP semantics — the blue-table machinery
    holds no extra per-node protocol state to tear down, so the reset is
    exactly {!Bgp_net.fail_node}'s). *)

val recover_node : t -> Topology.vertex -> unit
(** Bring a failed AS back: sessions re-establish and neighbours
    re-announce; the returning router restarts with empty RIBs and an
    empty backup table. *)

val deny_export : t -> Topology.vertex -> Topology.vertex -> unit
(** Policy change: stop exporting to a neighbour (plain BGP semantics; an
    immediate withdrawal follows if something was advertised). *)

val allow_export : t -> Topology.vertex -> Topology.vertex -> unit
(** Revert {!deny_export}. *)

val best : t -> Topology.vertex -> Route.t option
(** The (plain BGP) best route of an AS. *)

val backup : t -> Topology.vertex -> Route.t option
(** The blue table of an upgraded AS: the RIB route most downhill-disjoint
    from the best, restricted to the top local-pref class. [None] at
    legacy ASes and when no alternate exists. *)

val has_disjoint_backup : t -> Topology.vertex -> bool
(** Whether the AS currently holds a backup whose downhill portion is
    node-disjoint from its best route's (except the destination) — the
    protection unit the Section 6.3 analysis counts. *)

val walk_all : t -> Fwd_walk.status array
(** Packets follow best routes; an upgraded AS whose best is missing or
    physically broken re-colours the packet onto its backup. From there
    the packet follows best routes again (the backup is an advertised
    route of the deflection neighbour, so its hops are the downstream best
    chain; following other ASes' local backups would compose unrelated
    picks and can loop). One re-colouring per packet, as in Section 5. *)

val message_count : t -> int
val last_change : t -> float
val counters : t -> Counters.t
