type msg = Announce of Topology.vertex list | Withdraw

type router = {
  v : Topology.vertex;
  upgraded : bool;
  mutable best : Route.t option;
  mutable backup : Route.t option; (* upgraded only: the blue table *)
  adj_rib_in : (Topology.vertex, Route.t) Hashtbl.t;
  rib_out : (Topology.vertex, Topology.vertex list) Hashtbl.t;
  export_deny : (Topology.vertex, unit) Hashtbl.t;
}

type t = {
  core : msg Session_core.t;
  topo : Topology.t;
  dest : Topology.vertex;
  routers : router array;
}

let sim t = Session_core.sim t.core
let dest t = t.dest
let is_deployed t v = t.routers.(v).upgraded

let rel_exn t u v =
  match Topology.rel t.topo u v with
  | Some r -> r
  | None -> invalid_arg "Hybrid_net: vertices not adjacent"

(* --- the plain-BGP control plane (identical to Bgp_net) --------------- *)

let rec advertise_to t r n =
  let desired =
    match r.best with
    | Some b
      when Route.learned_from b <> Some n
           && Export.exportable b ~to_rel:(rel_exn t r.v n)
           && not (Hashtbl.mem r.export_deny n) ->
      Some (r.v :: b.as_path)
    | Some _ | None -> None
  in
  Session_core.advertise t.core ~src:r.v ~dst:n ~rib_out:r.rib_out ~desired
    ~announce:(fun p -> Announce p)
    ~withdraw:(fun () -> Withdraw)
    ~retry:(fun () -> advertise_to t r n)
    ()

let advertise_all t r =
  Array.iter (fun (n, _) -> advertise_to t r n) (Topology.neighbors t.topo r.v)

(* --- the blue table ---------------------------------------------------- *)

(* The RIB alternate most downhill-disjoint from the best route. *)
let recompute_backup t r =
  if r.upgraded then
    r.backup <-
      (match r.best with
      | None -> None
      | Some best -> begin
        let downhill path =
          match Valley.decompose t.topo path with
          | _, down -> down
          | exception Invalid_argument _ -> path
        in
        let best_down = downhill (r.v :: best.Route.as_path) in
        let score (alt : Route.t) =
          List.length
            (List.filter
               (fun x -> x <> t.dest && List.mem x best_down)
               (downhill (r.v :: alt.as_path)))
        in
        Hashtbl.fold
          (fun from (alt : Route.t) acc ->
            if Some from = Route.learned_from best then acc
            else
              match acc with
              | None -> Some alt
              | Some cur ->
                let sa = score alt and sc = score cur in
                if sa < sc || (sa = sc && Decision.better alt cur) then
                  Some alt
                else acc)
          r.adj_rib_in None
      end)

let recompute t r =
  let best' =
    if r.v = t.dest then Some Route.origin else Decision.select_tbl r.adj_rib_in
  in
  if best' <> r.best then begin
    let old_next = Option.bind r.best Route.learned_from in
    let cause =
      match (r.best, best') with
      | _, None -> "route-loss"
      | None, Some _ -> "route-learned"
      | Some _, Some _ -> "route-change"
    in
    r.best <- best';
    Session_core.note_decision t.core ~node:r.v ~old_next
      ~new_next:(Option.bind best' Route.learned_from)
      ~cause;
    recompute_backup t r;
    advertise_all t r
  end
  else recompute_backup t r

let receive t r ~from msg =
  if Session_core.node_up t.core r.v then begin
    (match msg with
    | Announce path ->
      if List.mem r.v path then Hashtbl.remove r.adj_rib_in from
      else
        Hashtbl.replace r.adj_rib_in from
          { Route.as_path = path; cls = rel_exn t r.v from }
    | Withdraw -> Hashtbl.remove r.adj_rib_in from);
    recompute t r
  end

(* --- construction ------------------------------------------------------ *)

let create sim topo ~dest ~deployed ?(mrai_base = 30.) ?(delay_lo = 0.010)
    ?(delay_hi = 0.020) ?(detect_delay = 0.) ?(trace = Trace.null) () =
  let n = Topology.num_vertices topo in
  if dest < 0 || dest >= n then invalid_arg "Hybrid_net.create: bad destination";
  let routers =
    Array.init n (fun v ->
        {
          v;
          upgraded = deployed v;
          best = None;
          backup = None;
          adj_rib_in = Hashtbl.create 8;
          rib_out = Hashtbl.create 8;
          export_deny = Hashtbl.create 2;
        })
  in
  let core =
    Session_core.create ~mrai_base ~delay_lo ~delay_hi ~detect_delay ~trace
      ~who:"Hybrid_net" sim topo
  in
  let t = { core; topo; dest; routers } in
  Session_core.on_receive core (fun ~src ~dst msg ->
      receive t t.routers.(dst) ~from:src msg);
  t

let start t = recompute t t.routers.(t.dest)

(* --- failures ------------------------------------------------------------ *)

let drop_session t u v =
  let clear r peer =
    Hashtbl.remove r.adj_rib_in peer;
    Hashtbl.remove r.rib_out peer;
    recompute t r
  in
  clear t.routers.(u) v;
  clear t.routers.(v) u

let fail_link t u v =
  Session_core.fail_link t.core u v ~react:(fun () -> drop_session t u v)

let recover_link t u v =
  Session_core.recover_link t.core u v ~react:(fun () ->
      let clear r peer =
        Hashtbl.remove r.adj_rib_in peer;
        Hashtbl.remove r.rib_out peer
      in
      clear t.routers.(u) v;
      clear t.routers.(v) u;
      (* session re-establishes: each side advertises its current best *)
      advertise_to t t.routers.(u) v;
      advertise_to t t.routers.(v) u)

let fail_node t v =
  Session_core.fail_node t.core v;
  let r = t.routers.(v) in
  Hashtbl.reset r.adj_rib_in;
  Hashtbl.reset r.rib_out;
  r.best <- None;
  r.backup <- None;
  Array.iter
    (fun (n, _) ->
      let rn = t.routers.(n) in
      Hashtbl.remove rn.adj_rib_in v;
      Hashtbl.remove rn.rib_out v;
      recompute t rn)
    (Topology.neighbors t.topo v)

let recover_node t v =
  Session_core.recover_node t.core v;
  let r = t.routers.(v) in
  (* re-originates if [v] is the destination; otherwise the RIBs are empty
     and best stays None until neighbours re-announce *)
  recompute t r;
  Array.iter
    (fun (n, _) ->
      advertise_to t t.routers.(n) v;
      advertise_to t r n)
    (Topology.neighbors t.topo v)

let deny_export t v n =
  Session_core.check_adjacent t.core ~op:"deny_export" v n;
  Hashtbl.replace t.routers.(v).export_deny n ();
  advertise_to t t.routers.(v) n

let allow_export t v n =
  Session_core.check_adjacent t.core ~op:"allow_export" v n;
  Hashtbl.remove t.routers.(v).export_deny n;
  advertise_to t t.routers.(v) n

(* --- observation ----------------------------------------------------------- *)

let best t v = t.routers.(v).best
let backup t v = t.routers.(v).backup

let has_disjoint_backup t v =
  match (t.routers.(v).best, t.routers.(v).backup) with
  | Some b, Some a ->
    Valley.downhill_disjoint t.topo (v :: b.Route.as_path) (v :: a.Route.as_path)
  | _ -> false

(* packet states: false = primary (never re-coloured), true = switched *)
let walk_all t =
  let links = Session_core.links t.core in
  let usable v (route : Route.t option) =
    match route with
    | Some r -> begin
      match Route.learned_from r with
      | Some nh when Link_state.link_up links v nh -> Some nh
      | Some _ | None -> None
    end
    | None -> None
  in
  let step v switched =
    if not (Link_state.node_up links v) then `Drop
    else begin
      let r = t.routers.(v) in
      if not switched then
        match usable v r.best with
        | Some nh -> `Forward (nh, false)
        | None -> begin
          (* primary missing or physically broken: an upgraded AS
             re-colours the packet onto its blue table *)
          match (r.upgraded, usable v r.backup) with
          | true, Some nh -> `Forward (nh, true)
          | (true | false), _ -> `Drop
        end
      else
        (* a re-coloured packet follows best routes from here on: the
           backup was an advertised route of the deflection neighbour, so
           its hops are exactly the downstream best chain. Following other
           ASes' backups instead would compose unrelated local picks (two
           neighbouring backups can point at each other). One deflection
           per packet, as in Section 5. *)
        match usable v r.best with
        | Some nh -> `Forward (nh, true)
        | None -> `Drop
    end
  in
  Fwd_walk.walk_all
    ~n:(Topology.num_vertices t.topo)
    ~dest:t.dest
    ~start:(fun _ -> false)
    ~step
    ~state_id:(fun sw -> Bool.to_int sw)
    ~num_states:2

let message_count t = Session_core.message_count t.core
let last_change t = Session_core.last_change t.core
let counters t = Session_core.counters t.core
