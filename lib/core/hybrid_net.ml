type msg = Announce of Topology.vertex list | Withdraw

type router = {
  v : Topology.vertex;
  upgraded : bool;
  mutable best : Route.t option;
  mutable backup : Route.t option; (* upgraded only: the blue table *)
  adj_rib_in : (Topology.vertex, Route.t) Hashtbl.t;
  rib_out : (Topology.vertex, Topology.vertex list) Hashtbl.t;
  mrai : (Topology.vertex, Mrai.t) Hashtbl.t;
  chans : (Topology.vertex, msg Channel.t) Hashtbl.t;
}

type t = {
  sim : Sim.t;
  topo : Topology.t;
  dest : Topology.vertex;
  routers : router array;
  links : Link_state.t;
  mutable messages : int;
  mutable last_change : float;
}

let sim t = t.sim
let dest t = t.dest
let is_deployed t v = t.routers.(v).upgraded

let rel_exn t u v =
  match Topology.rel t.topo u v with
  | Some r -> r
  | None -> invalid_arg "Hybrid_net: vertices not adjacent"

let send t r n msg =
  t.messages <- t.messages + 1;
  Channel.send (Hashtbl.find r.chans n) msg

(* --- the plain-BGP control plane (identical to Bgp_net) --------------- *)

let rec advertise_to t r n =
  if Link_state.link_up t.links r.v n then begin
    let to_rel = rel_exn t r.v n in
    let desired =
      match r.best with
      | Some b
        when Route.learned_from b <> Some n && Export.exportable b ~to_rel ->
        Some (r.v :: b.as_path)
      | Some _ | None -> None
    in
    let current = Hashtbl.find_opt r.rib_out n in
    match (desired, current) with
    | None, None -> ()
    | None, Some _ ->
      Hashtbl.remove r.rib_out n;
      send t r n Withdraw
    | Some p, Some p' when p = p' -> ()
    | Some p, (Some _ | None) ->
      let m = Hashtbl.find r.mrai n in
      let now = Sim.now t.sim in
      if Mrai.ready m ~now then begin
        Mrai.note_sent m ~now;
        Hashtbl.replace r.rib_out n p;
        send t r n (Announce p)
      end
      else if not (Mrai.flush_scheduled m) then begin
        Mrai.set_flush_scheduled m true;
        Sim.schedule_at t.sim ~time:(Mrai.next_allowed m) (fun _ ->
            Mrai.set_flush_scheduled m false;
            advertise_to t r n)
      end
  end

let advertise_all t r =
  Array.iter (fun (n, _) -> advertise_to t r n) (Topology.neighbors t.topo r.v)

(* --- the blue table ---------------------------------------------------- *)

(* The RIB alternate most downhill-disjoint from the best route. *)
let recompute_backup t r =
  if r.upgraded then
    r.backup <-
      (match r.best with
      | None -> None
      | Some best -> begin
        let downhill path =
          match Valley.decompose t.topo path with
          | _, down -> down
          | exception Invalid_argument _ -> path
        in
        let best_down = downhill (r.v :: best.Route.as_path) in
        let score (alt : Route.t) =
          List.length
            (List.filter
               (fun x -> x <> t.dest && List.mem x best_down)
               (downhill (r.v :: alt.as_path)))
        in
        Hashtbl.fold
          (fun from (alt : Route.t) acc ->
            if Some from = Route.learned_from best then acc
            else
              match acc with
              | None -> Some alt
              | Some cur ->
                let sa = score alt and sc = score cur in
                if sa < sc || (sa = sc && Decision.better alt cur) then
                  Some alt
                else acc)
          r.adj_rib_in None
      end)

let recompute t r =
  let best' =
    if r.v = t.dest then Some Route.origin else Decision.select_tbl r.adj_rib_in
  in
  if best' <> r.best then begin
    r.best <- best';
    t.last_change <- Sim.now t.sim;
    recompute_backup t r;
    advertise_all t r
  end
  else recompute_backup t r

let receive t r ~from msg =
  if Link_state.node_up t.links r.v then begin
    (match msg with
    | Announce path ->
      if List.mem r.v path then Hashtbl.remove r.adj_rib_in from
      else
        Hashtbl.replace r.adj_rib_in from
          { Route.as_path = path; cls = rel_exn t r.v from }
    | Withdraw -> Hashtbl.remove r.adj_rib_in from);
    recompute t r
  end

(* --- construction ------------------------------------------------------ *)

let create sim topo ~dest ~deployed ?(mrai_base = 30.) ?(delay_lo = 0.010)
    ?(delay_hi = 0.020) () =
  let n = Topology.num_vertices topo in
  if dest < 0 || dest >= n then invalid_arg "Hybrid_net.create: bad destination";
  let routers =
    Array.init n (fun v ->
        {
          v;
          upgraded = deployed v;
          best = None;
          backup = None;
          adj_rib_in = Hashtbl.create 8;
          rib_out = Hashtbl.create 8;
          mrai = Hashtbl.create 8;
          chans = Hashtbl.create 8;
        })
  in
  let t =
    {
      sim;
      topo;
      dest;
      routers;
      links = Link_state.create ~n;
      messages = 0;
      last_change = 0.;
    }
  in
  Array.iter
    (fun u ->
      Array.iter
        (fun (v, _) ->
          let deliver msg =
            if Link_state.link_up t.links u v then
              receive t routers.(v) ~from:u msg
          in
          Hashtbl.replace routers.(u).chans v
            (Channel.create sim ~delay_lo ~delay_hi ~deliver);
          Hashtbl.replace routers.(u).mrai v
            (Mrai.create (Sim.rng sim) ~base:mrai_base ()))
        (Topology.neighbors topo u))
    (Topology.vertices topo);
  t

let start t = recompute t t.routers.(t.dest)

(* --- failures ------------------------------------------------------------ *)

let drop_session t u v =
  let clear r peer =
    Hashtbl.remove r.adj_rib_in peer;
    Hashtbl.remove r.rib_out peer;
    recompute t r
  in
  clear t.routers.(u) v;
  clear t.routers.(v) u

let fail_link ?(detect_delay = 0.) t u v =
  if Topology.rel t.topo u v = None then
    invalid_arg "Hybrid_net.fail_link: vertices not adjacent";
  if detect_delay < 0. then invalid_arg "Hybrid_net.fail_link: negative delay";
  Link_state.fail_link t.links u v;
  if detect_delay = 0. then drop_session t u v
  else Sim.schedule t.sim ~delay:detect_delay (fun _ -> drop_session t u v)

let recover_link t u v =
  if Topology.rel t.topo u v = None then
    invalid_arg "Hybrid_net.recover_link: vertices not adjacent";
  Link_state.recover_link t.links u v;
  let clear r peer =
    Hashtbl.remove r.adj_rib_in peer;
    Hashtbl.remove r.rib_out peer
  in
  clear t.routers.(u) v;
  clear t.routers.(v) u;
  (* session re-establishes: each side advertises its current best *)
  advertise_to t t.routers.(u) v;
  advertise_to t t.routers.(v) u

(* --- observation ----------------------------------------------------------- *)

let best t v = t.routers.(v).best
let backup t v = t.routers.(v).backup

let has_disjoint_backup t v =
  match (t.routers.(v).best, t.routers.(v).backup) with
  | Some b, Some a ->
    Valley.downhill_disjoint t.topo (v :: b.Route.as_path) (v :: a.Route.as_path)
  | _ -> false

(* packet states: false = primary (never re-coloured), true = switched *)
let walk_all t =
  let usable v (route : Route.t option) =
    match route with
    | Some r -> begin
      match Route.learned_from r with
      | Some nh when Link_state.link_up t.links v nh -> Some nh
      | Some _ | None -> None
    end
    | None -> None
  in
  let step v switched =
    if not (Link_state.node_up t.links v) then `Drop
    else begin
      let r = t.routers.(v) in
      if not switched then
        match usable v r.best with
        | Some nh -> `Forward (nh, false)
        | None -> begin
          (* primary missing or physically broken: an upgraded AS
             re-colours the packet onto its blue table *)
          match (r.upgraded, usable v r.backup) with
          | true, Some nh -> `Forward (nh, true)
          | (true | false), _ -> `Drop
        end
      else
        (* a re-coloured packet follows best routes from here on: the
           backup was an advertised route of the deflection neighbour, so
           its hops are exactly the downstream best chain. Following other
           ASes' backups instead would compose unrelated local picks (two
           neighbouring backups can point at each other). One deflection
           per packet, as in Section 5. *)
        match usable v r.best with
        | Some nh -> `Forward (nh, true)
        | None -> `Drop
    end
  in
  Fwd_walk.walk_all
    ~n:(Topology.num_vertices t.topo)
    ~dest:t.dest
    ~start:(fun _ -> false)
    ~step
    ~state_id:(fun sw -> Bool.to_int sw)
    ~num_states:2

let message_count t = t.messages
let last_change t = t.last_change
