type strategy = Random_choice | Intelligent of { samples : int }

type t = { orders : Topology.vertex array array }

let rec effective_origin topo v =
  match Array.length (Topology.providers topo v) with
  | 0 -> None
  | 1 -> effective_origin topo (Topology.providers topo v).(0)
  | _ -> Some v

(* Estimate, for the origin [m] and first hop [p], the probability that a
   random locked blue walk through [p] leaves a node-disjoint uphill path
   from [m] to another tier-1 AS. *)
let goodness st topo ~m ~p ~samples =
  let good = ref 0 in
  for _ = 1 to samples do
    let tail = Disjoint.random_uphill_path st topo ~src:p in
    let path = m :: tail in
    if Disjoint.exists_disjoint_uphill topo ~src:m path then incr good
  done;
  float_of_int !good /. float_of_int samples

let create strategy ~seed topo ~dest =
  let n = Topology.num_vertices topo in
  let orders =
    Array.init n (fun v ->
        let provs = Array.copy (Topology.providers topo v) in
        (* independent per-AS permutation, stable across runs *)
        let st = Random.State.make [| seed; v |] in
        Sample.shuffle st provs;
        provs)
  in
  (match strategy with
  | Random_choice -> ()
  | Intelligent { samples } -> begin
    match effective_origin topo dest with
    | None -> ()
    | Some m ->
      let st = Random.State.make [| seed; m; 1 |] in
      let scored =
        Array.map (fun p -> (goodness st topo ~m ~p ~samples, p)) orders.(m)
      in
      (* highest estimated goodness first; ties keep the random order *)
      let ranked = Array.copy scored in
      Array.stable_sort (fun (a, _) (b, _) -> compare b a) ranked;
      orders.(m) <- Array.map snd ranked
  end);
  { orders }

let preference t v = t.orders.(v)
