(** {!Hybrid_net} packed as a first-class {!Engine.S}. {!make} closes over
    the deployment predicate; the full-deployment instance is registered
    under ["STAMP-BGP hybrid (full deployment)"] so the conformance suite
    exercises the hybrid lifecycle alongside the four paper engines. *)

val full : (module Engine.S)

val make :
  ?name:string ->
  deployed:(Topology.vertex -> bool) ->
  unit ->
  (module Engine.S)
(** A hybrid engine at the given deployment (not registered). *)
