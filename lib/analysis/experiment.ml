type fig1_result = {
  cdf : Cdf.t;
  mean_random : float;
  mean_intelligent : float;
  frac_below_07 : float;
  frac_above_09 : float;
}

let fig1 ?(samples = 100) ?(intelligent_samples = 30) ?(seed = 1) topo =
  let st = Random.State.make [| seed |] in
  let phis = Phi.phi_all ~samples st topo in
  let st' = Random.State.make [| seed + 1 |] in
  let phis_intelligent =
    Phi.phi_all ~samples:intelligent_samples
      ~selection:Phi.Intelligent_selection st' topo
  in
  let values = Array.to_list phis in
  let cdf = Cdf.of_samples values in
  {
    cdf;
    mean_random = Cdf.mean cdf;
    mean_intelligent = Stat.mean (Array.to_list phis_intelligent);
    frac_below_07 = Cdf.fraction_at_most cdf 0.7;
    frac_above_09 = 1. -. Cdf.fraction_at_most cdf 0.9;
  }

(* --- parallel sweep plumbing ------------------------------------------- *)

(* Every sweep below is a flat list of independent jobs, each seeded as
   [seed + instance] exactly like the historical sequential loops, so the
   numbers are bit-identical whether they run inline ([pool] absent),
   on one worker, or on many. *)
let pmap ?pool f xs =
  match pool with
  | None -> List.map f xs
  | Some pool -> Parallel.map pool f xs

(* Split a flat job-result list back into consecutive groups of [k] —
   the inverse of the [List.concat_map] that built the job list. *)
let chunks k xs =
  let rec take k acc = function
    | rest when k = 0 -> (List.rev acc, rest)
    | [] -> invalid_arg "Experiment.chunks: ragged result list"
    | x :: tl -> take (k - 1) (x :: acc) tl
  in
  let rec go = function
    | [] -> []
    | xs ->
      let c, rest = take k [] xs in
      c :: go rest
  in
  go xs

type bars = (Runner.protocol * float) list

let avg_int instances counts =
  float_of_int (List.fold_left ( + ) 0 counts) /. float_of_int instances

let failure_bars ?pool ?(instances = 20) ?(seed = 1) ?(mrai_base = 30.)
    ?(interval = 0.02) ~scenario topo =
  let st = Random.State.make [| seed |] in
  let specs = List.init instances (fun i -> (i, scenario st topo)) in
  let jobs =
    List.concat_map
      (fun protocol -> List.map (fun (i, s) -> (protocol, i, s)) specs)
      Runner.all_protocols
  in
  let counts =
    pmap ?pool
      (fun (protocol, i, spec) ->
        (Runner.run ~seed:(seed + i) ~mrai_base ~interval protocol topo spec)
          .Runner.transient_count)
      jobs
  in
  List.map2
    (fun protocol cs -> (protocol, avg_int instances cs))
    Runner.all_protocols (chunks instances counts)

let failure_bars_stats ?pool ?(instances = 20) ?(seed = 1) ?(mrai_base = 30.)
    ?(interval = 0.02) ~scenario topo =
  let st = Random.State.make [| seed |] in
  let specs = List.init instances (fun i -> (i, scenario st topo)) in
  let jobs =
    List.concat_map
      (fun protocol -> List.map (fun (i, s) -> (protocol, i, s)) specs)
      Runner.all_protocols
  in
  let counts =
    pmap ?pool
      (fun (protocol, i, spec) ->
        float_of_int
          (Runner.run ~seed:(seed + i) ~mrai_base ~interval protocol topo spec)
            .Runner.transient_count)
      jobs
  in
  List.map2
    (fun protocol cs -> (protocol, Stat.summarize cs))
    Runner.all_protocols (chunks instances counts)

let engine_bars ?pool ?(instances = 20) ?(seed = 1) ?(mrai_base = 30.)
    ?(interval = 0.02) ?engines ~scenario topo =
  let engines =
    match engines with
    | Some es -> es
    | None -> List.map snd (Engine.Registry.all ())
  in
  let st = Random.State.make [| seed |] in
  let specs = List.init instances (fun i -> (i, scenario st topo)) in
  let jobs =
    List.concat_map
      (fun engine -> List.map (fun (i, s) -> (engine, i, s)) specs)
      engines
  in
  let counts =
    pmap ?pool
      (fun (engine, i, spec) ->
        (Runner.run_engine ~seed:(seed + i) ~mrai_base ~interval engine topo
           spec)
          .Runner.transient_count)
      jobs
  in
  List.map2
    (fun engine cs ->
      let (module E : Engine.S) = engine in
      (E.name, avg_int instances cs))
    engines (chunks instances counts)

type overhead_result = {
  protocol : Runner.protocol;
  avg_messages_initial : float;
  avg_messages_event : float;
  avg_delay : float;
  avg_recovery : float;
}

let overhead_and_delay ?pool ?(instances = 20) ?(seed = 1) ?(mrai_base = 30.)
    ?(interval = 0.02) topo =
  let st = Random.State.make [| seed |] in
  let specs = List.init instances (fun i -> (i, Scenario.single_link st topo)) in
  let jobs =
    List.concat_map
      (fun protocol -> List.map (fun (i, s) -> (protocol, i, s)) specs)
      Runner.all_protocols
  in
  let results =
    pmap ?pool
      (fun (protocol, i, spec) ->
        Runner.run ~seed:(seed + i) ~mrai_base ~interval protocol topo spec)
      jobs
  in
  List.map2
    (fun protocol results ->
      let favg f =
        Stat.mean (List.map (fun r -> float_of_int (f r)) results)
      in
      {
        protocol;
        avg_messages_initial = favg (fun r -> r.Runner.messages_initial);
        avg_messages_event = favg (fun r -> r.Runner.messages_event);
        avg_delay =
          Stat.mean (List.map (fun r -> r.Runner.convergence_delay) results);
        avg_recovery =
          Stat.mean (List.map (fun r -> r.Runner.recovery_delay) results);
      })
    Runner.all_protocols (chunks instances results)

let partial_deployment = Phi.partial_deployment_tier1

let single_link_specs ~instances ~seed topo =
  let st = Random.State.make [| seed |] in
  List.init instances (fun i -> (i, Scenario.single_link st topo))

let partial_deployment_dynamic ?pool ?(instances = 10) ?(seed = 1)
    ?(mrai_base = 30.) ~max_tier topo =
  let specs = single_link_specs ~instances ~seed topo in
  let tiers = Tiers.classify topo in
  let ks = List.init (max_tier + 1) Fun.id in
  let jobs =
    List.concat_map (fun k -> List.map (fun (i, s) -> (k, i, s)) specs) ks
  in
  let counts =
    pmap ?pool
      (fun (k, i, spec) ->
        (Runner.run_hybrid ~seed:(seed + i) ~mrai_base
           ~deployed:(fun v -> tiers.(v) <= k)
           topo spec)
          .Runner.transient_count)
      jobs
  in
  List.map2 (fun k cs -> (k, avg_int instances cs)) ks (chunks instances counts)

let ablation_mrai ?pool ?(instances = 10) ?(seed = 1) ~values topo =
  let specs = single_link_specs ~instances ~seed topo in
  let jobs =
    List.concat_map
      (fun mrai_base ->
        List.concat_map
          (fun protocol -> List.map (fun (i, s) -> (mrai_base, protocol, i, s)) specs)
          Runner.all_protocols)
      values
  in
  let results =
    pmap ?pool
      (fun (mrai_base, protocol, i, spec) ->
        Runner.run ~seed:(seed + i) ~mrai_base protocol topo spec)
      jobs
  in
  let n_protocols = List.length Runner.all_protocols in
  List.map2
    (fun mrai_base per_value ->
      let rows =
        List.map2
          (fun protocol results ->
            let avg f = Stat.mean (List.map f results) in
            ( protocol,
              avg (fun r -> float_of_int r.Runner.transient_count),
              avg (fun r -> r.Runner.convergence_delay) ))
          Runner.all_protocols (chunks instances per_value)
      in
      (mrai_base, rows))
    values
    (chunks (n_protocols * instances) results)

let ablation_stamp_variants ?pool ?(instances = 15) ?(seed = 1) topo =
  let specs = single_link_specs ~instances ~seed topo in
  let variants =
    [
      ( "baseline (lock-only blue, random colouring)",
        fun ~seed spec -> Runner.run_stamp ~seed topo spec );
      ( "spread unlocked blue to providers",
        fun ~seed spec ->
          Runner.run_stamp ~seed ~spread_unlocked_blue:true topo spec );
      ( "intelligent locked-blue colouring",
        fun ~seed spec ->
          Runner.run_stamp ~seed
            ~strategy:(Coloring.Intelligent { samples = 30 })
            topo spec );
    ]
  in
  let jobs =
    List.concat_map
      (fun (_, run) -> List.map (fun (i, s) -> (run, i, s)) specs)
      variants
  in
  let counts =
    pmap ?pool
      (fun (run, i, spec) -> (run ~seed:(seed + i) spec).Runner.transient_count)
      jobs
  in
  List.map2
    (fun (label, _) cs -> (label, avg_int instances cs))
    variants (chunks instances counts)

let ablation_probe_interval ?pool ?(instances = 10) ?(seed = 1) ~values topo =
  let specs = single_link_specs ~instances ~seed topo in
  let jobs =
    List.concat_map
      (fun interval -> List.map (fun (i, s) -> (interval, i, s)) specs)
      values
  in
  let counts =
    pmap ?pool
      (fun (interval, i, spec) ->
        (Runner.run ~seed:(seed + i) ~interval Runner.Bgp topo spec)
          .Runner.transient_count)
      jobs
  in
  List.map2
    (fun interval cs -> (interval, avg_int instances cs))
    values (chunks instances counts)

let ablation_detection ?pool ?(instances = 10) ?(seed = 1) ~values topo =
  let specs = single_link_specs ~instances ~seed topo in
  let jobs =
    List.concat_map
      (fun detect_delay ->
        List.concat_map
          (fun protocol ->
            List.map (fun (i, s) -> (detect_delay, protocol, i, s)) specs)
          Runner.all_protocols)
      values
  in
  let counts =
    pmap ?pool
      (fun (detect_delay, protocol, i, spec) ->
        (Runner.run ~seed:(seed + i) ~detect_delay protocol topo spec)
          .Runner.transient_count)
      jobs
  in
  let n_protocols = List.length Runner.all_protocols in
  List.map2
    (fun detect_delay per_value ->
      let bars =
        List.map2
          (fun protocol cs -> (protocol, avg_int instances cs))
          Runner.all_protocols (chunks instances per_value)
      in
      (detect_delay, bars))
    values
    (chunks (n_protocols * instances) counts)

let motivation_loss_composition ?pool ?(instances = 15) ?(seed = 1) topo =
  let specs = single_link_specs ~instances ~seed topo in
  let jobs =
    List.concat_map
      (fun protocol -> List.map (fun (i, s) -> (protocol, i, s)) specs)
      Runner.all_protocols
  in
  let summaries =
    pmap ?pool
      (fun (protocol, i, spec) ->
        Runner.run_traffic ~seed:(seed + i) protocol topo spec)
      jobs
  in
  List.map2
    (fun protocol summaries ->
      let total f = List.fold_left (fun acc s -> acc + f s) 0 summaries in
      let loss = total (fun s -> s.Traffic.loss_events)
      and loops = total (fun s -> s.Traffic.loop_events) in
      let share =
        if loss = 0 then nan else float_of_int loops /. float_of_int loss
      in
      (protocol, share))
    Runner.all_protocols (chunks instances summaries)

(* --- churn sweeps ------------------------------------------------------ *)

type churn_row = {
  row_protocol : Runner.protocol;
  instance : int;
  job_seed : int;
  outcome : (Runner.result, string) result;
}

type churn_summary = {
  protocol : Runner.protocol;
  completed : int;
  crashed : int;
  converged : int;
  event_budget_exhausted : int;
  time_budget_exhausted : int;
  avg_transients : float;
  avg_messages_event : float;
}

(* Like [pmap] but a crashing job becomes an [Error] row: churn workloads
   deliberately stress-test the engines, and one bad instance must not
   abort the sweep. *)
let ptry_map ?pool f xs =
  match pool with
  | None -> List.map (fun x -> match f x with v -> Ok v | exception e -> Error e) xs
  | Some pool -> Parallel.try_map pool f xs

let churn_sweep ?pool ?(instances = 10) ?(seed = 1) ?(mrai_base = 30.)
    ?(interval = 0.02) ?(budget = Runner.default_budget) ~scenario topo =
  let st = Random.State.make [| seed |] in
  let specs = List.init instances (fun i -> (i, scenario st topo)) in
  let jobs =
    List.concat_map
      (fun protocol -> List.map (fun (i, s) -> (protocol, i, s)) specs)
      Runner.all_protocols
  in
  let outcomes =
    ptry_map ?pool
      (fun (protocol, i, spec) ->
        Runner.run ~seed:(seed + i) ~mrai_base ~interval ~budget protocol topo
          spec)
      jobs
  in
  let rows =
    List.map2
      (fun (protocol, i, _) outcome ->
        {
          row_protocol = protocol;
          instance = i;
          job_seed = seed + i;
          outcome = Result.map_error Printexc.to_string outcome;
        })
      jobs outcomes
  in
  let summaries =
    List.map
      (fun protocol ->
        let mine = List.filter (fun r -> r.row_protocol = protocol) rows in
        let ok = List.filter_map (fun r -> Result.to_option r.outcome) mine in
        let count v =
          List.length
            (List.filter
               (fun (r : Runner.result) -> Sim.equal_verdict r.verdict v)
               ok)
        in
        let favg f =
          if ok = [] then nan else Stat.mean (List.map f ok)
        in
        {
          protocol;
          completed = List.length ok;
          crashed = List.length mine - List.length ok;
          converged = count Sim.Converged;
          event_budget_exhausted = count Sim.Event_budget_exhausted;
          time_budget_exhausted = count Sim.Time_budget_exhausted;
          avg_transients =
            favg (fun (r : Runner.result) ->
                float_of_int r.Runner.transient_count);
          avg_messages_event =
            favg (fun (r : Runner.result) ->
                float_of_int r.Runner.messages_event);
        })
      Runner.all_protocols
  in
  (rows, summaries)

let ablation_topology ?pool ?(instances = 8) ?(seed = 1) ~n () =
  let base = Topo_gen.default_params ~seed ~n () in
  let variants =
    [
      ("default", base);
      ( "sparse multi-homing",
        { base with Topo_gen.stub_extra_provider_prob = 0.15 } );
      ( "dense multi-homing",
        { base with Topo_gen.stub_extra_provider_prob = 0.7 } );
      ("no mid-tier peering", { base with Topo_gen.peers_per_mid = 0. });
      ("heavy peering", { base with Topo_gen.peers_per_mid = 5. });
    ]
  in
  List.map
    (fun (label, params) ->
      let topo = Topo_gen.generate params in
      ( label,
        failure_bars ?pool ~instances ~seed ~scenario:Scenario.single_link topo
      ))
    variants

(* --- tracing overhead --------------------------------------------------- *)

type trace_overhead_result = {
  baseline_s : float;
  null_s : float;
  memory_s : float;
  traced_events : int;
  identical : bool;
}

let trace_overhead ?(instances = 10) ?(seed = 1) ?(mrai_base = 30.)
    ?(interval = 0.02) topo =
  let specs = single_link_specs ~instances ~seed topo in
  let jobs =
    List.concat_map
      (fun protocol -> List.map (fun (i, s) -> (protocol, i, s)) specs)
      Runner.all_protocols
  in
  (* deliberately sequential, no [?pool]: memory sinks are single-domain
     mutable state, and the quantity of interest is relative per-core cost *)
  let pass run =
    let t0 = Sys.time () in
    let results = List.map run jobs in
    (Sys.time () -. t0, results)
  in
  (* the whole record minus the timeline (absent by construction on the
     baseline/null passes, present on the memory pass) *)
  let key (r : Runner.result) = { r with timeline = None } in
  let baseline_s, base =
    pass (fun (p, i, spec) ->
        Runner.run ~seed:(seed + i) ~mrai_base ~interval ~validate:`Off p topo
          spec)
  in
  let null_s, nulls =
    pass (fun (p, i, spec) ->
        Runner.run ~seed:(seed + i) ~mrai_base ~interval ~validate:`Off
          ~trace:Trace.null p topo spec)
  in
  let traced = ref 0 in
  let memory_s, mems =
    pass (fun (p, i, spec) ->
        let trace = Trace.memory () in
        let r =
          Runner.run ~seed:(seed + i) ~mrai_base ~interval ~validate:`Off
            ~trace p topo spec
        in
        traced := !traced + Trace.recorded trace;
        r)
  in
  let identical =
    List.for_all2 (fun a b -> key a = key b) base nulls
    && List.for_all2 (fun a b -> key a = key b) base mems
  in
  { baseline_s; null_s; memory_s; traced_events = !traced; identical }

let preflight ?pool ?(instances = 20) ?(seed = 1) ?mrai_base ?detect_delay
    ~scenario topo =
  let st = Random.State.make [| seed |] in
  let specs = List.init instances (fun _ -> scenario st topo) in
  let reports = Staticcheck.preflight ?pool ?mrai_base ?detect_delay topo specs in
  List.combine specs reports
