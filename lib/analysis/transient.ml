type outcome = {
  transient : bool array;
  final : Fwd_walk.status array;
  checkpoints : int;
  converged_at : float;
  last_status_change : float;
}

let transient_count o =
  Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 o.transient

(* Shared monitor core: drive the simulation in [interval]-sized slices,
   probing the forwarding plane after every slice in which events fired,
   until the queue drains or a budget runs out. Returns the verdict
   alongside the outcome; [run] keeps the historical raising behaviour on
   top of it. *)
let run_watched sim ~interval ~max_events ~max_vtime ~on_status ~probe =
  if interval <= 0. then invalid_arg "Transient.run: non-positive interval";
  let first = probe () in
  let n = Array.length first in
  let troubled = Array.make n false in
  let prev = ref first in
  let last_status_change = ref (Sim.now sim) in
  let note statuses =
    Array.iteri
      (fun v s ->
        if not (Fwd_walk.equal_status s Fwd_walk.Delivered) then
          troubled.(v) <- true)
      statuses;
    (* change detection: with an observer, report each AS whose status
       moved since the previous checkpoint (the exact per-AS deltas the
       aggregate below is computed from); without one, keep the historical
       short-circuiting comparison *)
    (match on_status with
    | None ->
      if not (Array.for_all2 Fwd_walk.equal_status statuses !prev) then
        last_status_change := Sim.now sim
    | Some f ->
      let any = ref false in
      Array.iteri
        (fun v s ->
          if not (Fwd_walk.equal_status s !prev.(v)) then begin
            any := true;
            f ~changed:true v s
          end)
        statuses;
      if !any then last_status_change := Sim.now sim);
    prev := statuses
  in
  (* baseline snapshot: every AS's status at the observation start, before
     any checkpoint — reported unchanged so observers can seed their state *)
  (match on_status with
  | Some f -> Array.iteri (fun v s -> f ~changed:false v s) first
  | None -> ());
  note first;
  let checkpoints = ref 1 in
  let events_budget = ref max_events in
  let verdict = ref Sim.Converged in
  while Sim.pending sim > 0 && !verdict = Sim.Converged do
    if Sim.now sim >= max_vtime then verdict := Sim.Time_budget_exhausted
    else begin
      let upto = Float.min (Sim.now sim +. interval) max_vtime in
      let before = Sim.events_processed sim in
      Sim.run ~until:upto ~max_events:(max 0 !events_budget) sim;
      let processed = Sim.events_processed sim - before in
      events_budget := !events_budget - processed;
      if !events_budget <= 0 && Sim.pending sim > 0 then
        verdict := Sim.Event_budget_exhausted
      else if processed > 0 && Sim.pending sim > 0 then begin
        (* nothing happened, nothing changed: skip the redundant probe *)
        note (probe ());
        incr checkpoints
      end
    end
  done;
  let final = probe () in
  incr checkpoints;
  (* the final probe is not a [note]d checkpoint (it never moves
     [last_status_change] or the troubled set — historical semantics);
     report its deltas as unchanged corrections so observers still see the
     end state of every AS *)
  (match on_status with
  | Some f ->
    Array.iteri
      (fun v s ->
        if not (Fwd_walk.equal_status s !prev.(v)) then f ~changed:false v s)
      final
  | None -> ());
  let transient =
    Array.mapi
      (fun v bad -> bad && Fwd_walk.equal_status final.(v) Fwd_walk.Delivered)
      troubled
  in
  ( {
      transient;
      final;
      checkpoints = !checkpoints;
      converged_at = Sim.now sim;
      last_status_change = !last_status_change;
    },
    !verdict )

let run_guarded sim ?(interval = 0.02) ?(max_events = 50_000_000)
    ?(max_vtime = infinity) ?on_status ~probe () =
  run_watched sim ~interval ~max_events ~max_vtime ~on_status ~probe

let run sim ?(interval = 0.02) ?(max_events = 50_000_000) ~probe () =
  let outcome, verdict =
    run_watched sim ~interval ~max_events ~max_vtime:infinity ~on_status:None
      ~probe
  in
  match verdict with
  | Sim.Converged -> outcome
  | Sim.Event_budget_exhausted | Sim.Time_budget_exhausted ->
    failwith "Transient.run: event budget exceeded (non-convergence?)"
