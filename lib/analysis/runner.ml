type protocol = Bgp | Rbgp_no_rci | Rbgp | Stamp

let all_protocols = [ Bgp; Rbgp_no_rci; Rbgp; Stamp ]

let protocol_name = function
  | Bgp -> "BGP"
  | Rbgp_no_rci -> "R-BGP without RCI"
  | Rbgp -> "R-BGP"
  | Stamp -> "STAMP"

let engine_of_protocol : protocol -> (module Engine.S) = function
  | Bgp -> Bgp_engine.engine
  | Rbgp_no_rci -> Rbgp_engine.no_rci
  | Rbgp -> Rbgp_engine.rci
  | Stamp -> Stamp_engine.default

type budget = { max_events : int; max_vtime : float }

(* Generous enough that no paper workload ever hits it: the figure
   experiments converge within minutes of simulated time and well under a
   million events, so existing numbers are untouched — the budget exists to
   kill pathological instances, not to shape healthy ones. *)
let default_budget = { max_events = 50_000_000; max_vtime = 86_400. }

type result = {
  transient_count : int;
  broken_after : int;
  convergence_delay : float;
  recovery_delay : float;
  messages_initial : int;
  messages_event : int;
  checkpoints : int;
  counters : Counters.t;
  verdict : Sim.verdict;
  diagnostics : Diagnostic.t list;
  certificate : Staticcheck.certificate option;
  timeline : Timeline.t option;
}

(* Pre-run static analysis: scope the per-origin STAMP checks to the
   spec's destination (cheap), enforce the validation policy, and hand
   back what the result record carries. *)
let validate_spec ~validate ~mrai_base ~detect_delay topo spec =
  match validate with
  | `Off -> ([], None)
  | (`Warn | `Strict) as v ->
    let report = Staticcheck.analyze ~spec ~mrai_base ~detect_delay topo in
    Staticcheck.enforce ~what:"Runner scenario" v report;
    (report.Staticcheck.diagnostics, Some report.Staticcheck.certificate)

(* Where a scenario event lives in the trace, ASN space. *)
let rec event_loc topo = function
  | Scenario.Fail_link (u, v)
  | Scenario.Recover_link (u, v)
  | Scenario.Deny_export (u, v)
  | Scenario.Allow_export (u, v) ->
    Trace.Link (Topology.asn topo u, Topology.asn topo v)
  | Scenario.Fail_node v | Scenario.Recover_node v ->
    Trace.Node (Topology.asn topo v)
  | Scenario.At (_, e) -> event_loc topo e

(* Apply one scenario event through the packed engine; [At] defers the inner
   event on the simulation clock, so churn streams interleave with the
   protocol's own reaction. An engine refusing an event kind surfaces as a
   clear [Invalid_argument] naming the engine and the kind. Concrete events
   are traced at their application instant (a deferred event when its timer
   fires), before the engine's reaction. *)
let rec inject ~trace topo (net : Engine.instance) sim event =
  let apply f =
    try f ()
    with Engine.Unsupported { engine; what } ->
      invalid_arg
        (Printf.sprintf "Runner: the %s engine does not support %s events"
           engine what)
  in
  (match event with
  | Scenario.At _ -> ()
  | e ->
    if Trace.enabled trace then
      Trace.emit trace ~vtime:(Sim.now sim) ~engine:(Engine.name net)
        ~loc:(event_loc topo e)
        (Trace.Scenario_event
           (Format.asprintf "%a" (Scenario.pp_event topo) e)));
  match event with
  | Scenario.Fail_link (u, v) -> apply (fun () -> Engine.fail_link net u v)
  | Scenario.Fail_node v -> apply (fun () -> Engine.fail_node net v)
  | Scenario.Deny_export (u, v) -> apply (fun () -> Engine.deny_export net u v)
  | Scenario.Recover_link (u, v) ->
    apply (fun () -> Engine.recover_link net u v)
  | Scenario.Recover_node v -> apply (fun () -> Engine.recover_node net v)
  | Scenario.Allow_export (u, v) ->
    apply (fun () -> Engine.allow_export net u v)
  | Scenario.At (dt, e) ->
    Sim.schedule sim ~delay:dt (fun _ -> inject ~trace topo net sim e)

let status_string = function
  | Fwd_walk.Delivered -> "delivered"
  | Fwd_walk.Looped -> "looped"
  | Fwd_walk.Blackholed -> "blackholed"

let measure ~interval ~budget ~trace topo (spec : Scenario.spec) sim net =
  let engine_id = Engine.name net in
  let phase name =
    if Trace.enabled trace then
      Trace.emit trace ~vtime:(Sim.now sim) ~engine:engine_id ~loc:Trace.Net
        (Trace.Phase name)
  in
  let timeline () =
    if Trace.readable trace then Some (Timeline.of_events (Trace.events trace))
    else None
  in
  phase "start";
  Engine.start net;
  let initial_verdict =
    Sim.run_guarded sim ~until:budget.max_vtime ~max_events:budget.max_events
  in
  let messages_initial = Engine.message_count net in
  let event_time = Sim.now sim in
  match initial_verdict with
  | Sim.Event_budget_exhausted | Sim.Time_budget_exhausted ->
    (* initial convergence never finished: report what we can see and let
       the verdict flag the row — the sweep goes on *)
    let final = Engine.probe net in
    let broken =
      Array.fold_left
        (fun acc s ->
          if Fwd_walk.equal_status s Fwd_walk.Delivered then acc else acc + 1)
        0 final
    in
    phase "final";
    {
      transient_count = 0;
      broken_after = broken;
      convergence_delay = 0.;
      recovery_delay = 0.;
      messages_initial;
      messages_event = 0;
      checkpoints = 1;
      counters = Counters.snapshot (Engine.counters net);
      verdict = initial_verdict;
      diagnostics = [];
      certificate = None;
      timeline = timeline ();
    }
  | Sim.Converged ->
    phase "initial-converged";
    List.iter (inject ~trace topo net sim) spec.events;
    phase "events-injected";
    let on_status =
      if Trace.enabled trace then
        Some
          (fun ~changed v s ->
            Trace.emit trace ~vtime:(Sim.now sim) ~engine:engine_id
              ~loc:(Trace.Node (Topology.asn topo v))
              (Trace.Status { status = status_string s; changed }))
      else None
    in
    let remaining_events = budget.max_events - Sim.events_processed sim in
    let outcome, verdict =
      Transient.run_guarded sim ~interval ~max_events:(max 1 remaining_events)
        ~max_vtime:(event_time +. budget.max_vtime)
        ?on_status
        ~probe:(fun () -> Engine.probe net)
        ()
    in
    phase "final";
    let broken_after =
      Array.fold_left
        (fun acc s ->
          if Fwd_walk.equal_status s Fwd_walk.Delivered then acc else acc + 1)
        0 outcome.final
    in
    {
      transient_count = Transient.transient_count outcome;
      broken_after;
      convergence_delay = Float.max 0. (Engine.last_change net -. event_time);
      recovery_delay = Float.max 0. (outcome.last_status_change -. event_time);
      messages_initial;
      messages_event = Engine.message_count net - messages_initial;
      checkpoints = outcome.checkpoints;
      counters = Counters.snapshot (Engine.counters net);
      verdict;
      diagnostics = [];
      certificate = None;
      timeline = timeline ();
    }

let run_engine ?(seed = 0) ?(mrai_base = 30.) ?(interval = 0.02)
    ?(detect_delay = 0.) ?(budget = default_budget) ?(validate = `Warn)
    ?(trace = Trace.null) engine topo (spec : Scenario.spec) =
  let detect_delay =
    match spec.detect_delay with Some d -> d | None -> detect_delay
  in
  let diagnostics, certificate =
    validate_spec ~validate ~mrai_base ~detect_delay topo spec
  in
  let sim = Sim.create ~seed () in
  let config =
    { Engine.default_config with seed; mrai_base; detect_delay; trace }
  in
  let net = Engine.create engine sim topo ~dest:spec.dest config in
  {
    (measure ~interval ~budget ~trace topo spec sim net) with
    diagnostics;
    certificate;
  }

let run ?seed ?mrai_base ?interval ?detect_delay ?budget ?validate ?trace
    protocol topo spec =
  run_engine ?seed ?mrai_base ?interval ?detect_delay ?budget ?validate ?trace
    (engine_of_protocol protocol) topo spec

let run_stamp ?seed ?mrai_base ?interval ?detect_delay
    ?(spread_unlocked_blue = false) ?(strategy = Coloring.Random_choice)
    ?budget ?validate ?trace topo spec =
  run_engine ?seed ?mrai_base ?interval ?detect_delay ?budget ?validate ?trace
    (Stamp_engine.make ~spread_unlocked_blue ~strategy ())
    topo spec

let run_hybrid ?seed ?mrai_base ?interval ?detect_delay ?budget ?validate
    ?trace ~deployed topo spec =
  run_engine ?seed ?mrai_base ?interval ?detect_delay ?budget ?validate ?trace
    (Hybrid_engine.make ~deployed ())
    topo spec

let run_traffic ?(seed = 0) ?(mrai_base = 30.) ?(interval = 0.02)
    ?(detect_delay = 0.) ?(budget = default_budget) ?(validate = `Warn)
    protocol topo (spec : Scenario.spec) =
  let detect_delay =
    match spec.detect_delay with Some d -> d | None -> detect_delay
  in
  let (_ : Diagnostic.t list * Staticcheck.certificate option) =
    validate_spec ~validate ~mrai_base ~detect_delay topo spec
  in
  let sim = Sim.create ~seed () in
  let config = { Engine.default_config with seed; mrai_base; detect_delay } in
  let net =
    Engine.create (engine_of_protocol protocol) sim topo ~dest:spec.dest config
  in
  Engine.start net;
  ignore
    (Sim.run_guarded sim ~until:budget.max_vtime ~max_events:budget.max_events);
  let event_time = Sim.now sim in
  List.iter (inject ~trace:Trace.null topo net sim) spec.events;
  let remaining_events = budget.max_events - Sim.events_processed sim in
  Traffic.observe sim ~interval
    ~max_events:(max 1 remaining_events)
    ~max_vtime:(event_time +. budget.max_vtime)
    ~probe:(fun () -> Engine.probe net)
    ()
