type protocol = Bgp | Rbgp_no_rci | Rbgp | Stamp

let all_protocols = [ Bgp; Rbgp_no_rci; Rbgp; Stamp ]

let protocol_name = function
  | Bgp -> "BGP"
  | Rbgp_no_rci -> "R-BGP without RCI"
  | Rbgp -> "R-BGP"
  | Stamp -> "STAMP"

type budget = { max_events : int; max_vtime : float }

(* Generous enough that no paper workload ever hits it: the figure
   experiments converge within minutes of simulated time and well under a
   million events, so existing numbers are untouched — the budget exists to
   kill pathological instances, not to shape healthy ones. *)
let default_budget = { max_events = 50_000_000; max_vtime = 86_400. }

type result = {
  transient_count : int;
  broken_after : int;
  convergence_delay : float;
  recovery_delay : float;
  messages_initial : int;
  messages_event : int;
  checkpoints : int;
  verdict : Sim.verdict;
}

(* The per-protocol operations the driver needs, bundled as a record of
   closures over the protocol's network value. *)
type driver = {
  start : unit -> unit;
  fail_link : Topology.vertex -> Topology.vertex -> unit;
  fail_node : Topology.vertex -> unit;
  deny_export : Topology.vertex -> Topology.vertex -> unit;
  recover_link : Topology.vertex -> Topology.vertex -> unit;
  recover_node : Topology.vertex -> unit;
  allow_export : Topology.vertex -> Topology.vertex -> unit;
  probe : unit -> Fwd_walk.status array;
  messages : unit -> int;
  last_change : unit -> float;
}

let make_driver ~seed ~mrai_base ?(detect_delay = 0.) protocol sim topo ~dest
    : driver =
  match protocol with
  | Bgp ->
    let net = Bgp_net.create sim topo ~dest ~mrai_base () in
    {
      start = (fun () -> Bgp_net.start net);
      fail_link = (fun u v -> Bgp_net.fail_link ~detect_delay net u v);
      fail_node = Bgp_net.fail_node net;
      deny_export = Bgp_net.deny_export net;
      recover_link = Bgp_net.recover_link net;
      recover_node = Bgp_net.recover_node net;
      allow_export = Bgp_net.allow_export net;
      probe = (fun () -> Bgp_net.walk_all net);
      messages = (fun () -> Bgp_net.message_count net);
      last_change = (fun () -> Bgp_net.last_change net);
    }
  | Rbgp_no_rci | Rbgp ->
    let rci = protocol = Rbgp in
    let net = Rbgp_net.create sim topo ~dest ~rci ~mrai_base () in
    {
      start = (fun () -> Rbgp_net.start net);
      fail_link = (fun u v -> Rbgp_net.fail_link ~detect_delay net u v);
      fail_node = Rbgp_net.fail_node net;
      deny_export = Rbgp_net.deny_export net;
      recover_link = Rbgp_net.recover_link net;
      recover_node = Rbgp_net.recover_node net;
      allow_export = Rbgp_net.allow_export net;
      probe = (fun () -> Rbgp_net.walk_all net);
      messages = (fun () -> Rbgp_net.message_count net);
      last_change = (fun () -> Rbgp_net.last_change net);
    }
  | Stamp ->
    let coloring = Coloring.create Coloring.Random_choice ~seed topo ~dest in
    let net = Stamp_net.create sim topo ~dest ~coloring ~mrai_base () in
    {
      start = (fun () -> Stamp_net.start net);
      fail_link = (fun u v -> Stamp_net.fail_link ~detect_delay net u v);
      fail_node = Stamp_net.fail_node net;
      deny_export = Stamp_net.deny_export net;
      recover_link = Stamp_net.recover_link net;
      recover_node = Stamp_net.recover_node net;
      allow_export = Stamp_net.allow_export net;
      probe = (fun () -> Stamp_net.walk_all net);
      messages = (fun () -> Stamp_net.message_count net);
      last_change = (fun () -> Stamp_net.last_change net);
    }

let make_stamp_driver ~seed ~mrai_base ?(detect_delay = 0.)
    ~spread_unlocked_blue ~strategy sim topo ~dest : driver =
  let coloring = Coloring.create strategy ~seed topo ~dest in
  let net =
    Stamp_net.create sim topo ~dest ~coloring ~mrai_base ~spread_unlocked_blue
      ()
  in
    {
      start = (fun () -> Stamp_net.start net);
      fail_link = (fun u v -> Stamp_net.fail_link ~detect_delay net u v);
      fail_node = Stamp_net.fail_node net;
      deny_export = Stamp_net.deny_export net;
      recover_link = Stamp_net.recover_link net;
      recover_node = Stamp_net.recover_node net;
      allow_export = Stamp_net.allow_export net;
      probe = (fun () -> Stamp_net.walk_all net);
      messages = (fun () -> Stamp_net.message_count net);
      last_change = (fun () -> Stamp_net.last_change net);
    }

(* Apply one scenario event through the driver; [At] defers the inner event
   on the simulation clock, so churn streams interleave with the
   protocol's own reaction. *)
let rec inject (d : driver) sim = function
  | Scenario.Fail_link (u, v) -> d.fail_link u v
  | Scenario.Fail_node v -> d.fail_node v
  | Scenario.Deny_export (u, v) -> d.deny_export u v
  | Scenario.Recover_link (u, v) -> d.recover_link u v
  | Scenario.Recover_node v -> d.recover_node v
  | Scenario.Allow_export (u, v) -> d.allow_export u v
  | Scenario.At (dt, e) -> Sim.schedule sim ~delay:dt (fun _ -> inject d sim e)

let measure ~interval ~budget (spec : Scenario.spec) sim (d : driver) =
  d.start ();
  let initial_verdict =
    Sim.run_guarded sim ~until:budget.max_vtime ~max_events:budget.max_events
  in
  let messages_initial = d.messages () in
  let event_time = Sim.now sim in
  match initial_verdict with
  | Sim.Event_budget_exhausted | Sim.Time_budget_exhausted ->
    (* initial convergence never finished: report what we can see and let
       the verdict flag the row — the sweep goes on *)
    let final = d.probe () in
    let broken =
      Array.fold_left
        (fun acc s ->
          if Fwd_walk.equal_status s Fwd_walk.Delivered then acc else acc + 1)
        0 final
    in
    {
      transient_count = 0;
      broken_after = broken;
      convergence_delay = 0.;
      recovery_delay = 0.;
      messages_initial;
      messages_event = 0;
      checkpoints = 1;
      verdict = initial_verdict;
    }
  | Sim.Converged ->
    List.iter (inject d sim) spec.events;
    let remaining_events = budget.max_events - Sim.events_processed sim in
    let outcome, verdict =
      Transient.run_guarded sim ~interval ~max_events:(max 1 remaining_events)
        ~max_vtime:(event_time +. budget.max_vtime)
        ~probe:d.probe ()
    in
    let broken_after =
      Array.fold_left
        (fun acc s ->
          if Fwd_walk.equal_status s Fwd_walk.Delivered then acc else acc + 1)
        0 outcome.final
    in
    {
      transient_count = Transient.transient_count outcome;
      broken_after;
      convergence_delay = Float.max 0. (d.last_change () -. event_time);
      recovery_delay = Float.max 0. (outcome.last_status_change -. event_time);
      messages_initial;
      messages_event = d.messages () - messages_initial;
      checkpoints = outcome.checkpoints;
      verdict;
    }

let run ?(seed = 0) ?(mrai_base = 30.) ?(interval = 0.02) ?(detect_delay = 0.)
    ?(budget = default_budget) protocol topo (spec : Scenario.spec) =
  let sim = Sim.create ~seed () in
  let d =
    make_driver ~seed ~mrai_base ~detect_delay protocol sim topo
      ~dest:spec.dest
  in
  measure ~interval ~budget spec sim d

let run_stamp ?(seed = 0) ?(mrai_base = 30.) ?(interval = 0.02)
    ?(spread_unlocked_blue = false) ?(strategy = Coloring.Random_choice)
    ?(budget = default_budget) topo (spec : Scenario.spec) =
  let sim = Sim.create ~seed () in
  let d =
    make_stamp_driver ~seed ~mrai_base ~spread_unlocked_blue ~strategy sim topo
      ~dest:spec.dest
  in
  measure ~interval ~budget spec sim d

(* The hybrid engine models link failure and recovery only (no node or
   policy machinery at legacy ASes). *)
let rec hybrid_supported = function
  | Scenario.Fail_link _ | Scenario.Recover_link _ -> true
  | Scenario.At (_, e) -> hybrid_supported e
  | Scenario.Fail_node _ | Scenario.Recover_node _ | Scenario.Deny_export _
  | Scenario.Allow_export _ ->
    false

let run_hybrid ?(seed = 0) ?(mrai_base = 30.) ?(interval = 0.02)
    ?(budget = default_budget) ~deployed topo (spec : Scenario.spec) =
  (* reject unsupported events before any simulation work runs, naming the
     offending scenario *)
  if not (List.for_all hybrid_supported spec.events) then
    invalid_arg
      (Format.asprintf
         "Runner.run_hybrid: unsupported event in scenario [%a] — only link \
          failure/recovery events are supported"
         (Scenario.pp_spec topo) spec);
  let sim = Sim.create ~seed () in
  let net =
    Hybrid_net.create sim topo ~dest:spec.dest ~deployed ~mrai_base ()
  in
  let d =
    {
      start = (fun () -> Hybrid_net.start net);
      fail_link = Hybrid_net.fail_link net;
      fail_node =
        (fun _ -> invalid_arg "Runner.run_hybrid: node failures unsupported");
      deny_export =
        (fun _ _ -> invalid_arg "Runner.run_hybrid: policy events unsupported");
      recover_link = Hybrid_net.recover_link net;
      recover_node =
        (fun _ -> invalid_arg "Runner.run_hybrid: node recovery unsupported");
      allow_export =
        (fun _ _ -> invalid_arg "Runner.run_hybrid: policy events unsupported");
      probe = (fun () -> Hybrid_net.walk_all net);
      messages = (fun () -> Hybrid_net.message_count net);
      last_change = (fun () -> Hybrid_net.last_change net);
    }
  in
  measure ~interval ~budget spec sim d

let run_traffic ?(seed = 0) ?(mrai_base = 30.) ?(interval = 0.02)
    ?(budget = default_budget) protocol topo (spec : Scenario.spec) =
  let sim = Sim.create ~seed () in
  let d = make_driver ~seed ~mrai_base protocol sim topo ~dest:spec.dest in
  d.start ();
  ignore
    (Sim.run_guarded sim ~until:budget.max_vtime ~max_events:budget.max_events);
  let event_time = Sim.now sim in
  List.iter (inject d sim) spec.events;
  let remaining_events = budget.max_events - Sim.events_processed sim in
  Traffic.observe sim ~interval
    ~max_events:(max 1 remaining_events)
    ~max_vtime:(event_time +. budget.max_vtime)
    ~probe:d.probe ()
