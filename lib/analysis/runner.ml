type protocol = Bgp | Rbgp_no_rci | Rbgp | Stamp

let all_protocols = [ Bgp; Rbgp_no_rci; Rbgp; Stamp ]

let protocol_name = function
  | Bgp -> "BGP"
  | Rbgp_no_rci -> "R-BGP without RCI"
  | Rbgp -> "R-BGP"
  | Stamp -> "STAMP"

let engine_of_protocol : protocol -> (module Engine.S) = function
  | Bgp -> Bgp_engine.engine
  | Rbgp_no_rci -> Rbgp_engine.no_rci
  | Rbgp -> Rbgp_engine.rci
  | Stamp -> Stamp_engine.default

type budget = { max_events : int; max_vtime : float }

(* Generous enough that no paper workload ever hits it: the figure
   experiments converge within minutes of simulated time and well under a
   million events, so existing numbers are untouched — the budget exists to
   kill pathological instances, not to shape healthy ones. *)
let default_budget = { max_events = 50_000_000; max_vtime = 86_400. }

type result = {
  transient_count : int;
  broken_after : int;
  convergence_delay : float;
  recovery_delay : float;
  messages_initial : int;
  messages_event : int;
  checkpoints : int;
  counters : Counters.t;
  verdict : Sim.verdict;
  diagnostics : Diagnostic.t list;
  certificate : Staticcheck.certificate option;
}

(* Pre-run static analysis: scope the per-origin STAMP checks to the
   spec's destination (cheap), enforce the validation policy, and hand
   back what the result record carries. *)
let validate_spec ~validate ~mrai_base ~detect_delay topo spec =
  match validate with
  | `Off -> ([], None)
  | (`Warn | `Strict) as v ->
    let report = Staticcheck.analyze ~spec ~mrai_base ~detect_delay topo in
    Staticcheck.enforce ~what:"Runner scenario" v report;
    (report.Staticcheck.diagnostics, Some report.Staticcheck.certificate)

(* Apply one scenario event through the packed engine; [At] defers the inner
   event on the simulation clock, so churn streams interleave with the
   protocol's own reaction. An engine refusing an event kind surfaces as a
   clear [Invalid_argument] naming the engine and the kind. *)
let rec inject (net : Engine.instance) sim event =
  let apply f =
    try f ()
    with Engine.Unsupported { engine; what } ->
      invalid_arg
        (Printf.sprintf "Runner: the %s engine does not support %s events"
           engine what)
  in
  match event with
  | Scenario.Fail_link (u, v) -> apply (fun () -> Engine.fail_link net u v)
  | Scenario.Fail_node v -> apply (fun () -> Engine.fail_node net v)
  | Scenario.Deny_export (u, v) -> apply (fun () -> Engine.deny_export net u v)
  | Scenario.Recover_link (u, v) ->
    apply (fun () -> Engine.recover_link net u v)
  | Scenario.Recover_node v -> apply (fun () -> Engine.recover_node net v)
  | Scenario.Allow_export (u, v) ->
    apply (fun () -> Engine.allow_export net u v)
  | Scenario.At (dt, e) ->
    Sim.schedule sim ~delay:dt (fun _ -> inject net sim e)

let measure ~interval ~budget (spec : Scenario.spec) sim net =
  Engine.start net;
  let initial_verdict =
    Sim.run_guarded sim ~until:budget.max_vtime ~max_events:budget.max_events
  in
  let messages_initial = Engine.message_count net in
  let event_time = Sim.now sim in
  match initial_verdict with
  | Sim.Event_budget_exhausted | Sim.Time_budget_exhausted ->
    (* initial convergence never finished: report what we can see and let
       the verdict flag the row — the sweep goes on *)
    let final = Engine.probe net in
    let broken =
      Array.fold_left
        (fun acc s ->
          if Fwd_walk.equal_status s Fwd_walk.Delivered then acc else acc + 1)
        0 final
    in
    {
      transient_count = 0;
      broken_after = broken;
      convergence_delay = 0.;
      recovery_delay = 0.;
      messages_initial;
      messages_event = 0;
      checkpoints = 1;
      counters = Counters.snapshot (Engine.counters net);
      verdict = initial_verdict;
      diagnostics = [];
      certificate = None;
    }
  | Sim.Converged ->
    List.iter (inject net sim) spec.events;
    let remaining_events = budget.max_events - Sim.events_processed sim in
    let outcome, verdict =
      Transient.run_guarded sim ~interval ~max_events:(max 1 remaining_events)
        ~max_vtime:(event_time +. budget.max_vtime)
        ~probe:(fun () -> Engine.probe net)
        ()
    in
    let broken_after =
      Array.fold_left
        (fun acc s ->
          if Fwd_walk.equal_status s Fwd_walk.Delivered then acc else acc + 1)
        0 outcome.final
    in
    {
      transient_count = Transient.transient_count outcome;
      broken_after;
      convergence_delay = Float.max 0. (Engine.last_change net -. event_time);
      recovery_delay = Float.max 0. (outcome.last_status_change -. event_time);
      messages_initial;
      messages_event = Engine.message_count net - messages_initial;
      checkpoints = outcome.checkpoints;
      counters = Counters.snapshot (Engine.counters net);
      verdict;
      diagnostics = [];
      certificate = None;
    }

let run_engine ?(seed = 0) ?(mrai_base = 30.) ?(interval = 0.02)
    ?(detect_delay = 0.) ?(budget = default_budget) ?(validate = `Warn) engine
    topo (spec : Scenario.spec) =
  let detect_delay =
    match spec.detect_delay with Some d -> d | None -> detect_delay
  in
  let diagnostics, certificate =
    validate_spec ~validate ~mrai_base ~detect_delay topo spec
  in
  let sim = Sim.create ~seed () in
  let config = { Engine.default_config with seed; mrai_base; detect_delay } in
  let net = Engine.create engine sim topo ~dest:spec.dest config in
  { (measure ~interval ~budget spec sim net) with diagnostics; certificate }

let run ?seed ?mrai_base ?interval ?detect_delay ?budget ?validate protocol
    topo spec =
  run_engine ?seed ?mrai_base ?interval ?detect_delay ?budget ?validate
    (engine_of_protocol protocol) topo spec

let run_stamp ?seed ?mrai_base ?interval ?detect_delay
    ?(spread_unlocked_blue = false) ?(strategy = Coloring.Random_choice)
    ?budget ?validate topo spec =
  run_engine ?seed ?mrai_base ?interval ?detect_delay ?budget ?validate
    (Stamp_engine.make ~spread_unlocked_blue ~strategy ())
    topo spec

let run_hybrid ?seed ?mrai_base ?interval ?detect_delay ?budget ?validate
    ~deployed topo spec =
  run_engine ?seed ?mrai_base ?interval ?detect_delay ?budget ?validate
    (Hybrid_engine.make ~deployed ())
    topo spec

let run_traffic ?(seed = 0) ?(mrai_base = 30.) ?(interval = 0.02)
    ?(detect_delay = 0.) ?(budget = default_budget) ?(validate = `Warn)
    protocol topo (spec : Scenario.spec) =
  let detect_delay =
    match spec.detect_delay with Some d -> d | None -> detect_delay
  in
  let (_ : Diagnostic.t list * Staticcheck.certificate option) =
    validate_spec ~validate ~mrai_base ~detect_delay topo spec
  in
  let sim = Sim.create ~seed () in
  let config = { Engine.default_config with seed; mrai_base; detect_delay } in
  let net =
    Engine.create (engine_of_protocol protocol) sim topo ~dest:spec.dest config
  in
  Engine.start net;
  ignore
    (Sim.run_guarded sim ~until:budget.max_vtime ~max_events:budget.max_events);
  let event_time = Sim.now sim in
  List.iter (inject net sim) spec.events;
  let remaining_events = budget.max_events - Sim.events_processed sim in
  Traffic.observe sim ~interval
    ~max_events:(max 1 remaining_events)
    ~max_vtime:(event_time +. budget.max_vtime)
    ~probe:(fun () -> Engine.probe net)
    ()
