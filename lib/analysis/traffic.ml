type bucket = {
  t_start : float;
  delivered : float;
  looped : float;
  blackholed : float;
}

type summary = {
  buckets : bucket list;
  loss_events : int;
  loop_events : int;
  verdict : Sim.verdict;
}

let loop_share s =
  if s.loss_events = 0 then nan
  else float_of_int s.loop_events /. float_of_int s.loss_events

type acc = {
  mutable probes : int;
  mutable delivered : int;
  mutable looped : int;
  mutable blackholed : int;
}

let observe sim ?(interval = 0.02) ?(bucket = 1.0) ?(max_events = 50_000_000)
    ?(max_vtime = infinity) ~probe () =
  if interval <= 0. || bucket <= 0. then
    invalid_arg "Traffic.observe: non-positive interval or bucket";
  let t0 = Sim.now sim in
  let table : (int, acc) Hashtbl.t = Hashtbl.create 64 in
  let loss_events = ref 0 in
  let loop_events = ref 0 in
  let note () =
    let idx = int_of_float ((Sim.now sim -. t0) /. bucket) in
    let acc =
      match Hashtbl.find_opt table idx with
      | Some a -> a
      | None ->
        let a = { probes = 0; delivered = 0; looped = 0; blackholed = 0 } in
        Hashtbl.replace table idx a;
        a
    in
    acc.probes <- acc.probes + 1;
    Array.iter
      (fun s ->
        match (s : Fwd_walk.status) with
        | Delivered -> acc.delivered <- acc.delivered + 1
        | Looped ->
          acc.looped <- acc.looped + 1;
          incr loss_events;
          incr loop_events
        | Blackholed ->
          acc.blackholed <- acc.blackholed + 1;
          incr loss_events)
      (probe ())
  in
  note ();
  let events_budget = ref max_events in
  let verdict = ref Sim.Converged in
  while Sim.pending sim > 0 && !verdict = Sim.Converged do
    if Sim.now sim >= max_vtime then verdict := Sim.Time_budget_exhausted
    else begin
      let upto = Float.min (Sim.now sim +. interval) max_vtime in
      let before = Sim.events_processed sim in
      Sim.run ~until:upto ~max_events:(max 0 !events_budget) sim;
      let processed = Sim.events_processed sim - before in
      events_budget := !events_budget - processed;
      if !events_budget <= 0 && Sim.pending sim > 0 then
        verdict := Sim.Event_budget_exhausted
      else if processed > 0 then note ()
    end
  done;
  note ();
  let buckets =
    Hashtbl.fold (fun idx acc l -> (idx, acc) :: l) table []
    |> List.sort compare
    |> List.map (fun (idx, a) ->
           let k = float_of_int (max 1 a.probes) in
           {
             t_start = float_of_int idx *. bucket;
             delivered = float_of_int a.delivered /. k;
             looped = float_of_int a.looped /. k;
             blackholed = float_of_int a.blackholed /. k;
           })
  in
  {
    buckets;
    loss_events = !loss_events;
    loop_events = !loop_events;
    verdict = !verdict;
  }
