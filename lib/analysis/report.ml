let paper_fig2 =
  [
    (Runner.Bgp, 6604.);
    (Runner.Rbgp_no_rci, 2097.);
    (Runner.Rbgp, 0.);
    (Runner.Stamp, 357.);
  ]

let paper_fig3a =
  [
    (Runner.Bgp, 10314.);
    (Runner.Rbgp_no_rci, 4242.);
    (Runner.Rbgp, 861.);
    (Runner.Stamp, 845.);
  ]

let paper_fig3b =
  [
    (Runner.Bgp, 12071.);
    (Runner.Rbgp_no_rci, 3803.);
    (Runner.Rbgp, 761.);
    (Runner.Stamp, 366.);
  ]

let pp_fig1 ppf (r : Experiment.fig1_result) =
  Format.fprintf ppf "@[<v>CDF of Phi_k (value, cumulative fraction):@,";
  List.iter
    (fun (x, f) -> Format.fprintf ppf "  %6.3f  %6.3f@," x f)
    (Cdf.points r.cdf);
  Format.fprintf ppf "@,%-42s %10s %10s@," "statistic" "measured" "paper";
  Format.fprintf ppf "%-42s %10.3f %10s@," "mean Phi (random selection)"
    r.mean_random "~0.92";
  Format.fprintf ppf "%-42s %10.3f %10s@," "mean Phi (intelligent selection)"
    r.mean_intelligent "~0.97";
  Format.fprintf ppf "%-42s %10.3f %10s@," "fraction of dests with Phi <= 0.7"
    r.frac_below_07 "< 0.10";
  Format.fprintf ppf "%-42s %10.3f %10s@]" "fraction of dests with Phi > 0.9"
    r.frac_above_09 "> 0.75"

let pp_bars ~paper ppf (bars : Experiment.bars) =
  let bgp_measured = List.assoc Runner.Bgp bars in
  let bgp_paper = List.assoc Runner.Bgp paper in
  Format.fprintf ppf "@[<v>%-20s %12s %8s %12s %8s@," "protocol" "measured"
    "(ratio)" "paper" "(ratio)";
  List.iter
    (fun (proto, avg) ->
      let ratio total v = if total > 0. then v /. total else 0. in
      let paper_v = List.assoc proto paper in
      Format.fprintf ppf "%-20s %12.1f %7.1f%% %12.0f %7.1f%%@,"
        (Runner.protocol_name proto)
        avg
        (100. *. ratio bgp_measured avg)
        paper_v
        (100. *. ratio bgp_paper paper_v))
    bars;
  Format.fprintf ppf "@]"

let pp_bars_plain ppf (bars : Experiment.bars) =
  let bgp = List.assoc Runner.Bgp bars in
  Format.fprintf ppf "@[<v>%-20s %12s %8s@," "protocol" "measured" "(ratio)";
  List.iter
    (fun (proto, avg) ->
      Format.fprintf ppf "%-20s %12.1f %7.1f%%@,"
        (Runner.protocol_name proto)
        avg
        (if bgp > 0. then 100. *. avg /. bgp else 0.))
    bars;
  Format.fprintf ppf "@]"

let pp_overhead ppf rows =
  let bgp =
    List.find
      (fun (r : Experiment.overhead_result) -> r.protocol = Runner.Bgp)
      rows
  in
  Format.fprintf ppf "@[<v>%-20s %14s %12s %12s %12s %12s@," "protocol"
    "msgs(initial)" "vs BGP" "msgs(event)" "quiesce(s)" "recover(s)";
  List.iter
    (fun (r : Experiment.overhead_result) ->
      Format.fprintf ppf "%-20s %14.1f %11.2fx %12.1f %12.2f %12.2f@,"
        (Runner.protocol_name r.protocol)
        r.avg_messages_initial
        (r.avg_messages_initial /. Float.max 1. bgp.Experiment.avg_messages_initial)
        r.avg_messages_event r.avg_delay r.avg_recovery)
    rows;
  Format.fprintf ppf
    "(paper, Section 6.3: STAMP < 2x BGP updates; STAMP's forwarding \
     recovers faster than BGP's)@]"

let pp_bars_stats ~paper ppf rows =
  let bgp_measured =
    match List.find_opt (fun (p, _) -> p = Runner.Bgp) rows with
    | Some (_, s) -> s.Stat.mean
    | None -> 0.
  in
  let bgp_paper = List.assoc Runner.Bgp paper in
  Format.fprintf ppf "@[<v>%-20s %10s %9s %8s %8s %10s %8s@," "protocol"
    "mean" "+/-sd" "worst" "(ratio)" "paper" "(ratio)";
  List.iter
    (fun (proto, (s : Stat.summary)) ->
      let ratio total v = if total > 0. then 100. *. v /. total else 0. in
      let paper_v = List.assoc proto paper in
      Format.fprintf ppf "%-20s %10.1f %9.1f %8.0f %7.1f%% %10.0f %7.1f%%@,"
        (Runner.protocol_name proto)
        s.Stat.mean s.Stat.stddev s.Stat.max
        (ratio bgp_measured s.Stat.mean)
        paper_v
        (ratio bgp_paper paper_v))
    rows;
  Format.fprintf ppf "@]"

(* JSON numbers must be finite; the few non-finite values we can produce
   (e.g. the nan share when a protocol loses no packets) become null. *)
let json_float x =
  if Float.is_finite x then Printf.sprintf "%.6g" x else "null"

let bars_stats_to_json rows =
  "["
  ^ String.concat ", "
      (List.map
         (fun (proto, (s : Stat.summary)) ->
           Printf.sprintf
             "{\"protocol\": %S, \"mean\": %s, \"stddev\": %s, \"median\": \
              %s, \"min\": %s, \"max\": %s}"
             (Runner.protocol_name proto)
             (json_float s.Stat.mean) (json_float s.Stat.stddev)
             (json_float s.Stat.median) (json_float s.Stat.min)
             (json_float s.Stat.max))
         rows)
  ^ "]"

let counters_to_json (c : Counters.t) =
  Printf.sprintf
    "{\"announcements\": %d, \"withdrawals\": %d, \"mrai_deferrals\": %d, \
     \"lost_to_resets\": %d}"
    c.Counters.announcements c.Counters.withdrawals c.Counters.mrai_deferrals
    c.Counters.lost_to_resets

let bars_to_json rows =
  "["
  ^ String.concat ", "
      (List.map
         (fun (proto, avg) ->
           Printf.sprintf "{\"protocol\": %S, \"mean\": %s}"
             (Runner.protocol_name proto) (json_float avg))
         rows)
  ^ "]"

let pp_churn ppf (summaries : Experiment.churn_summary list) =
  Format.fprintf ppf "@[<v>%-20s %10s %8s %10s %10s %10s %12s %12s@,"
    "protocol" "completed" "crashed" "converged" "ev-budget" "vt-budget"
    "transients" "msgs(event)";
  List.iter
    (fun (s : Experiment.churn_summary) ->
      Format.fprintf ppf "%-20s %10d %8d %10d %10d %10d %12.1f %12.1f@,"
        (Runner.protocol_name s.protocol)
        s.completed s.crashed s.converged s.event_budget_exhausted
        s.time_budget_exhausted s.avg_transients s.avg_messages_event)
    summaries;
  Format.fprintf ppf
    "(verdict tallies: ev-budget = event budget exhausted, vt-budget = \
     simulated-time budget exhausted)@]"

let churn_to_json (rows, summaries) =
  let row_json (r : Experiment.churn_row) =
    let outcome =
      match r.outcome with
      | Ok (res : Runner.result) ->
        Printf.sprintf
          "\"verdict\": %S, \"transient_count\": %d, \"broken_after\": %d, \
           \"messages_event\": %d, \"counters\": %s"
          (Sim.verdict_name res.verdict)
          res.transient_count res.broken_after res.messages_event
          (counters_to_json res.counters)
      | Error msg -> Printf.sprintf "\"error\": %S" msg
    in
    Printf.sprintf "{\"protocol\": %S, \"instance\": %d, \"seed\": %d, %s}"
      (Runner.protocol_name r.row_protocol)
      r.instance r.job_seed outcome
  in
  let summary_json (s : Experiment.churn_summary) =
    Printf.sprintf
      "{\"protocol\": %S, \"completed\": %d, \"crashed\": %d, \"converged\": \
       %d, \"event_budget_exhausted\": %d, \"time_budget_exhausted\": %d, \
       \"avg_transients\": %s, \"avg_messages_event\": %s}"
      (Runner.protocol_name s.protocol)
      s.completed s.crashed s.converged s.event_budget_exhausted
      s.time_budget_exhausted
      (json_float s.avg_transients)
      (json_float s.avg_messages_event)
  in
  Printf.sprintf "{\"rows\": [%s], \"summary\": [%s]}"
    (String.concat ", " (List.map row_json rows))
    (String.concat ", " (List.map summary_json summaries))

let bars_to_csv rows =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "protocol,mean,stddev,median,min,max\n";
  List.iter
    (fun (proto, (s : Stat.summary)) ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%.3f,%.3f,%.3f,%.3f,%.3f\n"
           (Runner.protocol_name proto)
           s.Stat.mean s.Stat.stddev s.Stat.median s.Stat.min s.Stat.max))
    rows;
  Buffer.contents buf
