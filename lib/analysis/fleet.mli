(** Any-to-any data plane: per-AS forwarding tables (FIBs) over real IPv4
    prefixes, built from the stable routing towards {e every} destination.

    Routing under Gao–Rexford policies is independent per prefix, so the
    converged state for all destinations is the per-destination
    {!Static_route} fixed point; this module assembles those into
    longest-prefix-match FIBs ({!Lpm}) and routes packets through them —
    the substrate for the packet-forwarding example and for any experiment
    needing full reachability. Each AS originates the /24 assigned by
    {!Prefix.of_asn}. *)

type t

val build :
  ?tables:(dest:Topology.vertex -> Static_route.table) ->
  ?validate:Staticcheck.validate ->
  Topology.t ->
  t
(** Compute the stable routing for every destination AS and assemble the
    FIBs. O(vertices × links) time, O(vertices²) space for the tables.
    [tables] overrides the per-destination route source — by default the
    {!Static_route} oracle, but any engine's converged tables (e.g.
    {!Bgp_net.to_table} after running to quiescence) can be plugged in, so
    the data plane is protocol-generic like the rest of the driver stack.
    [validate] (default [`Warn]) pre-flights the {e whole} topology with
    {!Staticcheck.analyze} — an any-to-any plane exercises every
    destination, so the per-origin checks sweep all ASes here.
    @raise Invalid_argument if some AS number exceeds 65535 (no prefix
    assignment), or under [`Strict] when the static analysis finds an
    error. *)

val topology : t -> Topology.t

val prefix_of : t -> Topology.vertex -> Prefix.t
(** The prefix an AS originates. *)

val origin_of : t -> int32 -> Topology.vertex option
(** The AS originating the longest matching prefix for an address. *)

val fib : t -> Topology.vertex -> Topology.vertex Lpm.t
(** The forwarding table of an AS: longest-prefix match to next-hop AS.
    The AS's own prefix is absent (delivery terminates there). *)

type trace = {
  hops : Topology.vertex list;  (** ASes traversed, source first *)
  outcome : [ `Delivered | `No_route ];
}

val route : t -> src:Topology.vertex -> int32 -> trace
(** Forward a packet hop by hop through the FIBs from [src] towards an
    address. On converged tables the walk always terminates (routes are
    loop-free). *)
