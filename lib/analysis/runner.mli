(** Uniform driver: run one (engine, scenario) pair to convergence and
    measure transient problems, convergence delay and message overhead.

    The runner is generic over {!Engine.S}: every entry point builds a
    packed {!Engine.instance} and drives it through one code path — the
    per-protocol convenience wrappers only choose which engine to pack.

    Every entry point is guarded by a {!budget}: no run can hang on a
    diverging or churn-saturated instance — it terminates with a
    non-{!Sim.Converged} verdict instead, and sweeps report the row with
    partial data. *)

type protocol = Bgp | Rbgp_no_rci | Rbgp | Stamp

val all_protocols : protocol list
(** In the paper's bar order: BGP, R-BGP without RCI, R-BGP, STAMP. *)

val protocol_name : protocol -> string

val engine_of_protocol : protocol -> (module Engine.S)
(** The registered engine behind each paper protocol. *)

type budget = {
  max_events : int;  (** whole-run cap on simulation events processed *)
  max_vtime : float;
      (** per-phase cap on simulated seconds: initial convergence may use
          this much virtual time, and reconvergence this much again after
          the event instant *)
}

val default_budget : budget
(** 50 million events and 86 400 simulated seconds (one virtual day) —
    far above anything the paper's workloads need, so results are
    unchanged for healthy instances; only pathological ones get killed. *)

type result = {
  transient_count : int;
      (** ASes with transient forwarding problems after the event *)
  broken_after : int;
      (** ASes without working delivery once converged (permanent loss) *)
  convergence_delay : float;
      (** seconds from event injection to the last routing change anywhere
          (control-plane quiescence) *)
  recovery_delay : float;
      (** seconds from event injection until the forwarding plane
          stabilised — the last instant any AS's delivery status changed.
          0 when forwarding was never disturbed (the reliability metric the
          paper's Section 6.3 delay claim is about) *)
  messages_initial : int;  (** updates sent during initial convergence *)
  messages_event : int;  (** updates sent while reconverging *)
  checkpoints : int;
  counters : Counters.t;
      (** whole-run update-traffic breakdown (announcements, withdrawals,
          MRAI deferrals, messages lost to session resets) — a snapshot, so
          it stays valid after the run. Its announcements + withdrawals
          always equal [messages_initial + messages_event]. *)
  verdict : Sim.verdict;
      (** {!Sim.Converged} when the run quiesced; otherwise which budget
          killed it — the other fields then describe the run up to the
          kill point (if initial convergence itself was killed, the
          event was never injected and the event-phase fields are zero) *)
  diagnostics : Diagnostic.t list;
      (** findings of the pre-run static analysis ([?validate]); empty
          under [`Off] *)
  certificate : Staticcheck.certificate option;
      (** the convergence certificate of the pre-run static analysis:
          [Some Convergence_certified] when the policy graph was verified
          dispute-wheel-free (the run {e must} quiesce,
          Griffin–Shepherd–Wilfong); [None] under [`Off] *)
  timeline : Timeline.t option;
      (** the convergence timeline reconstructed from the run's trace —
          [Some] iff [?trace] was a readable (memory) sink. Its aggregate
          fields equal the corresponding fields of this record (the
          differential test suite enforces this for every registered
          engine on converged runs). *)
}

val run_engine :
  ?seed:int ->
  ?mrai_base:float ->
  ?interval:float ->
  ?detect_delay:float ->
  ?budget:budget ->
  ?validate:Staticcheck.validate ->
  ?trace:Trace.sink ->
  (module Engine.S) ->
  Topology.t ->
  Scenario.spec ->
  result
(** The generic entry point: statically validate the (topology, scenario)
    pair, build the engine's network, converge, inject the scenario's
    events (immediate ones at the event instant, {!Scenario.At}-wrapped
    ones on the simulation clock), and monitor reconvergence with
    {!Transient.run_guarded} under [budget] (default {!default_budget}).

    [validate] (default [`Warn]) controls the pre-run static analysis
    ({!Staticcheck.analyze} scoped to the spec's destination): [`Warn]
    attaches the diagnostics and certificate to the result and logs
    error-severity findings; [`Strict] additionally raises
    [Invalid_argument] on them; [`Off] skips the analysis (result carries
    no diagnostics and no certificate).

    [detect_delay] (default 0) postpones the adjacent routers' reaction to
    link and node failures while the data plane is already broken; a
    [Scenario.spec.detect_delay] override wins over the argument.

    [trace] (default {!Trace.null}) receives the run's structured event
    stream: run-phase markers (["start"], ["initial-converged"],
    ["events-injected"], ["final"]), the scenario events at their
    application instants, the engine's session/decision events and the
    monitor's per-AS status changes. A readable (memory) sink additionally
    yields a reconstructed {!Timeline.t} in the result. With the null sink
    the run is bit-identical to an untraced one: tracing draws no
    randomness and schedules nothing.
    @raise Invalid_argument if the engine reports an event kind as
    {!Engine.Unsupported} (the message names the engine and the kind), or
    under [`Strict] when the static analysis finds an error. *)

val run :
  ?seed:int ->
  ?mrai_base:float ->
  ?interval:float ->
  ?detect_delay:float ->
  ?budget:budget ->
  ?validate:Staticcheck.validate ->
  ?trace:Trace.sink ->
  protocol ->
  Topology.t ->
  Scenario.spec ->
  result
(** {!run_engine} on {!engine_of_protocol}. STAMP uses
    {!Coloring.Random_choice} seeded from [seed]. *)

val run_stamp :
  ?seed:int ->
  ?mrai_base:float ->
  ?interval:float ->
  ?detect_delay:float ->
  ?spread_unlocked_blue:bool ->
  ?strategy:Coloring.strategy ->
  ?budget:budget ->
  ?validate:Staticcheck.validate ->
  ?trace:Trace.sink ->
  Topology.t ->
  Scenario.spec ->
  result
(** Like {!run} for STAMP, with the protocol-variant knobs exposed for the
    ablation benches: unlocked-blue spreading and the locked-blue-provider
    selection strategy. *)

val run_hybrid :
  ?seed:int ->
  ?mrai_base:float ->
  ?interval:float ->
  ?detect_delay:float ->
  ?budget:budget ->
  ?validate:Staticcheck.validate ->
  ?trace:Trace.sink ->
  deployed:(Topology.vertex -> bool) ->
  Topology.t ->
  Scenario.spec ->
  result
(** Like {!run} for {!Hybrid_net}: STAMP at the ASes satisfying
    [deployed], plain BGP elsewhere — the dynamic version of the paper's
    partial-deployment question. Supports the full event vocabulary (node
    failure/recovery and export policy included), like every other
    engine. *)

val run_traffic :
  ?seed:int ->
  ?mrai_base:float ->
  ?interval:float ->
  ?detect_delay:float ->
  ?budget:budget ->
  ?validate:Staticcheck.validate ->
  protocol ->
  Topology.t ->
  Scenario.spec ->
  Traffic.summary
(** Like {!run} but measure the packet-loss composition during
    reconvergence with {!Traffic.observe} instead of counting affected
    ASes — the paper's Section 1 motivation (loops vs blackholes). The
    summary's [verdict] reports how the observation ended. *)
