(** Uniform driver: run one (protocol, scenario) pair to convergence and
    measure transient problems, convergence delay and message overhead.

    Every entry point is guarded by a {!budget}: no run can hang on a
    diverging or churn-saturated instance — it terminates with a
    non-{!Sim.Converged} verdict instead, and sweeps report the row with
    partial data. *)

type protocol = Bgp | Rbgp_no_rci | Rbgp | Stamp

val all_protocols : protocol list
(** In the paper's bar order: BGP, R-BGP without RCI, R-BGP, STAMP. *)

val protocol_name : protocol -> string

type budget = {
  max_events : int;  (** whole-run cap on simulation events processed *)
  max_vtime : float;
      (** per-phase cap on simulated seconds: initial convergence may use
          this much virtual time, and reconvergence this much again after
          the event instant *)
}

val default_budget : budget
(** 50 million events and 86 400 simulated seconds (one virtual day) —
    far above anything the paper's workloads need, so results are
    unchanged for healthy instances; only pathological ones get killed. *)

type result = {
  transient_count : int;
      (** ASes with transient forwarding problems after the event *)
  broken_after : int;
      (** ASes without working delivery once converged (permanent loss) *)
  convergence_delay : float;
      (** seconds from event injection to the last routing change anywhere
          (control-plane quiescence) *)
  recovery_delay : float;
      (** seconds from event injection until the forwarding plane
          stabilised — the last instant any AS's delivery status changed.
          0 when forwarding was never disturbed (the reliability metric the
          paper's Section 6.3 delay claim is about) *)
  messages_initial : int;  (** updates sent during initial convergence *)
  messages_event : int;  (** updates sent while reconverging *)
  checkpoints : int;
  verdict : Sim.verdict;
      (** {!Sim.Converged} when the run quiesced; otherwise which budget
          killed it — the other fields then describe the run up to the
          kill point (if initial convergence itself was killed, the
          event was never injected and the event-phase fields are zero) *)
}

val run :
  ?seed:int ->
  ?mrai_base:float ->
  ?interval:float ->
  ?detect_delay:float ->
  ?budget:budget ->
  protocol ->
  Topology.t ->
  Scenario.spec ->
  result
(** Build the protocol's network, converge, inject the scenario's events
    (immediate ones at the event instant, {!Scenario.At}-wrapped ones on
    the simulation clock), and monitor reconvergence with
    {!Transient.run_guarded} under [budget] (default {!default_budget}).
    STAMP uses {!Coloring.Random_choice} seeded from [seed].
    [detect_delay] (default 0) postpones the adjacent routers' reaction to
    link failures while the data plane is already broken. *)

val run_stamp :
  ?seed:int ->
  ?mrai_base:float ->
  ?interval:float ->
  ?spread_unlocked_blue:bool ->
  ?strategy:Coloring.strategy ->
  ?budget:budget ->
  Topology.t ->
  Scenario.spec ->
  result
(** Like {!run} for STAMP, with the protocol-variant knobs exposed for the
    ablation benches: unlocked-blue spreading and the locked-blue-provider
    selection strategy. *)

val run_hybrid :
  ?seed:int ->
  ?mrai_base:float ->
  ?interval:float ->
  ?budget:budget ->
  deployed:(Topology.vertex -> bool) ->
  Topology.t ->
  Scenario.spec ->
  result
(** Like {!run} for {!Hybrid_net}: STAMP at the ASes satisfying
    [deployed], plain BGP elsewhere — the dynamic version of the paper's
    partial-deployment question. Only link failure/recovery events
    (possibly {!Scenario.At}-wrapped) are supported.
    @raise Invalid_argument before any simulation work if the scenario
    contains any other event; the message names the scenario. *)

val run_traffic :
  ?seed:int ->
  ?mrai_base:float ->
  ?interval:float ->
  ?budget:budget ->
  protocol ->
  Topology.t ->
  Scenario.spec ->
  Traffic.summary
(** Like {!run} but measure the packet-loss composition during
    reconvergence with {!Traffic.observe} instead of counting affected
    ASes — the paper's Section 1 motivation (loops vs blackholes). The
    summary's [verdict] reports how the observation ended. *)
