(** Packet-loss composition during convergence — the paper's motivation
    (Section 1 cites measurements that transient loops account for up to
    90 % of packet losses during BGP convergence).

    While a protocol reconverges after an event, this module samples the
    fate of packets injected from every AS at fine virtual-time intervals
    and aggregates, per time bucket, how many source ASes could deliver
    and how many lost packets to loops vs. blackholes. *)

type bucket = {
  t_start : float;  (** bucket start, seconds after the event *)
  delivered : float;  (** average ASes whose packets were delivered *)
  looped : float;  (** average ASes whose packets looped *)
  blackholed : float;  (** average ASes whose packets were dropped *)
}

type summary = {
  buckets : bucket list;
  loss_events : int;  (** probe observations that lost packets *)
  loop_events : int;  (** of which loops *)
  verdict : Sim.verdict;
      (** how the observation ended: {!Sim.Converged} when the queue
          drained, otherwise which budget killed the run *)
}

val loop_share : summary -> float
(** Fraction of loss observations that were loops ([nan] when no losses
    were observed). *)

val observe :
  Sim.t ->
  ?interval:float ->
  ?bucket:float ->
  ?max_events:int ->
  ?max_vtime:float ->
  probe:(unit -> Fwd_walk.status array) ->
  unit ->
  summary
(** Drive the simulation to convergence like {!Transient.run}, probing
    every [interval] (default 0.02 s) and aggregating the per-AS statuses
    into buckets of [bucket] seconds (default 1 s). [max_events] (default
    50 million) and [max_vtime] (default unbounded) bound the loop; when a
    budget hits, the partial summary is returned with the matching
    {!Sim.verdict}. *)
