(** Rendering of experiment results as the rows/series the paper reports,
    with the paper's own numbers alongside for comparison. *)

val pp_fig1 : Format.formatter -> Experiment.fig1_result -> unit
(** The Figure 1 CDF as a value/fraction series plus the headline
    statistics (mean Φ random vs intelligent, tail fractions), each next to
    the paper's value. *)

val pp_bars :
  paper:(Runner.protocol * float) list ->
  Format.formatter ->
  Experiment.bars ->
  unit
(** A Figure 2/3-style bar group: one row per protocol with the measured
    average count and the paper's count. *)

val pp_bars_plain : Format.formatter -> Experiment.bars -> unit
(** A bar group without a paper column (for workloads the paper describes
    but does not plot, e.g. pure policy-change events). *)

val pp_bars_stats :
  paper:(Runner.protocol * float) list ->
  Format.formatter ->
  (Runner.protocol * Stat.summary) list ->
  unit
(** Like {!pp_bars} with the spread across instances (± population standard
    deviation and the worst instance). *)

val pp_overhead : Format.formatter -> Experiment.overhead_result list -> unit
(** Section 6.3 message-overhead and convergence-delay table. *)

val pp_churn : Format.formatter -> Experiment.churn_summary list -> unit
(** Per-protocol churn-sweep table: completed/crashed counts, verdict
    tallies and the averaged metrics over completed instances. *)

val counters_to_json : Counters.t -> string
(** One engine's update-traffic counters as a JSON object
    ([announcements/withdrawals/mrai_deferrals/lost_to_resets]). *)

val churn_to_json :
  Experiment.churn_row list * Experiment.churn_summary list -> string
(** The full churn sweep as one JSON object: per-instance rows (protocol,
    instance, seed, verdict + counters, or error) and the per-protocol summary with
    verdict tallies. *)

val bars_to_csv : (Runner.protocol * Stat.summary) list -> string
(** The same rows as CSV ([protocol,mean,stddev,median,min,max]) for
    downstream plotting. *)

val bars_stats_to_json : (Runner.protocol * Stat.summary) list -> string
(** The same rows as a JSON array of per-protocol objects
    ([protocol/mean/stddev/median/min/max]) — the per-bar payload of the
    bench harness's [--json] output. Non-finite values render as
    [null]. *)

val bars_to_json : Experiment.bars -> string
(** A plain bar group ([protocol/mean]) as a JSON array. *)

val paper_fig2 : (Runner.protocol * float) list
(** The paper's Figure 2 values (ASes with transient problems, single link
    failure): BGP 6604, R-BGP-no-RCI 2097, R-BGP 0, STAMP 357. *)

val paper_fig3a : (Runner.protocol * float) list
(** Figure 3(a): 10314 / 4242 / 861 / 845. *)

val paper_fig3b : (Runner.protocol * float) list
(** Figure 3(b): 12071 / 3803 / 761 / 366. *)
