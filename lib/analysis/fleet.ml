type t = {
  topo : Topology.t;
  prefixes : Prefix.t array; (* by vertex *)
  fibs : Topology.vertex Lpm.t array; (* by vertex *)
  origins : Topology.vertex Lpm.t; (* prefix -> originating vertex *)
}

let build ?tables ?(validate = `Warn) topo =
  (* an any-to-any data plane exercises every destination, so pre-flight
     the whole topology (no spec: the per-origin checks sweep all ASes) *)
  (match validate with
  | `Off -> ()
  | (`Warn | `Strict) as v ->
    Staticcheck.enforce ~what:"Fleet topology" v (Staticcheck.analyze topo));
  let n = Topology.num_vertices topo in
  let tables =
    match tables with
    | Some f -> f
    | None -> fun ~dest -> Static_route.compute topo ~dest
  in
  let prefixes =
    Array.init n (fun v -> Prefix.of_asn (Topology.asn topo v))
  in
  let origins =
    Lpm.of_list (List.init n (fun v -> (prefixes.(v), v)))
  in
  let fibs = Array.make n Lpm.empty in
  for dest = 0 to n - 1 do
    let table = tables ~dest in
    for v = 0 to n - 1 do
      if v <> dest then
        match Static_route.next_hop table v with
        | Some nh -> fibs.(v) <- Lpm.add prefixes.(dest) nh fibs.(v)
        | None -> ()
    done
  done;
  { topo; prefixes; fibs; origins }

let topology t = t.topo
let prefix_of t v = t.prefixes.(v)
let origin_of t addr = Option.map snd (Lpm.lookup t.origins addr)
let fib t v = t.fibs.(v)

type trace = {
  hops : Topology.vertex list;
  outcome : [ `Delivered | `No_route ];
}

let route t ~src addr =
  let n = Topology.num_vertices t.topo in
  let rec go v acc hops =
    if Prefix.mem t.prefixes.(v) addr then
      { hops = List.rev (v :: acc); outcome = `Delivered }
    else if hops > n then
      (* cannot happen on converged loop-free tables; guards the walk *)
      { hops = List.rev (v :: acc); outcome = `No_route }
    else
      match Lpm.lookup t.fibs.(v) addr with
      | Some (_, nh) -> go nh (v :: acc) (hops + 1)
      | None -> { hops = List.rev (v :: acc); outcome = `No_route }
  in
  go src [] 0
