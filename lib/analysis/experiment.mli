(** Paper-level experiments: one function per table/figure of Section 6.
    Each returns a structured result; {!Report} renders them as the rows
    and series the paper plots.

    Every sweep over (protocol, scenario-instance) pairs accepts an
    optional {!Parallel.t} pool and distributes its independent
    [Runner.run] jobs over it. Determinism contract: each job derives all
    randomness from its own explicit seed ([seed + instance], exactly as
    the sequential loops always did), so for fixed seeds the returned
    numbers are {e bit-identical} whether [pool] is absent, has one
    worker, or has many. *)

type fig1_result = {
  cdf : Cdf.t;  (** the Figure 1 CDF of Φk over all destinations *)
  mean_random : float;  (** paper: ≈ 0.92 *)
  mean_intelligent : float;  (** paper: ≈ 0.97 (§6.1, intelligent selection) *)
  frac_below_07 : float;  (** paper: < 0.10 of destinations have Φ ≤ 0.7 *)
  frac_above_09 : float;  (** paper: > 0.75 of destinations have Φ > 0.9 *)
}

val fig1 :
  ?samples:int -> ?intelligent_samples:int -> ?seed:int -> Topology.t ->
  fig1_result
(** Monte-Carlo Φ for every destination ([samples] walks each, default
    100); intelligent selection re-estimated with [intelligent_samples]
    walks per candidate provider (default 30). *)

type bars = (Runner.protocol * float) list
(** Average ASes-with-transient-problems per protocol — one bar group of
    Figure 2/3. *)

val failure_bars :
  ?pool:Parallel.t ->
  ?instances:int ->
  ?seed:int ->
  ?mrai_base:float ->
  ?interval:float ->
  scenario:(Random.State.t -> Topology.t -> Scenario.spec) ->
  Topology.t ->
  bars
(** Run every protocol on [instances] sampled scenarios (default 20) and
    average the transient counts — the engine behind Figures 2, 3(a),
    3(b) and the node-failure variant. *)

val failure_bars_stats :
  ?pool:Parallel.t ->
  ?instances:int ->
  ?seed:int ->
  ?mrai_base:float ->
  ?interval:float ->
  scenario:(Random.State.t -> Topology.t -> Scenario.spec) ->
  Topology.t ->
  (Runner.protocol * Stat.summary) list
(** Like {!failure_bars} but with the full per-protocol distribution over
    instances (mean, standard deviation, median, extremes) — failure
    impact is heavy-tailed, so a bar without spread is easy to
    over-read. *)

val engine_bars :
  ?pool:Parallel.t ->
  ?instances:int ->
  ?seed:int ->
  ?mrai_base:float ->
  ?interval:float ->
  ?engines:(module Engine.S) list ->
  scenario:(Random.State.t -> Topology.t -> Scenario.spec) ->
  Topology.t ->
  (string * float) list
(** The fully generic sweep behind {!failure_bars}: average transient
    counts for an arbitrary engine list, keyed by engine name. [engines]
    defaults to every registered engine ({!Engine.Registry.all}, in
    registration order), so a newly registered protocol shows up in the
    sweep without touching this module. Same determinism contract and
    per-instance seeding as {!failure_bars}. *)

type overhead_result = {
  protocol : Runner.protocol;
  avg_messages_initial : float;
  avg_messages_event : float;
  avg_delay : float;  (** mean control-plane reconvergence delay, seconds *)
  avg_recovery : float;
      (** mean forwarding-plane stabilisation delay, seconds — the paper's
          operational "convergence delay": STAMP is expected to recover
          far faster than BGP *)
}

val overhead_and_delay :
  ?pool:Parallel.t ->
  ?instances:int ->
  ?seed:int ->
  ?mrai_base:float ->
  ?interval:float ->
  Topology.t ->
  overhead_result list
(** Section 6.3: per-protocol message counts and convergence delay on the
    single-link-failure workload. The paper expects STAMP to stay below
    twice BGP's updates and to reconverge faster than BGP. *)

val partial_deployment : Topology.t -> float
(** Section 6.3: fraction of destinations protected by tier-1-only
    deployment (paper: ≈ 0.75). Alias of {!Phi.partial_deployment_tier1}. *)

val partial_deployment_dynamic :
  ?pool:Parallel.t ->
  ?instances:int ->
  ?seed:int ->
  ?mrai_base:float ->
  max_tier:int ->
  Topology.t ->
  (int * float) list
(** The dynamic counterpart of {!partial_deployment}: average
    ASes-with-transient-problems on the Figure 2 workload when STAMP runs
    only at ASes of tier <= k, for k in [[0, max_tier]] ([k = 0]: tier-1
    only). Compare against the BGP and full-STAMP bars of {!failure_bars}.

    Expect numbers close to plain BGP: {!Hybrid_net}'s design guarantees
    partial deployment never hurts, but most transient problems live in
    stale loops and blackholes {e at legacy ASes}, which a deployed AS
    cannot see — its own best route looks healthy. STAMP's dynamic benefit
    comes from the [ET]-signalled remote switching, which cannot cross
    legacy hops; the static 75 % capability (two disjoint paths exist) is
    only realised under wide deployment. *)

(** {1 Ablations and motivation checks}

    Not figures of the paper, but benches for the design decisions
    DESIGN.md calls out and for the measurement claims the paper builds
    its motivation on. *)

val ablation_mrai :
  ?pool:Parallel.t ->
  ?instances:int ->
  ?seed:int ->
  values:float list ->
  Topology.t ->
  (float * (Runner.protocol * float * float) list) list
(** Per MRAI base interval (the paper fixes 30 s), for every protocol the
    average transient-AS count and the average reconvergence delay. The
    damage {e extent} is largely MRAI-independent (the same routers lose
    routes either way), but its {e duration} scales directly with the
    timer. *)

val ablation_stamp_variants :
  ?pool:Parallel.t ->
  ?instances:int -> ?seed:int -> Topology.t -> (string * float) list
(** Average transient count of STAMP variants on the Figure 2 workload:
    the baseline (lock-only blue propagation, random colouring), the
    unlocked-blue-spreading variant (DESIGN.md decision 6) and the
    intelligent-colouring variant. *)

val ablation_probe_interval :
  ?pool:Parallel.t ->
  ?instances:int ->
  ?seed:int ->
  values:float list ->
  Topology.t ->
  (float * float) list
(** Sensitivity of the transient-problem metric itself to the monitor's
    probe interval, measured on BGP: coarser probes miss short windows. *)

val ablation_detection :
  ?pool:Parallel.t ->
  ?instances:int ->
  ?seed:int ->
  values:float list ->
  Topology.t ->
  (float * bars) list
(** Transient counts per protocol as a function of the {e control-plane}
    failure-detection delay (e.g. waiting for the BGP hold timer instead
    of reacting to the interface-down signal). The data plane of every
    protocol still sees the interface go down immediately, so R-BGP's
    deflection and STAMP's packet re-colouring keep forwarding alive while
    the control plane is blind — plain BGP has no data-plane fallback and
    its affected-AS count grows with the delay. Theorem 5.1's "once the
    adjacent ASes have detected the event" is about exactly this
    reaction. *)

val ablation_topology :
  ?pool:Parallel.t ->
  ?instances:int -> ?seed:int -> n:int -> unit -> (string * bars) list
(** Robustness of the Figure 2 ordering across topology families: the
    single-link bars on the default generator parameters and on sparser /
    denser multi-homing and peering variants (all of size [n]). *)

(** {1 Churn sweeps}

    Repeated-event workloads (flapping links, sustained churn) stress the
    watchdog layer: every instance runs under a {!Runner.budget} and the
    sweep reports per-instance verdicts instead of aborting when one
    instance exhausts its budget or crashes. *)

type churn_row = {
  row_protocol : Runner.protocol;
  instance : int;  (** scenario-instance index within the sweep *)
  job_seed : int;  (** the seed the job actually ran with *)
  outcome : (Runner.result, string) result;
      (** [Error] carries the printed exception of a crashed job; budget
          kills are [Ok] rows with a non-[Converged] verdict *)
}

type churn_summary = {
  protocol : Runner.protocol;
  completed : int;  (** instances that produced a result *)
  crashed : int;  (** instances whose job raised *)
  converged : int;
  event_budget_exhausted : int;
  time_budget_exhausted : int;  (** verdict tallies over completed rows *)
  avg_transients : float;
      (** mean transient-AS count over completed rows ([nan] if none) *)
  avg_messages_event : float;
      (** mean update messages during the event phase ([nan] if none) *)
}

val churn_sweep :
  ?pool:Parallel.t ->
  ?instances:int ->
  ?seed:int ->
  ?mrai_base:float ->
  ?interval:float ->
  ?budget:Runner.budget ->
  scenario:(Random.State.t -> Topology.t -> Scenario.spec) ->
  Topology.t ->
  churn_row list * churn_summary list
(** Run every protocol on [instances] sampled scenarios (default 10) under
    [budget] (default {!Runner.default_budget}), capturing per-job crashes
    and budget verdicts into the rows; the per-protocol summaries tally
    verdicts and average the usual metrics over completed rows. Pair with
    {!Scenario.flap} or {!Scenario.churn}. Same determinism contract as
    the other sweeps. *)

val motivation_loss_composition :
  ?pool:Parallel.t ->
  ?instances:int -> ?seed:int -> Topology.t -> (Runner.protocol * float) list
(** Fraction of packet-loss observations during reconvergence that are
    loops rather than blackholes, per protocol — the paper's Section 1
    cites measurements attributing up to 90 % of convergence losses to
    transient loops. [nan] when a protocol loses no packets at all. *)

(** {1 Tracing overhead} *)

type trace_overhead_result = {
  baseline_s : float;  (** CPU seconds with no [?trace] argument at all *)
  null_s : float;  (** CPU seconds with an explicit {!Trace.null} sink *)
  memory_s : float;  (** CPU seconds recording into a {!Trace.memory} sink *)
  traced_events : int;  (** events recorded across all memory-sink runs *)
  identical : bool;
      (** every run's result record (timeline aside) was bit-identical
          across the three passes — the zero-cost-when-off contract *)
}

val trace_overhead :
  ?instances:int ->
  ?seed:int ->
  ?mrai_base:float ->
  ?interval:float ->
  Topology.t ->
  trace_overhead_result
(** Measure what tracing costs: run every protocol on [instances] (default
    10) single-link-failure scenarios three times — untraced, with the null
    sink, and recording into a memory sink — and time each pass. The target
    is null-sink overhead within noise of the baseline (≤ 5 %); the memory
    pass prices actual recording. Deliberately sequential (no [?pool]):
    sinks are single-domain state and the metric is per-core cost. *)

(** {1 Pre-flight validation}

    The static analyzer applied to a whole sweep's worth of scenario
    instances before anything is simulated. *)

val preflight :
  ?pool:Parallel.t ->
  ?instances:int ->
  ?seed:int ->
  ?mrai_base:float ->
  ?detect_delay:float ->
  scenario:(Random.State.t -> Topology.t -> Scenario.spec) ->
  Topology.t ->
  (Scenario.spec * Staticcheck.report) list
(** Sample [instances] scenarios exactly as the sweeps do (default 20,
    same [seed] convention) and batch them through
    {!Staticcheck.preflight} over [pool] — each report carries per-check
    timings, so analyzer cost is measurable per instance. A sweep whose
    pre-flight shows error-free reports cannot be rejected by
    [?validate:`Strict] runs on the same specs. *)
