(** Checkpointed transient-problem monitor — the measurement behind the
    paper's Figures 2 and 3 ("number of ASes with transient problems").

    The monitor drives a simulation to convergence while probing the
    forwarding plane at fixed virtual-time intervals. An AS {e experiences
    a transient problem} when some checkpoint after the routing event shows
    its packets looping or blackholed {e and} the AS has working delivery
    once the protocol has converged (ASes that end up legitimately
    disconnected are not transient casualties). This matches the paper's
    counting: transient loops and failures during convergence. *)

type outcome = {
  transient : bool array;
      (** per AS: had a loop/blackhole at some checkpoint but delivers at
          convergence *)
  final : Fwd_walk.status array;  (** status after convergence *)
  checkpoints : int;  (** number of probes taken *)
  converged_at : float;  (** simulation time when the event queue drained *)
  last_status_change : float;
      (** simulation time of the last probe at which any AS's forwarding
          status differed from the previous probe — when the forwarding
          plane stabilised. Equals the event time when forwarding was never
          disturbed. *)
}

val transient_count : outcome -> int
(** Number of ASes with [transient.(v) = true]. *)

val run :
  Sim.t ->
  ?interval:float ->
  ?max_events:int ->
  probe:(unit -> Fwd_walk.status array) ->
  unit ->
  outcome
(** Probe immediately (the instant of the routing event), then repeatedly
    every [interval] seconds of virtual time (default 0.02 s, matching the paper's 10-20 ms message delays so transient windows are not missed; probes are skipped while no events fire, so quiet MRAI gaps cost nothing) until the
    event queue drains, then probe one final time. [max_events] (default
    50 million) guards against non-termination and raises [Failure] when
    exceeded with events still pending. *)

val run_guarded :
  Sim.t ->
  ?interval:float ->
  ?max_events:int ->
  ?max_vtime:float ->
  ?on_status:(changed:bool -> Topology.vertex -> Fwd_walk.status -> unit) ->
  probe:(unit -> Fwd_walk.status array) ->
  unit ->
  outcome * Sim.verdict
(** Like {!run} but returns a {!Sim.verdict} instead of raising, so sweeps
    over adversarial or churn-heavy instances degrade gracefully:
    {!Sim.Event_budget_exhausted} when [max_events] fired with events still
    pending, {!Sim.Time_budget_exhausted} when the clock reached
    [max_vtime] (default: unbounded) with events still pending. On a
    non-{!Sim.Converged} verdict the outcome reports whatever the monitor
    observed up to the kill point (the final probe still runs, so [final]
    reflects the forwarding plane at the moment the budget hit).

    [on_status] observes the per-AS statuses the aggregate outcome is
    computed from, in a protocol precise enough to reconstruct it exactly:
    first every AS once with [changed:false] (the baseline snapshot at the
    observation start), then — at each checkpoint where anything moved —
    each AS whose status differs from the previous checkpoint with
    [changed:true] (these are exactly the instants [last_status_change]
    tracks, and together with the baseline exactly the statuses that feed
    the [transient] troubled set), and finally each AS whose final-probe
    status differs from the last checkpoint with [changed:false] (the
    final probe never moves [last_status_change] or the troubled set —
    historical semantics). Pure observation: the monitor's behaviour is
    identical with or without it. *)
