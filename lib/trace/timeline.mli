(** Per-destination convergence timelines, reconstructed from a trace
    alone.

    {!of_events} replays a run's {!Trace.event} stream (in emission order,
    as returned by {!Trace.events} on a memory sink) and rebuilds the
    quantities the paper's Fig. 2/3 are made of: when the event hit, which
    ASes lost delivery and for how long (outage {!window}s, split into
    loops and blackholes), when the forwarding plane stabilised and when
    the control plane went quiet. The aggregate fields reproduce the
    Runner's own measurements exactly — [transient_count], [broken_after],
    [convergence_delay] and [recovery_delay] are {e defined} to equal the
    corresponding [Runner.result] fields, and the differential test suite
    asserts that equality for every registered engine. *)

type window = {
  asn : int;
  status : string;  (** ["looped"] or ["blackholed"] for the whole window *)
  from_t : float;  (** virtual time the AS entered this status *)
  until_t : float;
      (** virtual time it left it (clipped to the final checkpoint for
          windows still open when the run ended) *)
}

type t = {
  engine : string;  (** engine id of the run-phase markers *)
  event_time : float;  (** when the scenario's events were injected *)
  converged_at : float;  (** virtual time of the final checkpoint *)
  first_loss : float option;
      (** first instant any AS was observed without working delivery *)
  last_decision : float option;
      (** virtual time of the last best-route change anywhere *)
  convergence_delay : float;  (** = [Runner.result.convergence_delay] *)
  recovery_delay : float;  (** = [Runner.result.recovery_delay] *)
  transient_count : int;  (** = [Runner.result.transient_count] *)
  broken_after : int;  (** = [Runner.result.broken_after] *)
  windows : window list;
      (** every observed outage interval, ordered by start time (ties by
          ASN); checkpoint-resolution, like the monitor that produced the
          statuses *)
  loop_windows : window list;  (** the subset with status ["looped"] *)
  dropped_as_seconds : float;
      (** Σ window durations: AS·seconds of packets-would-be-dropped *)
  decisions : int;  (** best-route changes over the whole run *)
  enqueued_announcements : int;
  enqueued_withdrawals : int;
  deliveries : int;
  drops : int;  (** messages lost to session resets *)
  mrai_deferrals : int;
  recolorings : int;  (** STAMP instability flips (0 for other engines) *)
}

val of_events : Trace.event list -> t
(** Rebuild the timeline from a raw (emission-ordered) event stream. Works
    on partial traces — missing phase markers default to virtual time 0 /
    the last event's time — but the aggregate-equality guarantee only
    holds for a complete run recorded through [Runner] with a memory
    sink. *)

val outage_at : t -> float -> int
(** Number of ASes inside an outage window at the given instant (the
    y-axis of the paper's Fig. 2-style timeline plots). *)

val pp : Format.formatter -> t -> unit
(** Multi-line human-readable summary. *)

val to_json : t -> string
(** One JSON object (aggregates plus the window list), for tooling. *)
