(** Structured event tracing for simulation runs.

    Every interesting in-sim occurrence — message enqueue/delivery per
    session channel, MRAI deferrals and flushes, per-AS decision changes,
    STAMP instability/[ET] transitions, session resets, scenario events,
    forwarding-status changes and run-phase markers — is emitted as a typed
    {!event} stamped with virtual time, a location (AS or directed link, in
    ASN space) and the id of the emitting engine.

    Events flow into a {!sink}: {!null} (tracing off — the default
    everywhere), {!memory} (in-process buffer, optionally ring-bounded) or
    {!stream} (JSON-lines to an output channel, one event per line).

    Zero-cost-when-off contract: with the {!null} sink, {!enabled} is
    [false] and every emission site is guarded by it, so an untraced run
    performs no allocation and — crucially — draws no randomness and
    schedules no events for the trace. Traced and untraced runs are
    bit-identical in every measured quantity; the trace is pure
    observation. *)

(** {1 Events} *)

type msg_kind = Announce | Withdraw

type location =
  | Net  (** whole-run events: phases, run-level markers *)
  | Node of int  (** an AS, identified by ASN *)
  | Link of int * int  (** a directed link [src -> dst], ASN space *)

type kind =
  | Enqueue of { msg : msg_kind; deliver_at : float }
      (** a protocol update entered the channel; [deliver_at] is its
          already-determined (FIFO-adjusted) delivery instant *)
  | Deliver  (** the channel handed the message to the receiving router *)
  | Drop  (** an in-flight message was lost to a session reset *)
  | Mrai_defer of { until : float; proc : int }
      (** an announcement was deferred by the MRAI timer of process
          [proc]; a flush is (or was already) scheduled for [until] *)
  | Mrai_flush of { proc : int }  (** a scheduled MRAI flush fired *)
  | Decision of { old_next : int option; new_next : int option; cause : string }
      (** a router's best route changed: next hops in ASN space, [None]
          for no route (or the origin's own route) *)
  | Recolor of { color : string; et_ok : bool }
      (** STAMP: a process's instability flag flipped — [et_ok = false]
          when a route loss marked subsequent updates [ET=0] (packets
          re-colour away from the process), [true] when it restabilised *)
  | Session_reset  (** link/node went down; in-flight messages will drop *)
  | Session_up  (** link/node came back; sessions re-establish *)
  | Scenario_event of string  (** an injected scenario event, pretty-printed *)
  | Status of { status : string; changed : bool }
      (** forwarding-plane status of an AS at a monitor checkpoint
          (["delivered"], ["looped"], ["blackholed"]); [changed] is [false]
          for the baseline snapshot at the event instant and for final-state
          corrections, [true] for a genuine change between checkpoints *)
  | Phase of string
      (** run-phase marker: ["start"], ["initial-converged"],
          ["events-injected"], ["final"] *)

type event = {
  vtime : float;  (** virtual time of emission *)
  seq : int;  (** per-sink emission index (0-based) *)
  engine : string;  (** emitting engine id *)
  loc : location;
  kind : kind;
}

(** {1 Sinks} *)

type sink

val null : sink
(** The off switch: {!enabled} is [false], {!emit} is a no-op. *)

val memory : ?capacity:int -> unit -> sink
(** In-process buffer. Unbounded by default; with [capacity] it becomes a
    ring that overwrites the oldest events ({!dropped} counts them).
    @raise Invalid_argument on a non-positive capacity. *)

val stream : out_channel -> sink
(** JSON-lines streaming sink: each event is written with {!to_json} plus a
    newline as it is emitted. The caller owns (flushes, closes) the
    channel. {!events} returns [[]] for stream sinks. *)

val enabled : sink -> bool
(** [false] only for {!null}. Every emission site must be guarded with this
    so the off path costs one branch and no allocation. *)

val readable : sink -> bool
(** Whether {!events} can reproduce the trace ([true] for memory sinks). *)

val emit :
  sink -> vtime:float -> engine:string -> loc:location -> kind -> unit
(** Record one event, assigning the next sequence number. No-op on
    {!null}. *)

val events : sink -> event list
(** Chronological contents of a memory sink ([[]] for null/stream). *)

val recorded : sink -> int
(** Total events emitted into the sink (including ring-dropped ones). *)

val dropped : sink -> int
(** Events overwritten by a bounded memory ring. *)

val clear : sink -> unit
(** Reset a memory sink (events, counters, sequence numbers). *)

(** {1 Serialisation (JSONL)} *)

val to_json : event -> string
(** One flat JSON object, no trailing newline. Floats are printed with
    [%.17g] so parsing is exact and golden files are stable. *)

val of_json : string -> event
(** Inverse of {!to_json}.
    @raise Invalid_argument on malformed input. *)

val pp : Format.formatter -> event -> unit
(** Human-oriented one-line rendering. *)

(** {1 Normalisation and diffing} *)

val normalize : event list -> event list
(** Canonical form for golden comparisons: sequence numbers are zeroed and
    events sharing one virtual time are sorted by their serialised form, so
    incidental emission-order differences (e.g. hash-table iteration) never
    show up as trace differences. Cross-checkpoint order is untouched. *)

val equal_event : event -> event -> bool

val diff : event list -> event list -> (int * event option * event option) list
(** Positional differences between two {e normalised} traces: indices where
    the events differ, with [None] marking the shorter side's end. Empty
    when the traces are identical. *)

(** {1 Filtering} *)

val mentions_node : event -> int -> bool
(** Whether the event's location involves the ASN (node or link endpoint). *)

val kind_label : event -> string
(** Stable lower-case label of the event kind (["enqueue"], ["deliver"],
    ["drop"], ["mrai-defer"], ["mrai-flush"], ["decision"], ["recolor"],
    ["session-reset"], ["session-up"], ["scenario"], ["status"],
    ["phase"]). *)
