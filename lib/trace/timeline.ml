(* Convergence-timeline reconstruction. The status-event protocol this
   relies on (see Runner): a baseline Status for every AS at the event
   instant with [changed = false]; a Status with [changed = true] for each
   AS whose delivery status differs at a monitor checkpoint; and final
   corrections with [changed = false] at a later vtime for ASes whose
   status moved between the last checkpoint and the final probe. The
   Runner's own aggregates ignore final corrections for troubled/recovery
   bookkeeping and use them for the end state — so do we, which is what
   makes the reconstruction exact. *)

type window = { asn : int; status : string; from_t : float; until_t : float }

type t = {
  engine : string;
  event_time : float;
  converged_at : float;
  first_loss : float option;
  last_decision : float option;
  convergence_delay : float;
  recovery_delay : float;
  transient_count : int;
  broken_after : int;
  windows : window list;
  loop_windows : window list;
  dropped_as_seconds : float;
  decisions : int;
  enqueued_announcements : int;
  enqueued_withdrawals : int;
  deliveries : int;
  drops : int;
  mrai_deferrals : int;
  recolorings : int;
}

let delivered = "delivered"

type as_state = {
  mutable status : string;
  mutable since : float;  (* when the current status began *)
  mutable troubled : bool;  (* non-delivered at baseline or a checkpoint *)
}

let of_events events =
  let engine = ref "" in
  let event_time = ref 0. in
  let saw_injection = ref false in
  let converged_at = ref 0. in
  let saw_final = ref false in
  let first_loss = ref None in
  let last_decision = ref None in
  let last_status_change = ref None in
  let decisions = ref 0 in
  let announces = ref 0 in
  let withdraws = ref 0 in
  let deliveries = ref 0 in
  let drops = ref 0 in
  let deferrals = ref 0 in
  let recolorings = ref 0 in
  let ases : (int, as_state) Hashtbl.t = Hashtbl.create 64 in
  let windows = ref [] in
  let close_window asn st ~at =
    if st.status <> delivered then
      windows := { asn; status = st.status; from_t = st.since; until_t = at }
                 :: !windows
  in
  let note_status asn status ~vtime ~changed =
    if status <> delivered && !first_loss = None then first_loss := Some vtime;
    match Hashtbl.find_opt ases asn with
    | None ->
        Hashtbl.replace ases asn
          { status; since = vtime; troubled = changed && status <> delivered }
    | Some st ->
        if st.status <> status then begin
          close_window asn st ~at:vtime;
          st.status <- status;
          st.since <- vtime
        end;
        if changed && status <> delivered then st.troubled <- true
  in
  List.iter
    (fun (e : Trace.event) ->
      (match e.kind with
      | Trace.Phase "events-injected" ->
          event_time := e.vtime;
          saw_injection := true;
          engine := e.engine
      | Trace.Phase "final" ->
          converged_at := e.vtime;
          saw_final := true
      | Trace.Phase _ -> if !engine = "" then engine := e.engine
      | Trace.Decision _ ->
          incr decisions;
          last_decision := Some e.vtime
      | Trace.Status { status; changed } -> (
          if changed then last_status_change := Some e.vtime;
          match e.loc with
          | Trace.Node asn ->
              (* baseline snapshots at the event instant count toward the
                 troubled set exactly like checkpoint changes do *)
              let counts = changed || (!saw_injection && e.vtime = !event_time) in
              note_status asn status ~vtime:e.vtime ~changed:counts
          | Trace.Net | Trace.Link _ -> ())
      | Trace.Enqueue { msg = Trace.Announce; _ } -> incr announces
      | Trace.Enqueue { msg = Trace.Withdraw; _ } -> incr withdraws
      | Trace.Deliver -> incr deliveries
      | Trace.Drop -> incr drops
      | Trace.Mrai_defer _ -> incr deferrals
      | Trace.Recolor _ -> incr recolorings
      | Trace.Mrai_flush _ | Trace.Session_reset | Trace.Session_up
      | Trace.Scenario_event _ ->
          ());
      if not !saw_final then converged_at := Float.max !converged_at e.vtime)
    events;
  (* close windows still open at the end of the run *)
  Hashtbl.iter (fun asn st -> close_window asn st ~at:!converged_at) ases;
  let windows =
    List.sort
      (fun a b ->
        match compare a.from_t b.from_t with 0 -> compare a.asn b.asn | c -> c)
      !windows
  in
  let transient_count, broken_after =
    Hashtbl.fold
      (fun _ st (tr, br) ->
        let final_ok = st.status = delivered in
        ( (if st.troubled && final_ok then tr + 1 else tr),
          if final_ok then br else br + 1 ))
      ases (0, 0)
  in
  {
    engine = !engine;
    event_time = !event_time;
    converged_at = !converged_at;
    first_loss = !first_loss;
    last_decision = !last_decision;
    convergence_delay =
      (match !last_decision with
      | Some t -> Float.max 0. (t -. !event_time)
      | None -> 0.);
    recovery_delay =
      (match !last_status_change with
      | Some t -> Float.max 0. (t -. !event_time)
      | None -> 0.);
    transient_count;
    broken_after;
    windows;
    loop_windows = List.filter (fun (w : window) -> w.status = "looped") windows;
    dropped_as_seconds =
      List.fold_left (fun acc w -> acc +. (w.until_t -. w.from_t)) 0. windows;
    decisions = !decisions;
    enqueued_announcements = !announces;
    enqueued_withdrawals = !withdraws;
    deliveries = !deliveries;
    drops = !drops;
    mrai_deferrals = !deferrals;
    recolorings = !recolorings;
  }

let outage_at t at =
  List.fold_left
    (fun acc w -> if w.from_t <= at && at < w.until_t then acc + 1 else acc)
    0 t.windows

let pp ppf t =
  let opt ppf = function
    | None -> Format.pp_print_string ppf "-"
    | Some f -> Format.fprintf ppf "%.6f" f
  in
  Format.fprintf ppf
    "@[<v>timeline (%s)@,\
    \  event at %.6f, final checkpoint %.6f@,\
    \  first loss %a, last decision %a@,\
    \  convergence delay %.6f s, recovery delay %.6f s@,\
    \  transient ASes %d, broken after %d, outage %.6f AS-seconds@,\
    \  decisions %d, announcements %d, withdrawals %d, deliveries %d@,\
    \  drops %d, MRAI deferrals %d, recolorings %d@,\
    \  outage windows (%d):"
    t.engine t.event_time t.converged_at opt t.first_loss opt t.last_decision
    t.convergence_delay t.recovery_delay t.transient_count t.broken_after
    t.dropped_as_seconds t.decisions t.enqueued_announcements
    t.enqueued_withdrawals t.deliveries t.drops t.mrai_deferrals t.recolorings
    (List.length t.windows);
  List.iter
    (fun w ->
      Format.fprintf ppf "@,    AS%d %s [%.6f, %.6f)" w.asn w.status w.from_t
        w.until_t)
    t.windows;
  Format.fprintf ppf "@]"

let to_json t =
  let b = Buffer.create 256 in
  let opt = function None -> "null" | Some f -> Printf.sprintf "%.17g" f in
  Buffer.add_string b
    (Printf.sprintf
       "{\"engine\":%S,\"event_time\":%.17g,\"converged_at\":%.17g,\
        \"first_loss\":%s,\"last_decision\":%s,\
        \"convergence_delay\":%.17g,\"recovery_delay\":%.17g,\
        \"transient_count\":%d,\"broken_after\":%d,\
        \"dropped_as_seconds\":%.17g,\"decisions\":%d,\
        \"enqueued_announcements\":%d,\"enqueued_withdrawals\":%d,\
        \"deliveries\":%d,\"drops\":%d,\"mrai_deferrals\":%d,\
        \"recolorings\":%d,\"windows\":["
       t.engine t.event_time t.converged_at (opt t.first_loss)
       (opt t.last_decision) t.convergence_delay t.recovery_delay
       t.transient_count t.broken_after t.dropped_as_seconds t.decisions
       t.enqueued_announcements t.enqueued_withdrawals t.deliveries t.drops
       t.mrai_deferrals t.recolorings);
  List.iteri
    (fun i w ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "{\"asn\":%d,\"status\":%S,\"from\":%.17g,\"until\":%.17g}"
           w.asn w.status w.from_t w.until_t))
    t.windows;
  Buffer.add_string b "]}";
  Buffer.contents b
