(* Structured event tracing. See trace.mli for the contract; the key
   invariant is that the Null sink costs one branch and nothing else, so
   traced and untraced runs stay bit-identical. *)

type msg_kind = Announce | Withdraw

type location = Net | Node of int | Link of int * int

type kind =
  | Enqueue of { msg : msg_kind; deliver_at : float }
  | Deliver
  | Drop
  | Mrai_defer of { until : float; proc : int }
  | Mrai_flush of { proc : int }
  | Decision of { old_next : int option; new_next : int option; cause : string }
  | Recolor of { color : string; et_ok : bool }
  | Session_reset
  | Session_up
  | Scenario_event of string
  | Status of { status : string; changed : bool }
  | Phase of string

type event = {
  vtime : float;
  seq : int;
  engine : string;
  loc : location;
  kind : kind;
}

(* Sinks *)

type memory_state = {
  mutable buf : event array;  (* ring when bounded, growable otherwise *)
  mutable len : int;          (* live events in [buf] *)
  mutable start : int;        (* ring read position *)
  mutable total : int;        (* emissions ever, = next seq *)
  capacity : int option;
}

type sink =
  | Null
  | Memory of memory_state
  | Stream of { oc : out_channel; mutable total : int }

let null = Null

let memory ?capacity () =
  (match capacity with
  | Some c when c <= 0 ->
      invalid_arg "Trace.memory: capacity must be positive"
  | _ -> ());
  Memory { buf = [||]; len = 0; start = 0; total = 0; capacity }

let stream oc = Stream { oc; total = 0 }

let enabled = function Null -> false | Memory _ | Stream _ -> true
let readable = function Memory _ -> true | Null | Stream _ -> false

let dummy_event = { vtime = 0.; seq = 0; engine = ""; loc = Net; kind = Deliver }

let push_memory m e =
  (match m.capacity with
  | Some cap ->
      if Array.length m.buf = 0 then m.buf <- Array.make cap dummy_event;
      if m.len < cap then begin
        m.buf.((m.start + m.len) mod cap) <- e;
        m.len <- m.len + 1
      end
      else begin
        m.buf.(m.start) <- e;
        m.start <- (m.start + 1) mod cap
      end
  | None ->
      let n = Array.length m.buf in
      if m.len = n then begin
        let buf' = Array.make (max 64 (2 * n)) dummy_event in
        Array.blit m.buf 0 buf' 0 n;
        m.buf <- buf'
      end;
      m.buf.(m.len) <- e;
      m.len <- m.len + 1);
  m.total <- m.total + 1

(* Serialisation, defined before [emit] because streaming needs it. *)

let buf_add_json_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let loc_string = function
  | Net -> "net"
  | Node n -> Printf.sprintf "as:%d" n
  | Link (u, v) -> Printf.sprintf "link:%d-%d" u v

let msg_kind_string = function Announce -> "announce" | Withdraw -> "withdraw"

let kind_name = function
  | Enqueue _ -> "enqueue"
  | Deliver -> "deliver"
  | Drop -> "drop"
  | Mrai_defer _ -> "mrai-defer"
  | Mrai_flush _ -> "mrai-flush"
  | Decision _ -> "decision"
  | Recolor _ -> "recolor"
  | Session_reset -> "session-reset"
  | Session_up -> "session-up"
  | Scenario_event _ -> "scenario"
  | Status _ -> "status"
  | Phase _ -> "phase"

let kind_label e = kind_name e.kind

let to_json e =
  let b = Buffer.create 96 in
  Buffer.add_string b (Printf.sprintf "{\"t\":%.17g,\"seq\":%d,\"engine\":" e.vtime e.seq);
  buf_add_json_string b e.engine;
  Buffer.add_string b ",\"loc\":";
  buf_add_json_string b (loc_string e.loc);
  Buffer.add_string b ",\"kind\":";
  buf_add_json_string b (kind_name e.kind);
  (match e.kind with
  | Enqueue { msg; deliver_at } ->
      Buffer.add_string b ",\"msg\":";
      buf_add_json_string b (msg_kind_string msg);
      Buffer.add_string b (Printf.sprintf ",\"deliver_at\":%.17g" deliver_at)
  | Deliver | Drop | Session_reset | Session_up -> ()
  | Mrai_defer { until; proc } ->
      Buffer.add_string b (Printf.sprintf ",\"until\":%.17g,\"proc\":%d" until proc)
  | Mrai_flush { proc } -> Buffer.add_string b (Printf.sprintf ",\"proc\":%d" proc)
  | Decision { old_next; new_next; cause } ->
      let opt = function None -> "null" | Some n -> string_of_int n in
      Buffer.add_string b
        (Printf.sprintf ",\"old_next\":%s,\"new_next\":%s,\"cause\":" (opt old_next)
           (opt new_next));
      buf_add_json_string b cause
  | Recolor { color; et_ok } ->
      Buffer.add_string b ",\"color\":";
      buf_add_json_string b color;
      Buffer.add_string b (Printf.sprintf ",\"et_ok\":%b" et_ok)
  | Scenario_event label ->
      Buffer.add_string b ",\"label\":";
      buf_add_json_string b label
  | Status { status; changed } ->
      Buffer.add_string b ",\"status\":";
      buf_add_json_string b status;
      Buffer.add_string b (Printf.sprintf ",\"changed\":%b" changed)
  | Phase name ->
      Buffer.add_string b ",\"name\":";
      buf_add_json_string b name);
  Buffer.add_char b '}';
  Buffer.contents b

let emit sink ~vtime ~engine ~loc kind =
  match sink with
  | Null -> ()
  | Memory m ->
      push_memory m { vtime; seq = m.total; engine; loc; kind }
  | Stream s ->
      let e = { vtime; seq = s.total; engine; loc; kind } in
      s.total <- s.total + 1;
      output_string s.oc (to_json e);
      output_char s.oc '\n'

let events = function
  | Null | Stream _ -> []
  | Memory m ->
      List.init m.len (fun i ->
          let cap = Array.length m.buf in
          if cap = 0 then assert false
          else m.buf.((m.start + i) mod cap))

let recorded = function Null -> 0 | Memory m -> m.total | Stream s -> s.total

let dropped = function
  | Null | Stream _ -> 0
  | Memory m -> m.total - m.len

let clear = function
  | Null | Stream _ -> ()
  | Memory m ->
      m.buf <- [||];
      m.len <- 0;
      m.start <- 0;
      m.total <- 0

(* Minimal JSON-object parser: enough for the flat one-line objects
   [to_json] produces (string / number / bool / null values only). *)

module P = struct
  type t = { s : string; mutable pos : int }

  let fail p msg =
    invalid_arg (Printf.sprintf "Trace.of_json: %s at %d in %S" msg p.pos p.s)

  let skip_ws p =
    while
      p.pos < String.length p.s
      && (match p.s.[p.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      p.pos <- p.pos + 1
    done

  let peek p = if p.pos < String.length p.s then Some p.s.[p.pos] else None

  let expect p c =
    match peek p with
    | Some c' when c' = c -> p.pos <- p.pos + 1
    | _ -> fail p (Printf.sprintf "expected %c" c)

  let string p =
    expect p '"';
    let b = Buffer.create 16 in
    let rec go () =
      if p.pos >= String.length p.s then fail p "unterminated string";
      let c = p.s.[p.pos] in
      p.pos <- p.pos + 1;
      if c = '"' then Buffer.contents b
      else if c = '\\' then begin
        (if p.pos >= String.length p.s then fail p "bad escape";
         let e = p.s.[p.pos] in
         p.pos <- p.pos + 1;
         match e with
         | '"' -> Buffer.add_char b '"'
         | '\\' -> Buffer.add_char b '\\'
         | '/' -> Buffer.add_char b '/'
         | 'n' -> Buffer.add_char b '\n'
         | 't' -> Buffer.add_char b '\t'
         | 'r' -> Buffer.add_char b '\r'
         | 'u' ->
             if p.pos + 4 > String.length p.s then fail p "bad \\u escape";
             let code = int_of_string ("0x" ^ String.sub p.s p.pos 4) in
             p.pos <- p.pos + 4;
             if code < 0x80 then Buffer.add_char b (Char.chr code)
             else fail p "non-ASCII \\u escape unsupported"
         | _ -> fail p "bad escape");
        go ()
      end
      else begin
        Buffer.add_char b c;
        go ()
      end
    in
    go ()

  type value = S of string | F of float | B of bool | Nil

  let value p =
    skip_ws p;
    match peek p with
    | Some '"' -> S (string p)
    | Some 't' ->
        if p.pos + 4 <= String.length p.s && String.sub p.s p.pos 4 = "true"
        then (p.pos <- p.pos + 4; B true)
        else fail p "bad literal"
    | Some 'f' ->
        if p.pos + 5 <= String.length p.s && String.sub p.s p.pos 5 = "false"
        then (p.pos <- p.pos + 5; B false)
        else fail p "bad literal"
    | Some 'n' ->
        if p.pos + 4 <= String.length p.s && String.sub p.s p.pos 4 = "null"
        then (p.pos <- p.pos + 4; Nil)
        else fail p "bad literal"
    | Some ('-' | '0' .. '9') ->
        let start = p.pos in
        while
          p.pos < String.length p.s
          && (match p.s.[p.pos] with
             | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
             | _ -> false)
        do
          p.pos <- p.pos + 1
        done;
        (try F (float_of_string (String.sub p.s start (p.pos - start)))
         with _ -> fail p "bad number")
    | _ -> fail p "expected value"

  let obj p =
    skip_ws p;
    expect p '{';
    let fields = ref [] in
    skip_ws p;
    (match peek p with
    | Some '}' -> p.pos <- p.pos + 1
    | _ ->
        let rec go () =
          skip_ws p;
          let k = string p in
          skip_ws p;
          expect p ':';
          let v = value p in
          fields := (k, v) :: !fields;
          skip_ws p;
          match peek p with
          | Some ',' -> p.pos <- p.pos + 1; go ()
          | Some '}' -> p.pos <- p.pos + 1
          | _ -> fail p "expected , or }"
        in
        go ());
    skip_ws p;
    if p.pos <> String.length p.s then fail p "trailing garbage";
    List.rev !fields
end

let of_json line =
  let p = { P.s = line; pos = 0 } in
  let fields = P.obj p in
  let find k =
    match List.assoc_opt k fields with
    | Some v -> v
    | None -> invalid_arg (Printf.sprintf "Trace.of_json: missing field %S" k)
  in
  let str k = match find k with P.S s -> s | _ ->
    invalid_arg (Printf.sprintf "Trace.of_json: field %S not a string" k) in
  let num k = match find k with P.F f -> f | _ ->
    invalid_arg (Printf.sprintf "Trace.of_json: field %S not a number" k) in
  let boolean k = match find k with P.B b -> b | _ ->
    invalid_arg (Printf.sprintf "Trace.of_json: field %S not a bool" k) in
  let int_opt k = match find k with
    | P.Nil -> None
    | P.F f -> Some (int_of_float f)
    | _ -> invalid_arg (Printf.sprintf "Trace.of_json: field %S not int/null" k)
  in
  let loc =
    let s = str "loc" in
    if s = "net" then Net
    else
      match String.index_opt s ':' with
      | Some i ->
          let tag = String.sub s 0 i in
          let rest = String.sub s (i + 1) (String.length s - i - 1) in
          (match tag with
          | "as" -> (
              match int_of_string_opt rest with
              | Some n -> Node n
              | None -> invalid_arg ("Trace.of_json: bad loc " ^ s))
          | "link" -> (
              match String.index_opt rest '-' with
              | Some j -> (
                  let u = String.sub rest 0 j in
                  let v = String.sub rest (j + 1) (String.length rest - j - 1) in
                  match (int_of_string_opt u, int_of_string_opt v) with
                  | Some u, Some v -> Link (u, v)
                  | _ -> invalid_arg ("Trace.of_json: bad loc " ^ s))
              | None -> invalid_arg ("Trace.of_json: bad loc " ^ s))
          | _ -> invalid_arg ("Trace.of_json: bad loc " ^ s))
      | None -> invalid_arg ("Trace.of_json: bad loc " ^ s)
  in
  let kind =
    match str "kind" with
    | "enqueue" ->
        let msg =
          match str "msg" with
          | "announce" -> Announce
          | "withdraw" -> Withdraw
          | s -> invalid_arg ("Trace.of_json: bad msg " ^ s)
        in
        Enqueue { msg; deliver_at = num "deliver_at" }
    | "deliver" -> Deliver
    | "drop" -> Drop
    | "mrai-defer" ->
        Mrai_defer { until = num "until"; proc = int_of_float (num "proc") }
    | "mrai-flush" -> Mrai_flush { proc = int_of_float (num "proc") }
    | "decision" ->
        Decision
          { old_next = int_opt "old_next";
            new_next = int_opt "new_next";
            cause = str "cause" }
    | "recolor" -> Recolor { color = str "color"; et_ok = boolean "et_ok" }
    | "session-reset" -> Session_reset
    | "session-up" -> Session_up
    | "scenario" -> Scenario_event (str "label")
    | "status" -> Status { status = str "status"; changed = boolean "changed" }
    | "phase" -> Phase (str "name")
    | s -> invalid_arg ("Trace.of_json: unknown kind " ^ s)
  in
  { vtime = num "t";
    seq = int_of_float (num "seq");
    engine = str "engine";
    loc;
    kind }

let pp ppf e =
  Format.fprintf ppf "@[<h>%.6f %s %s %s" e.vtime e.engine (loc_string e.loc)
    (kind_name e.kind);
  (match e.kind with
  | Enqueue { msg; deliver_at } ->
      Format.fprintf ppf " %s deliver_at=%.6f" (msg_kind_string msg) deliver_at
  | Deliver | Drop | Session_reset | Session_up -> ()
  | Mrai_defer { until; proc } ->
      Format.fprintf ppf " proc=%d until=%.6f" proc until
  | Mrai_flush { proc } -> Format.fprintf ppf " proc=%d" proc
  | Decision { old_next; new_next; cause } ->
      let opt = function None -> "-" | Some n -> string_of_int n in
      Format.fprintf ppf " %s->%s (%s)" (opt old_next) (opt new_next) cause
  | Recolor { color; et_ok } ->
      Format.fprintf ppf " color=%s et_ok=%b" color et_ok
  | Scenario_event label -> Format.fprintf ppf " %s" label
  | Status { status; changed } ->
      Format.fprintf ppf " %s%s" status (if changed then " (changed)" else "")
  | Phase name -> Format.fprintf ppf " %s" name);
  Format.fprintf ppf "@]"

let equal_event (a : event) (b : event) =
  a.vtime = b.vtime && a.seq = b.seq && a.engine = b.engine && a.loc = b.loc
  && a.kind = b.kind

let normalize evs =
  let evs = List.map (fun e -> { e with seq = 0 }) evs in
  (* Stable partition into runs of equal vtime, sort each run by the
     serialised form: emission order inside one instant is an artefact of
     hash-table iteration, not semantics. *)
  let rec runs acc cur = function
    | [] -> List.rev (List.rev cur :: acc)
    | e :: rest -> (
        match cur with
        | [] -> runs acc [ e ] rest
        | c :: _ when c.vtime = e.vtime -> runs acc (e :: cur) rest
        | _ -> runs (List.rev cur :: acc) [ e ] rest)
  in
  match evs with
  | [] -> []
  | _ ->
      runs [] [] evs
      |> List.concat_map (fun run ->
             List.sort (fun a b -> compare (to_json a) (to_json b)) run)

let diff a b =
  let rec go i a b acc =
    match (a, b) with
    | [], [] -> List.rev acc
    | x :: a', [] -> go (i + 1) a' [] ((i, Some x, None) :: acc)
    | [], y :: b' -> go (i + 1) [] b' ((i, None, Some y) :: acc)
    | x :: a', y :: b' ->
        if equal_event x y then go (i + 1) a' b' acc
        else go (i + 1) a' b' ((i, Some x, Some y) :: acc)
  in
  go 0 a b []

let mentions_node e n =
  match e.loc with
  | Net -> false
  | Node m -> m = n
  | Link (u, v) -> u = n || v = n
