type t = {
  mutable clock : float;
  heap : (t -> unit) Event_heap.t;
  rng : Random.State.t;
  mutable events_processed : int;
}

let create ?(seed = 0) () =
  {
    clock = 0.;
    heap = Event_heap.create ();
    rng = Random.State.make [| seed |];
    events_processed = 0;
  }

let now t = t.clock
let rng t = t.rng

let schedule t ~delay f =
  if Float.is_nan delay || delay < 0. then
    invalid_arg "Sim.schedule: negative or NaN delay";
  Event_heap.push t.heap ~time:(t.clock +. delay) f

let schedule_at t ~time f =
  if Float.is_nan time || time < t.clock then
    invalid_arg "Sim.schedule_at: time in the past";
  Event_heap.push t.heap ~time f

let step t =
  match Event_heap.pop_min t.heap with
  | None -> false
  | Some (time, f) ->
    t.clock <- time;
    t.events_processed <- t.events_processed + 1;
    f t;
    true

let run ?(until = infinity) ?(max_events = max_int) t =
  let processed = ref 0 in
  let continue = ref true in
  while !continue && !processed < max_events do
    match Event_heap.peek_time t.heap with
    | None -> continue := false
    | Some time when time > until -> continue := false
    | Some _ ->
      ignore (step t);
      incr processed
  done;
  (* virtual time passes even when nothing happens: advance the clock to
     the horizon so callers can step a simulation in fixed increments —
     but only when no pending event is due at or before the horizon
     (the loop may have stopped on [max_events] with work left; warping
     past it would make the next [step] run time backwards) *)
  let no_due_event =
    match Event_heap.peek_time t.heap with
    | None -> true
    | Some time -> time > until
  in
  if Float.is_finite until && t.clock < until && no_due_event then
    t.clock <- until

type verdict = Converged | Event_budget_exhausted | Time_budget_exhausted

let verdict_name = function
  | Converged -> "converged"
  | Event_budget_exhausted -> "event-budget-exhausted"
  | Time_budget_exhausted -> "time-budget-exhausted"

let equal_verdict (a : verdict) b = a = b

let run_guarded ?(until = infinity) ?(max_events = max_int) t =
  let processed = ref 0 in
  let verdict = ref Converged in
  let continue = ref true in
  while !continue do
    match Event_heap.peek_time t.heap with
    | None -> continue := false
    | Some time when time > until ->
      verdict := Time_budget_exhausted;
      continue := false
    | Some _ ->
      if !processed >= max_events then begin
        verdict := Event_budget_exhausted;
        continue := false
      end
      else begin
        ignore (step t);
        incr processed
      end
  done;
  !verdict

let pending t = Event_heap.size t.heap
let events_processed t = t.events_processed
