(** Point-to-point ordered message channels with random per-message delay.

    BGP sessions run over TCP: messages between two routers arrive in
    order. A channel draws an independent delay for each message (the
    paper's combined processing + transmission delay, uniform in
    [10 ms, 20 ms] by default) but never reorders: if a later message would
    overtake an earlier one, its delivery is pushed just after it. *)

type 'a t

val create :
  ?delay_lo:float -> ?delay_hi:float -> Sim.t -> deliver:('a -> unit) -> 'a t
(** New channel delivering messages through [deliver]. Delays are drawn
    uniformly from [[delay_lo, delay_hi]] (defaults 0.010 s and 0.020 s,
    matching the paper). *)

val send : 'a t -> 'a -> unit
(** Enqueue a message for delayed, ordered delivery. *)

val sent_count : 'a t -> int
(** Number of messages sent through this channel (for the protocol-overhead
    experiment of Section 6.3). *)

val last_delivery : 'a t -> float
(** Scheduled delivery instant of the most recently sent message (0 before
    the first send). Immediately after {!send} this is the just-enqueued
    message's delivery time — the tracing layer stamps enqueue events with
    it. *)
