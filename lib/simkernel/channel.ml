type 'a t = {
  sim : Sim.t;
  delay_lo : float;
  delay_hi : float;
  deliver : 'a -> unit;
  mutable last_delivery : float;
  mutable sent : int;
}

let create ?(delay_lo = 0.010) ?(delay_hi = 0.020) sim ~deliver =
  if delay_lo < 0. || delay_hi < delay_lo then
    invalid_arg "Channel.create: bad delay bounds";
  { sim; delay_lo; delay_hi; deliver; last_delivery = 0.; sent = 0 }

(* Keep FIFO order: a message never overtakes a previously sent one. *)
let send t msg =
  let delay =
    t.delay_lo +. Random.State.float (Sim.rng t.sim) (t.delay_hi -. t.delay_lo)
  in
  let at = Float.max (Sim.now t.sim +. delay) (t.last_delivery +. 1e-9) in
  t.last_delivery <- at;
  t.sent <- t.sent + 1;
  Sim.schedule_at t.sim ~time:at (fun _ -> t.deliver msg)

let sent_count t = t.sent
let last_delivery t = t.last_delivery
