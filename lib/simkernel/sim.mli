(** Discrete-event simulation engine: a virtual clock, a deterministic RNG
    and an event queue of callbacks.

    All protocol engines in this repository (BGP, R-BGP, STAMP) are driven
    by one [Sim.t] per experiment run. Reproducibility contract: the same
    seed and the same sequence of [schedule] calls produce the same
    execution. *)

type t

val create : ?seed:int -> unit -> t
(** Fresh simulation at time 0 (default seed 0). *)

val now : t -> float
(** Current virtual time, in seconds. *)

val rng : t -> Random.State.t
(** The simulation's RNG. All protocol randomness must come from here. *)

val schedule : t -> delay:float -> (t -> unit) -> unit
(** Run a callback [delay] seconds from now.
    @raise Invalid_argument on negative or NaN delay. *)

val schedule_at : t -> time:float -> (t -> unit) -> unit
(** Run a callback at an absolute time.
    @raise Invalid_argument if [time] precedes the current time. *)

val step : t -> bool
(** Process the earliest pending event; [false] when the queue is empty. *)

val run : ?until:float -> ?max_events:int -> t -> unit
(** Process events until the queue drains, the clock passes [until], or
    [max_events] have been processed (default: unbounded). Events scheduled
    past [until] remain queued; when a finite [until] is given the clock
    advances to it even if no event fell inside the window, so a simulation
    can be stepped in fixed increments. The clock only advances to the
    horizon when no pending event is due at or before it (the loop may
    have stopped on [max_events] with work left; warping past pending
    events would run simulated time backwards on the next {!step}). *)

(** {1 Guarded execution}

    BGP-family protocols can diverge under adversarial policies, and churn
    workloads replay events for a long simulated time; a watchdog verdict
    instead of an open-ended loop keeps one pathological instance from
    hanging a whole experiment sweep. *)

type verdict =
  | Converged  (** the event queue drained: the protocol quiesced *)
  | Event_budget_exhausted
      (** [max_events] were processed with events still pending *)
  | Time_budget_exhausted
      (** every remaining event lies past the simulated-time horizon *)

val verdict_name : verdict -> string
(** Stable lower-case label (["converged"], ["event-budget-exhausted"],
    ["time-budget-exhausted"]) for reports and JSON output. *)

val equal_verdict : verdict -> verdict -> bool

val run_guarded : ?until:float -> ?max_events:int -> t -> verdict
(** Like {!run} but returns how the loop ended instead of hanging on a
    diverging instance: {!Converged} when the queue drained,
    {!Event_budget_exhausted} when [max_events] fired with work left, and
    {!Time_budget_exhausted} when only events past [until] remain. Unlike
    {!run} the clock is {e never} warped to the horizon — on a
    non-converged verdict it stays at the last processed event, so pending
    events remain schedulable and measurements read the time real work
    stopped. *)

val pending : t -> int
(** Number of queued events. *)

val events_processed : t -> int
(** Total events processed since creation. *)
