let make ~rci:rci_enabled ~name:engine_name : (module Engine.S) =
  (module struct
    type t = Rbgp_net.t

    let name = engine_name

    let create sim topo ~dest (c : Engine.config) =
      Rbgp_net.create sim topo ~dest ~rci:rci_enabled ~mrai_base:c.mrai_base
        ~delay_lo:c.delay_lo ~delay_hi:c.delay_hi
        ~detect_delay:c.detect_delay ~trace:c.trace ()

    let start = Rbgp_net.start
    let fail_link = Rbgp_net.fail_link
    let recover_link = Rbgp_net.recover_link
    let fail_node = Rbgp_net.fail_node
    let recover_node = Rbgp_net.recover_node
    let deny_export = Rbgp_net.deny_export
    let allow_export = Rbgp_net.allow_export
    let probe = Rbgp_net.walk_all
    let message_count = Rbgp_net.message_count
    let last_change = Rbgp_net.last_change
    let counters = Rbgp_net.counters
  end)

let no_rci = make ~rci:false ~name:"R-BGP without RCI"
let rci = make ~rci:true ~name:"R-BGP"

let () =
  Engine.Registry.register no_rci;
  Engine.Registry.register rci
