type cause = Link of Topology.vertex * Topology.vertex | Node of Topology.vertex

type msg =
  | Announce of { path : Topology.vertex list; rci : cause option }
  | Withdraw of { rci : cause option }
  | Failover of { path : Topology.vertex list option; rci : cause option }
      (** [path = None] withdraws a previously advertised failover path *)

type router = {
  v : Topology.vertex;
  mutable best : Route.t option;
  adj_rib_in : (Topology.vertex, Route.t) Hashtbl.t;
  failover_rib : (Topology.vertex, Topology.vertex list) Hashtbl.t;
      (** failover paths received: advertiser → pinned path starting at the
          advertiser *)
  rib_out : (Topology.vertex, Topology.vertex list) Hashtbl.t;
  mutable failover_out : (Topology.vertex * Topology.vertex list) option;
      (** (receiver, path) of our currently advertised failover path *)
  mutable withdrawn : Route.t option;
      (** the last best route after it was withdrawn: R-BGP keeps
          forwarding along it until an alternative is learned *)
  export_deny : (Topology.vertex, unit) Hashtbl.t;
  mutable known_causes : cause list;
  mutable last_cause : cause option;
}

type t = {
  core : msg Session_core.t;
  topo : Topology.t;
  dest : Topology.vertex;
  rci : bool;
  routers : router array;
}

let sim t = Session_core.sim t.core
let dest t = t.dest

let rel_exn t u v =
  match Topology.rel t.topo u v with
  | Some r -> r
  | None -> invalid_arg "Rbgp_net: vertices not adjacent"

let cause_equal a b =
  match (a, b) with
  | Link (u, v), Link (u', v') -> (u = u' && v = v') || (u = v' && v = u')
  | Node n, Node n' -> n = n'
  | (Link _ | Node _), _ -> false

(* Whether a stored AS path (owner excluded) traverses the failed element.
   For a link cause the two endpoints must be consecutive in the path. *)
let path_hits_cause path cause =
  match cause with
  | Node n -> List.mem n path
  | Link (u, v) ->
    let rec scan = function
      | a :: (b :: _ as rest) ->
        ((a = u && b = v) || (a = v && b = u)) || scan rest
      | [] | [ _ ] -> false
    in
    scan path

(* --- primary-route advertisement (shared Session_core skeleton) ------ *)

let rec advertise_to t r n =
  let desired =
    match r.best with
    | Some b
      when Route.learned_from b <> Some n
           && Export.exportable b ~to_rel:(rel_exn t r.v n)
           && not (Hashtbl.mem r.export_deny n) ->
      Some (r.v :: b.as_path)
    | Some _ | None -> None
  in
  Session_core.advertise t.core ~src:r.v ~dst:n ~rib_out:r.rib_out ~desired
    ~announce:(fun path -> Announce { path; rci = r.last_cause })
    ~withdraw:(fun () -> Withdraw { rci = r.last_cause })
    ~retry:(fun () -> advertise_to t r n)
    ()

(* --- failover-path advertisement ------------------------------------ *)

(* Most disjoint alternate: fewest shared vertices with the best path
   (the destination is shared by all candidates, so it never affects the
   ranking), then the decision order. The recipient must not appear in the
   alternate. *)
let pick_failover r (best : Route.t) ~recipient =
  let shared (alt : Route.t) =
    List.length
      (List.filter (fun x -> List.mem x best.as_path) alt.Route.as_path)
  in
  Hashtbl.fold
    (fun from (alt : Route.t) acc ->
      if Some from = Route.learned_from best || List.mem recipient alt.as_path
      then acc
      else
        match acc with
        | None -> Some alt
        | Some cur ->
          let s = shared alt and sc = shared cur in
          if s < sc || (s = sc && Decision.better alt cur) then Some alt
          else acc)
    r.adj_rib_in None

let update_failover t r =
  let desired =
    match r.best with
    | None -> None
    | Some b -> begin
      match Route.learned_from b with
      | None -> None (* destination itself *)
      | Some nh -> begin
        match pick_failover r b ~recipient:nh with
        | None -> None
        | Some alt -> Some (nh, r.v :: alt.Route.as_path)
      end
    end
  in
  match (desired, r.failover_out) with
  | None, None -> ()
  | Some d, Some cur when d = cur -> ()
  | _ ->
    (* withdraw from the previous receiver if it changes or disappears *)
    (match r.failover_out with
    | Some (prev, _)
      when (match desired with Some (n, _) -> n <> prev | None -> true)
           && Session_core.link_up t.core r.v prev ->
      Session_core.send t.core ~src:r.v ~dst:prev ~kind:`Withdraw
        (Failover { path = None; rci = r.last_cause })
    | Some _ | None -> ());
    (match desired with
    | Some (n, p)
      when Session_core.link_up t.core r.v n
           && not (Hashtbl.mem r.export_deny n) ->
      Session_core.send t.core ~src:r.v ~dst:n ~kind:`Announce
        (Failover { path = Some p; rci = r.last_cause })
    | Some _ | None -> ());
    r.failover_out <- desired

let advertise_all t r =
  Array.iter (fun (n, _) -> advertise_to t r n) (Topology.neighbors t.topo r.v);
  update_failover t r

(* --- RCI purge ------------------------------------------------------- *)

let learn_cause t r cause =
  if t.rci && not (List.exists (cause_equal cause) r.known_causes) then begin
    r.known_causes <- cause :: r.known_causes;
    let purge tbl =
      let stale =
        Hashtbl.fold
          (fun from path acc ->
            if path_hits_cause path cause then from :: acc else acc)
          tbl []
      in
      List.iter (Hashtbl.remove tbl) stale
    in
    let stale_routes =
      Hashtbl.fold
        (fun from (rt : Route.t) acc ->
          if path_hits_cause rt.as_path cause then from :: acc else acc)
        r.adj_rib_in []
    in
    List.iter (Hashtbl.remove r.adj_rib_in) stale_routes;
    purge r.failover_rib;
    (match r.withdrawn with
    | Some (w : Route.t) when path_hits_cause w.as_path cause ->
      r.withdrawn <- None
    | Some _ | None -> ())
  end;
  r.last_cause <- Some cause

let recompute t r =
  let best' =
    if r.v = t.dest then Some Route.origin else Decision.select_tbl r.adj_rib_in
  in
  if best' <> r.best then begin
    let old_next = Option.bind r.best Route.learned_from in
    let cause =
      match (r.best, best') with
      | _, None -> "route-loss"
      | None, Some _ -> "route-learned"
      | Some _, Some _ -> "route-change"
    in
    (match (r.best, best') with
    | Some old, None -> r.withdrawn <- Some old
    | _, Some _ -> r.withdrawn <- None
    | None, None -> ());
    r.best <- best';
    Session_core.note_decision t.core ~node:r.v ~old_next
      ~new_next:(Option.bind best' Route.learned_from)
      ~cause;
    advertise_all t r
  end
  else update_failover t r

let receive t r ~from msg =
  if Session_core.node_up t.core r.v then begin
    let rci =
      match msg with
      | Announce { rci; _ } | Withdraw { rci } | Failover { rci; _ } -> rci
    in
    (match rci with Some c -> learn_cause t r c | None -> ());
    (match msg with
    | Announce { path; _ } ->
      let stale =
        t.rci && List.exists (fun c -> path_hits_cause path c) r.known_causes
      in
      if List.mem r.v path || stale then Hashtbl.remove r.adj_rib_in from
      else
        Hashtbl.replace r.adj_rib_in from
          { Route.as_path = path; cls = rel_exn t r.v from }
    | Withdraw _ -> Hashtbl.remove r.adj_rib_in from
    | Failover { path = None; _ } -> Hashtbl.remove r.failover_rib from
    | Failover { path = Some p; _ } ->
      let stale =
        t.rci && List.exists (fun c -> path_hits_cause p c) r.known_causes
      in
      if stale then Hashtbl.remove r.failover_rib from
      else Hashtbl.replace r.failover_rib from p);
    recompute t r
  end

let create sim topo ~dest ~rci ?(mrai_base = 30.) ?(delay_lo = 0.010)
    ?(delay_hi = 0.020) ?(detect_delay = 0.) ?(trace = Trace.null) () =
  let n = Topology.num_vertices topo in
  if dest < 0 || dest >= n then invalid_arg "Rbgp_net.create: bad destination";
  let routers =
    Array.init n (fun v ->
        {
          v;
          best = None;
          adj_rib_in = Hashtbl.create 8;
          failover_rib = Hashtbl.create 4;
          rib_out = Hashtbl.create 8;
          failover_out = None;
          withdrawn = None;
          export_deny = Hashtbl.create 2;
          known_causes = [];
          last_cause = None;
        })
  in
  let core =
    Session_core.create ~mrai_base ~delay_lo ~delay_hi ~detect_delay ~trace
      ~who:"Rbgp_net" sim topo
  in
  let t = { core; topo; dest; rci; routers } in
  Session_core.on_receive core (fun ~src ~dst msg ->
      receive t t.routers.(dst) ~from:src msg);
  t

let start t = recompute t t.routers.(t.dest)

let drop_session t u v =
  let ru = t.routers.(u) and rv = t.routers.(v) in
  Hashtbl.remove ru.adj_rib_in v;
  Hashtbl.remove ru.rib_out v;
  Hashtbl.remove ru.failover_rib v;
  (match ru.failover_out with
  | Some (n, _) when n = v -> ru.failover_out <- None
  | Some _ | None -> ());
  Hashtbl.remove rv.adj_rib_in u;
  Hashtbl.remove rv.rib_out u;
  Hashtbl.remove rv.failover_rib u;
  match rv.failover_out with
  | Some (n, _) when n = u -> rv.failover_out <- None
  | Some _ | None -> ()

let fail_link t u v =
  Session_core.fail_link t.core u v ~react:(fun () ->
      drop_session t u v;
      let cause = Link (u, v) in
      (* adjacent ASes know the root cause by local detection, with or
         without the RCI protocol extension; [learn_cause] only purges under
         RCI *)
      t.routers.(u).last_cause <- Some cause;
      t.routers.(v).last_cause <- Some cause;
      learn_cause t t.routers.(u) cause;
      learn_cause t t.routers.(v) cause;
      recompute t t.routers.(u);
      recompute t t.routers.(v))

let recover_link t u v =
  Session_core.recover_link t.core u v ~react:(fun () ->
      drop_session t u v;
      (* recovered links clear the corresponding root cause: routes through
         the link are valid again. [last_cause] must go too, or
         re-announcements would carry the stale cause and re-poison every
         receiver. *)
      let cause = Link (u, v) in
      let clear_cause r =
        r.known_causes <-
          List.filter (fun c -> not (cause_equal c cause)) r.known_causes;
        match r.last_cause with
        | Some c when cause_equal c cause -> r.last_cause <- None
        | Some _ | None -> ()
      in
      Array.iter clear_cause t.routers;
      advertise_to t t.routers.(u) v;
      advertise_to t t.routers.(v) u;
      update_failover t t.routers.(u);
      update_failover t t.routers.(v))

let fail_node t v =
  Session_core.fail_node t.core v;
  let r = t.routers.(v) in
  Hashtbl.reset r.adj_rib_in;
  Hashtbl.reset r.rib_out;
  Hashtbl.reset r.failover_rib;
  r.failover_out <- None;
  r.best <- None;
  let cause = Node v in
  Array.iter
    (fun (n, _) ->
      let rn = t.routers.(n) in
      Hashtbl.remove rn.adj_rib_in v;
      Hashtbl.remove rn.rib_out v;
      Hashtbl.remove rn.failover_rib v;
      (match rn.failover_out with
      | Some (x, _) when x = v -> rn.failover_out <- None
      | Some _ | None -> ());
      learn_cause t rn cause;
      recompute t rn)
    (Topology.neighbors t.topo v)

let recover_node t v =
  Session_core.recover_node t.core v;
  let r = t.routers.(v) in
  (* the returning router restarts with a clean slate *)
  r.known_causes <- [];
  r.last_cause <- None;
  r.withdrawn <- None;
  (* the node's root cause clears everywhere: paths through it are valid
     again (including stale [last_cause] stamps, which would otherwise
     travel on re-announcements and re-poison receivers) *)
  let cause = Node v in
  Array.iter
    (fun rn ->
      rn.known_causes <-
        List.filter (fun c -> not (cause_equal c cause)) rn.known_causes;
      match rn.last_cause with
      | Some c when cause_equal c cause -> rn.last_cause <- None
      | Some _ | None -> ())
    t.routers;
  (* re-originates if [v] is the destination; otherwise waits for
     neighbours to re-announce *)
  recompute t r;
  Array.iter
    (fun (n, _) ->
      advertise_to t t.routers.(n) v;
      advertise_to t r n;
      update_failover t t.routers.(n))
    (Topology.neighbors t.topo v)

let deny_export t v n =
  Session_core.check_adjacent t.core ~op:"deny_export" v n;
  Hashtbl.replace t.routers.(v).export_deny n ();
  advertise_to t t.routers.(v) n;
  update_failover t t.routers.(v)

let allow_export t v n =
  Session_core.check_adjacent t.core ~op:"allow_export" v n;
  Hashtbl.remove t.routers.(v).export_deny n;
  advertise_to t t.routers.(v) n;
  update_failover t t.routers.(v)

let best t v = t.routers.(v).best

let failover_choices t v =
  Hashtbl.fold (fun from p acc -> (from, p) :: acc) t.routers.(v).failover_rib []
  |> List.sort compare
  |> List.map snd

(* A pinned failover path delivers iff every hop is alive. *)
let pinned_alive t path =
  let links = Session_core.links t.core in
  let rec scan = function
    | a :: (b :: _ as rest) -> Link_state.link_up links a b && scan rest
    | [ x ] -> Link_state.node_up links x
    | [] -> true
  in
  scan path

let walk_all t =
  let links = Session_core.links t.core in
  let step v () =
    if not (Link_state.node_up links v) then `Drop
    else begin
      let primary =
        match t.routers.(v).best with
        | Some b -> begin
          match Route.learned_from b with
          | Some nh when Link_state.link_up links v nh -> Some nh
          | Some _ | None -> None
        end
        | None -> None
      in
      let stale_nh =
        (* keep forwarding along the withdrawn route until an alternative
           or a root cause invalidates it *)
        match t.routers.(v).withdrawn with
        | Some w -> begin
          match Route.learned_from w with
          | Some nh when Link_state.link_up links v nh -> Some nh
          | Some _ | None -> None
        end
        | None -> None
      in
      match (primary, stale_nh) with
      | Some nh, _ | None, Some nh -> `Forward (nh, ())
      | None, None -> begin
        (* Deflect onto a stored failover path. The router picks the first
           candidate whose advertiser is still reachable — it cannot know
           whether the rest of the pinned path is alive. Under RCI, stale
           failover paths were purged, so the pick is trustworthy; without
           RCI the packet follows a possibly dead path and is lost. *)
        let candidates =
          Hashtbl.fold
            (fun from p acc -> (from, p) :: acc)
            t.routers.(v).failover_rib []
          |> List.sort compare
        in
        match
          List.find_opt
            (fun (from, _) -> Link_state.link_up links v from)
            candidates
        with
        | Some (_, p) -> if pinned_alive t p then `Deliver else `Drop
        | None -> `Drop
      end
    end
  in
  Fwd_walk.walk_all
    ~n:(Topology.num_vertices t.topo)
    ~dest:t.dest
    ~start:(fun _ -> ())
    ~step
    ~state_id:(fun () -> 0)
    ~num_states:1

let message_count t = Session_core.message_count t.core
let last_change t = Session_core.last_change t.core
let counters t = Session_core.counters t.core

let to_table t : Static_route.table =
  Array.map
    (fun r ->
      match r.best with
      | None -> None
      | Some (b : Route.t) ->
        Some { Static_route.as_path = b.as_path; cls = b.cls })
    t.routers
