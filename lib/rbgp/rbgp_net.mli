(** R-BGP (Kushman et al., NSDI 2007) — the comparison baseline of the
    paper's Figures 2 and 3 — with the root-cause-information (RCI)
    mechanism switchable on and off.

    Two mechanisms are layered on top of the standard BGP engine semantics
    (same decision process, export policy, MRAI, delays):

    - {b Failover paths}: every router advertises, to the neighbour that is
      the next hop of its best path, the most disjoint alternate path from
      its RIB. A router that has lost its route deflects packets back to a
      neighbour that advertised a failover path; the deflected packet is
      then pinned to that path (virtual-interface semantics), so it is
      delivered iff every link of the path is up.
    - {b RCI}: updates triggered by a failure carry the root cause (the
      failed link or node). Receivers immediately purge every RIB entry
      whose path traverses the failed element and reject such paths in
      later updates, suppressing the exploration of stale paths. With
      [~rci:false] the purge is disabled and R-BGP degrades accordingly
      (the "R-BGP without RCI" bars of the paper).

    Simplifications relative to the full NSDI protocol are documented in
    DESIGN.md (design decision 8). *)

type t

val create :
  Sim.t ->
  Topology.t ->
  dest:Topology.vertex ->
  rci:bool ->
  ?mrai_base:float ->
  ?delay_lo:float ->
  ?delay_hi:float ->
  ?detect_delay:float ->
  ?trace:Trace.sink ->
  unit ->
  t
(** Build routers and channels ({!Session_core}). [trace] (default
    {!Trace.null}) receives the session substrate's events plus
    per-router decision changes. [detect_delay] (default
    0) postpones the control-plane reaction to every subsequent
    {!fail_link}. *)

val start : t -> unit
(** The destination announces its prefix; run the sim to converge. *)

val sim : t -> Sim.t
val dest : t -> Topology.vertex

val fail_link : t -> Topology.vertex -> Topology.vertex -> unit
(** Fail a link at the current simulation time; adjacent routers react
    after the creation-time [detect_delay] (default 0) and learn the root
    cause; with RCI enabled they propagate it. *)

val fail_node : t -> Topology.vertex -> unit

val recover_link : t -> Topology.vertex -> Topology.vertex -> unit
(** Bring a link back: sessions re-establish, both ends re-advertise, and
    the link's root cause is cleared everywhere (routes through it are
    valid again). *)

val recover_node : t -> Topology.vertex -> unit
(** Bring a failed AS back: its links come up, sessions re-establish and
    neighbours re-announce. The node's root cause is cleared everywhere and
    the returning router restarts with empty RIBs and no known causes. *)

val deny_export : t -> Topology.vertex -> Topology.vertex -> unit
(** Policy change: stop exporting to a neighbour (withdrawal follows). *)

val allow_export : t -> Topology.vertex -> Topology.vertex -> unit
(** Revert {!deny_export}. *)

val best : t -> Topology.vertex -> Route.t option

val failover_choices : t -> Topology.vertex -> Topology.vertex list list
(** The failover paths currently stored at an AS (each starts at the
    advertising neighbour), in the deterministic order the forwarding plane
    tries them. Exposed for tests. *)

val walk_all : t -> Fwd_walk.status array
(** Forwarding status of every AS under R-BGP forwarding: primary next hop
    when available, otherwise deflection onto a stored failover path. *)

val message_count : t -> int
val last_change : t -> float
val counters : t -> Counters.t
val to_table : t -> Static_route.table
