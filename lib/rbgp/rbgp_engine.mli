(** {!Rbgp_net} packed as first-class {!Engine.S} values — the two
    paper variants are registered under ["R-BGP without RCI"] and
    ["R-BGP"] at module initialisation. *)

val no_rci : (module Engine.S)
val rci : (module Engine.S)

val make : rci:bool -> name:string -> (module Engine.S)
(** A custom-named R-BGP variant (not registered). *)
