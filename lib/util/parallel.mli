(** Deterministic fixed-size domain pool for embarrassingly parallel
    experiment batches.

    Every (protocol, scenario, instance) run in this repository is an
    independent job driven by its own seeded [Sim.t] / [Random.State.t],
    so the only thing a parallel executor must guarantee is that it does
    not introduce nondeterminism of its own. This pool guarantees:

    - {b submission-order results}: [run_batch] returns results indexed
      exactly like the submitted jobs, whatever order the workers happened
      to finish in;
    - {b no hidden randomness}: the pool itself never touches any RNG;
      jobs are responsible for deriving all randomness from explicit
      per-job seeds (the test suite greps [lib/] for uses of the global
      [Random] module to keep it that way);
    - {b same seeds ⇒ same results for any worker count}: a job never
      observes which worker runs it or how many workers exist, so
      [jobs = 1] and [jobs = 64] produce bit-identical outputs.

    The pool is a batch executor, not a task graph: one batch runs at a
    time and the submitting thread participates as a worker ([create
    ~jobs:1] therefore spawns no domain at all and runs everything
    inline, which is the sequential baseline by construction). Submitting
    from multiple threads concurrently is not supported. *)

type t
(** A pool of worker domains. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the bench fleet's default. *)

val create : ?jobs:int -> unit -> t
(** Pool with [jobs] workers (default {!default_jobs}, clamped to at least
    1). The submitter counts as one worker, so [jobs - 1] domains are
    spawned; they idle on a condition variable between batches. *)

val jobs : t -> int
(** The worker count the pool was created with. *)

val shutdown : t -> unit
(** Join all worker domains. Idempotent. Submitting to a shut-down pool
    raises [Invalid_argument]. Never call while a batch is in flight. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] over a fresh pool and shuts it down afterwards,
    also on exception. *)

val run_batch : t -> (unit -> 'a) array -> 'a array
(** Execute every thunk, each exactly once, on the pool's workers and
    return their results in submission order. If one or more jobs raise,
    the remaining jobs still run to completion and the exception of the
    {e lowest-indexed} failing job is re-raised in the submitter (with its
    backtrace). The empty batch returns immediately.
    @raise Invalid_argument if the pool is shut down or already running a
    batch (re-entrant submission from inside a job). *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map pool f xs] is [List.map f xs] with the applications distributed
    over the pool — same order, same exception contract as
    {!run_batch}. *)

val mapi : t -> (int -> 'a -> 'b) -> 'a list -> 'b list
(** Like {!map} with the submission index (the usual per-job seed
    offset). *)

val try_map : t -> ('a -> 'b) -> 'a list -> ('b, exn) result list
(** Like {!map} but a raising job yields its own [Error] row instead of
    re-raising in the submitter: the sweep completes and reports partial
    data. Results are in submission order. *)

val map_reduce :
  t -> map:('a -> 'b) -> reduce:('acc -> 'b -> 'acc) -> init:'acc ->
  'a list -> 'acc
(** [map_reduce pool ~map ~reduce ~init xs] maps in parallel, then folds
    the results {e sequentially in submission order} in the submitter —
    deterministic even for non-commutative [reduce]. *)
