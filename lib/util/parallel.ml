(* A deterministic batch executor over a fixed set of domains.

   Batches are published to the workers through a (mutex, condvar,
   generation counter) handshake; within a batch, jobs are claimed with a
   single atomic fetch-and-add, results land in a per-batch array slot
   owned by the claiming worker, and the last finisher wakes the
   submitter. The submitter participates in the claim loop, so a pool of
   [jobs = 1] spawns no domain and degenerates to a plain sequential
   loop. *)

type batch = {
  run : int -> unit;  (* claim-owner executes job [i] and stores its slot *)
  size : int;
  next : int Atomic.t;  (* next unclaimed index *)
}

type t = {
  size : int;
  mutex : Mutex.t;
  work : Condition.t;  (* wakes workers: new generation or shutdown *)
  finished : Condition.t;  (* wakes the submitter: a batch completed *)
  mutable current : batch option;
  mutable generation : int;  (* bumped once per published batch *)
  mutable closed : bool;
  mutable domains : unit Domain.t list;
}

let default_jobs () = Domain.recommended_domain_count ()

let claim_all (b : batch) =
  let rec go () =
    let i = Atomic.fetch_and_add b.next 1 in
    if i < b.size then (b.run i; go ())
  in
  go ()

(* Workers sleep between batches and re-check on every wake-up: a worker
   that slept through an entire batch sees [current = None] and just
   resynchronises its generation. *)
let rec worker_loop t gen =
  Mutex.lock t.mutex;
  while (not t.closed) && t.generation = gen do
    Condition.wait t.work t.mutex
  done;
  if t.closed then Mutex.unlock t.mutex
  else begin
    let gen = t.generation in
    let b = t.current in
    Mutex.unlock t.mutex;
    Option.iter claim_all b;
    worker_loop t gen
  end

let create ?jobs () =
  let size = max 1 (Option.value jobs ~default:(default_jobs ())) in
  let t =
    {
      size;
      mutex = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      current = None;
      generation = 0;
      closed = false;
      domains = [];
    }
  in
  t.domains <- List.init (size - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t 0));
  t

let jobs t = t.size

let shutdown t =
  Mutex.lock t.mutex;
  let domains = t.domains in
  t.closed <- true;
  t.domains <- [];
  Condition.broadcast t.work;
  Mutex.unlock t.mutex;
  List.iter Domain.join domains

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let run_batch (type a) t (thunks : (unit -> a) array) : a array =
  let n = Array.length thunks in
  if n = 0 then [||]
  else begin
    let results :
        (a, exn * Printexc.raw_backtrace) result option array =
      Array.make n None
    in
    let left = Atomic.make n in
    let run i =
      let r =
        try Ok (thunks.(i) ())
        with e -> Error (e, Printexc.get_raw_backtrace ())
      in
      results.(i) <- Some r;
      if Atomic.fetch_and_add left (-1) = 1 then begin
        (* last job of the batch: wake the submitter *)
        Mutex.lock t.mutex;
        Condition.broadcast t.finished;
        Mutex.unlock t.mutex
      end
    in
    let b = { run; size = n; next = Atomic.make 0 } in
    Mutex.lock t.mutex;
    if t.closed then begin
      Mutex.unlock t.mutex;
      invalid_arg "Parallel.run_batch: pool is shut down"
    end;
    if t.current <> None then begin
      Mutex.unlock t.mutex;
      invalid_arg "Parallel.run_batch: pool already running a batch"
    end;
    t.current <- Some b;
    t.generation <- t.generation + 1;
    Condition.broadcast t.work;
    Mutex.unlock t.mutex;
    claim_all b;
    Mutex.lock t.mutex;
    while Atomic.get left > 0 do
      Condition.wait t.finished t.mutex
    done;
    t.current <- None;
    Mutex.unlock t.mutex;
    (* all slots filled (left reached 0); re-raise the first failure in
       submission order, otherwise extract in submission order *)
    Array.iter
      (function
        | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
        | Some (Ok _) | None -> ())
      results;
    Array.map
      (function
        | Some (Ok v) -> v
        | Some (Error _) | None -> assert false)
      results
  end

let mapi t f xs =
  Array.to_list
    (run_batch t (Array.of_list (List.mapi (fun i x -> fun () -> f i x) xs)))

let map t f xs = mapi t (fun _ x -> f x) xs

(* Per-job exception capture: wrap each thunk so the batch always returns
   and a crashing job becomes an [Error] row instead of poisoning the whole
   sweep. *)
let try_map t f xs =
  Array.to_list
    (run_batch t
       (Array.of_list
          (List.map
             (fun x -> fun () -> try Ok (f x) with e -> Error e)
             xs)))

let map_reduce t ~map:f ~reduce ~init xs =
  List.fold_left reduce init (map t f xs)
