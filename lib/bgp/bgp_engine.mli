(** {!Bgp_net} packed as a first-class {!Engine.S}, registered in the
    {!Engine.Registry} under ["BGP"] at module initialisation. *)

val engine : (module Engine.S)
