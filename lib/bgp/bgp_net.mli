(** Event-driven standard-BGP network for a single destination prefix.

    One router per AS, one ordered {!Channel} per directed link, delays
    uniform in [10 ms, 20 ms], per-peer MRAI of 30 s × U[0.75, 1.0] applied
    to announcements (withdrawals are immediate). Policies are the paper's:
    prefer-customer selection ({!Decision}) and valley-free export
    ({!Export}), which make the protocol safe (Gao–Rexford), so every run
    terminates with a drained event queue.

    Failures are injected through {!fail_link} / {!fail_node}; adjacent
    routers react immediately (session reset: RIB entries from the peer are
    flushed and in-flight messages on the link are lost). *)

type t

val create :
  Sim.t ->
  Topology.t ->
  dest:Topology.vertex ->
  ?mrai_base:float ->
  ?delay_lo:float ->
  ?delay_hi:float ->
  ?detect_delay:float ->
  ?trace:Trace.sink ->
  unit ->
  t
(** Build routers and channels ({!Session_core}). Nothing is announced
    until {!start}. [trace] (default {!Trace.null}) receives the session
    substrate's events plus per-router decision changes.
    [detect_delay] (default 0 — instantaneous detection)
    postpones the control-plane reaction to every subsequent {!fail_link}
    while the data plane is already broken. *)

val start : t -> unit
(** The destination announces its own prefix to all neighbours (time 0 of
    the experiment). Call exactly once, then {!Sim.run}. *)

val sim : t -> Sim.t
val topology : t -> Topology.t
val dest : t -> Topology.vertex

(** {1 Failure injection} — take effect at the current simulation time. *)

val fail_link : t -> Topology.vertex -> Topology.vertex -> unit
(** Bring a link down: the data plane breaks immediately (packets crossing
    the link are lost) and, after the [detect_delay] the network was
    created with, both end routers flush the peer's routes and withdraw /
    re-advertise as needed. In-flight messages on the link are lost.
    @raise Invalid_argument if the vertices are not adjacent. *)

val recover_link : t -> Topology.vertex -> Topology.vertex -> unit
(** Bring a link back: the session re-establishes and both sides
    re-advertise their current best routes. *)

val fail_node : t -> Topology.vertex -> unit
(** Fail an AS entirely: all its links go down and it stops participating
    (the paper's single node failure event). *)

val recover_node : t -> Topology.vertex -> unit
(** Bring a failed AS back: its links come up (except those failed
    individually), sessions re-establish and neighbours re-announce; the
    returning router restarts with empty RIBs (and re-originates if it is
    the destination). *)

val deny_export : t -> Topology.vertex -> Topology.vertex -> unit
(** Policy change: the first AS stops exporting routes to the second (an
    immediate withdrawal follows if something was advertised) — the
    paper's route-withdrawal event without any physical failure; the link
    stays up for whatever still uses it. *)

val allow_export : t -> Topology.vertex -> Topology.vertex -> unit
(** Revert {!deny_export}: a route addition event (Lemma 3.1). *)

(** {1 Observation} *)

val best : t -> Topology.vertex -> Route.t option
(** Current best route of an AS ([Some Route.origin] at the destination). *)

val next_hop : t -> Topology.vertex -> Topology.vertex option

val to_table : t -> Static_route.table
(** Snapshot of all current best routes in the oracle's table format, for
    direct comparison with {!Static_route.compute}. *)

val walk_all : t -> Fwd_walk.status array
(** Forwarding-plane status of every AS right now: each AS forwards along
    its current best route; a hop over a failed link or into a failed node
    drops the packet. *)

val message_count : t -> int
(** Total update messages (announcements + withdrawals) sent so far. *)

val last_change : t -> float
(** Simulation time of the most recent best-route change anywhere
    (0. if none): the convergence instant once the queue drains. *)

val route_changes : t -> int
(** Total number of best-route changes across all routers. *)

val counters : t -> Counters.t
(** The engine's live {!Session_core} update counters. *)
