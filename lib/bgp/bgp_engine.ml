let engine : (module Engine.S) =
  (module struct
    type t = Bgp_net.t

    let name = "BGP"

    let create sim topo ~dest (c : Engine.config) =
      Bgp_net.create sim topo ~dest ~mrai_base:c.mrai_base
        ~delay_lo:c.delay_lo ~delay_hi:c.delay_hi
        ~detect_delay:c.detect_delay ~trace:c.trace ()

    let start = Bgp_net.start
    let fail_link = Bgp_net.fail_link
    let recover_link = Bgp_net.recover_link
    let fail_node = Bgp_net.fail_node
    let recover_node = Bgp_net.recover_node
    let deny_export = Bgp_net.deny_export
    let allow_export = Bgp_net.allow_export
    let probe = Bgp_net.walk_all
    let message_count = Bgp_net.message_count
    let last_change = Bgp_net.last_change
    let counters = Bgp_net.counters
  end)

let () = Engine.Registry.register engine
