type msg = Announce of Topology.vertex list | Withdraw

type router = {
  v : Topology.vertex;
  mutable best : Route.t option;
  adj_rib_in : (Topology.vertex, Route.t) Hashtbl.t;
  rib_out : (Topology.vertex, Topology.vertex list) Hashtbl.t;
  export_deny : (Topology.vertex, unit) Hashtbl.t;
      (** neighbours this router's policy currently forbids exporting to *)
  mrai : (Topology.vertex, Mrai.t) Hashtbl.t;
  chans : (Topology.vertex, msg Channel.t) Hashtbl.t;
}

type t = {
  sim : Sim.t;
  topo : Topology.t;
  dest : Topology.vertex;
  routers : router array;
  links : Link_state.t;
  mutable messages : int;
  mutable last_change : float;
  mutable route_changes : int;
}

let sim t = t.sim
let topology t = t.topo
let dest t = t.dest

let rel_exn t u v =
  match Topology.rel t.topo u v with
  | Some r -> r
  | None -> invalid_arg "Bgp_net: vertices not adjacent"

(* --- sending ------------------------------------------------------- *)

let send t r n msg =
  t.messages <- t.messages + 1;
  Channel.send (Hashtbl.find r.chans n) msg

(* Reconcile what neighbour [n] should currently hear from [r] with what
   it last heard; send the delta, deferring announcements under MRAI. *)
let rec advertise_to t r n =
  if Link_state.link_up t.links r.v n then begin
    let to_rel = rel_exn t r.v n in
    let desired =
      match r.best with
      | Some b
        when Route.learned_from b <> Some n
             && Export.exportable b ~to_rel
             && not (Hashtbl.mem r.export_deny n) ->
        Some (r.v :: b.as_path)
      | Some _ | None -> None
    in
    let current = Hashtbl.find_opt r.rib_out n in
    match (desired, current) with
    | None, None -> ()
    | None, Some _ ->
      (* withdrawals are immediate *)
      Hashtbl.remove r.rib_out n;
      send t r n Withdraw
    | Some p, Some p' when p = p' -> ()
    | Some p, (Some _ | None) ->
      let m = Hashtbl.find r.mrai n in
      let now = Sim.now t.sim in
      if Mrai.ready m ~now then begin
        Mrai.note_sent m ~now;
        Hashtbl.replace r.rib_out n p;
        send t r n (Announce p)
      end
      else if not (Mrai.flush_scheduled m) then begin
        Mrai.set_flush_scheduled m true;
        Sim.schedule_at t.sim ~time:(Mrai.next_allowed m) (fun _ ->
            Mrai.set_flush_scheduled m false;
            advertise_to t r n)
      end
  end

let advertise_all t r =
  Array.iter (fun (n, _) -> advertise_to t r n) (Topology.neighbors t.topo r.v)

(* --- decision ------------------------------------------------------ *)

let recompute t r =
  let best' =
    if r.v = t.dest then Some Route.origin else Decision.select_tbl r.adj_rib_in
  in
  if best' <> r.best then begin
    r.best <- best';
    t.last_change <- Sim.now t.sim;
    t.route_changes <- t.route_changes + 1;
    advertise_all t r
  end

(* --- receiving ----------------------------------------------------- *)

let receive t r ~from msg =
  if Link_state.node_up t.links r.v then begin
    (match msg with
    | Announce path ->
      if List.mem r.v path then
        (* own AS in path: discard, dropping any previous route from the
           peer (implicit withdraw) *)
        Hashtbl.remove r.adj_rib_in from
      else
        Hashtbl.replace r.adj_rib_in from
          { Route.as_path = path; cls = rel_exn t r.v from }
    | Withdraw -> Hashtbl.remove r.adj_rib_in from);
    recompute t r
  end

(* --- construction -------------------------------------------------- *)

let create sim topo ~dest ?(mrai_base = 30.) ?(delay_lo = 0.010)
    ?(delay_hi = 0.020) () =
  let n = Topology.num_vertices topo in
  if dest < 0 || dest >= n then invalid_arg "Bgp_net.create: bad destination";
  let routers =
    Array.init n (fun v ->
        {
          v;
          best = None;
          adj_rib_in = Hashtbl.create 8;
          rib_out = Hashtbl.create 8;
          export_deny = Hashtbl.create 2;
          mrai = Hashtbl.create 8;
          chans = Hashtbl.create 8;
        })
  in
  let t =
    {
      sim;
      topo;
      dest;
      routers;
      links = Link_state.create ~n;
      messages = 0;
      last_change = 0.;
      route_changes = 0;
    }
  in
  (* channels and MRAI state for every directed link *)
  Array.iter
    (fun u ->
      Array.iter
        (fun (v, _) ->
          let deliver msg =
            (* messages in flight when a link fails are lost *)
            if Link_state.link_up t.links u v then
              receive t routers.(v) ~from:u msg
          in
          Hashtbl.replace routers.(u).chans v
            (Channel.create sim ~delay_lo ~delay_hi ~deliver);
          Hashtbl.replace routers.(u).mrai v (Mrai.create (Sim.rng sim) ~base:mrai_base ()))
        (Topology.neighbors topo u))
    (Topology.vertices topo);
  t

let start t = recompute t t.routers.(t.dest)

(* --- failures ------------------------------------------------------ *)

let drop_session t u v =
  let ru = t.routers.(u) and rv = t.routers.(v) in
  Hashtbl.remove ru.adj_rib_in v;
  Hashtbl.remove ru.rib_out v;
  Hashtbl.remove rv.adj_rib_in u;
  Hashtbl.remove rv.rib_out u

let fail_link ?(detect_delay = 0.) t u v =
  if Topology.rel t.topo u v = None then
    invalid_arg "Bgp_net.fail_link: vertices not adjacent";
  if detect_delay < 0. then invalid_arg "Bgp_net.fail_link: negative delay";
  (* the data plane breaks immediately; the control plane reacts once the
     session failure is detected (hold timers, BFD, ...) *)
  Link_state.fail_link t.links u v;
  let react _ =
    drop_session t u v;
    recompute t t.routers.(u);
    recompute t t.routers.(v)
  in
  if detect_delay = 0. then react t.sim
  else Sim.schedule t.sim ~delay:detect_delay react

let recover_link t u v =
  if Topology.rel t.topo u v = None then
    invalid_arg "Bgp_net.recover_link: vertices not adjacent";
  Link_state.recover_link t.links u v;
  drop_session t u v;
  (* session re-establishes: each side advertises its current best *)
  advertise_to t t.routers.(u) v;
  advertise_to t t.routers.(v) u

let fail_node t v =
  Link_state.fail_node t.links v;
  let r = t.routers.(v) in
  Hashtbl.reset r.adj_rib_in;
  Hashtbl.reset r.rib_out;
  r.best <- None;
  Array.iter
    (fun (n, _) ->
      let rn = t.routers.(n) in
      Hashtbl.remove rn.adj_rib_in v;
      Hashtbl.remove rn.rib_out v;
      recompute t rn)
    (Topology.neighbors t.topo v)

let recover_node t v =
  Link_state.recover_node t.links v;
  let r = t.routers.(v) in
  (* re-originates if [v] is the destination; otherwise the RIBs are empty
     and best stays None until neighbours re-announce *)
  recompute t r;
  Array.iter
    (fun (n, _) ->
      (* sessions re-establish: each side advertises its current best *)
      advertise_to t t.routers.(n) v;
      advertise_to t r n)
    (Topology.neighbors t.topo v)

let deny_export t v n =
  if Topology.rel t.topo v n = None then
    invalid_arg "Bgp_net.deny_export: vertices not adjacent";
  Hashtbl.replace t.routers.(v).export_deny n ();
  advertise_to t t.routers.(v) n

let allow_export t v n =
  if Topology.rel t.topo v n = None then
    invalid_arg "Bgp_net.allow_export: vertices not adjacent";
  Hashtbl.remove t.routers.(v).export_deny n;
  advertise_to t t.routers.(v) n

(* --- observation ---------------------------------------------------- *)

let best t v = t.routers.(v).best

let next_hop t v =
  match t.routers.(v).best with None -> None | Some b -> Route.learned_from b

let to_table t : Static_route.table =
  Array.map
    (fun r ->
      match r.best with
      | None -> None
      | Some (b : Route.t) ->
        Some { Static_route.as_path = b.as_path; cls = b.cls })
    t.routers

let walk_all t =
  let step v () =
    if not (Link_state.node_up t.links v) then `Drop
    else
      match t.routers.(v).best with
      | None -> `Drop
      | Some b -> begin
        match Route.learned_from b with
        | None -> `Drop (* origin route away from dest: cannot happen *)
        | Some nh ->
          if Link_state.link_up t.links v nh then `Forward (nh, ()) else `Drop
      end
  in
  Fwd_walk.walk_all
    ~n:(Topology.num_vertices t.topo)
    ~dest:t.dest
    ~start:(fun _ -> ())
    ~step
    ~state_id:(fun () -> 0)
    ~num_states:1

let message_count t = t.messages
let last_change t = t.last_change
let route_changes t = t.route_changes
