type msg = Announce of Topology.vertex list | Withdraw

type router = {
  v : Topology.vertex;
  mutable best : Route.t option;
  adj_rib_in : (Topology.vertex, Route.t) Hashtbl.t;
  rib_out : (Topology.vertex, Topology.vertex list) Hashtbl.t;
  export_deny : (Topology.vertex, unit) Hashtbl.t;
      (** neighbours this router's policy currently forbids exporting to *)
}

type t = {
  core : msg Session_core.t;
  topo : Topology.t;
  dest : Topology.vertex;
  routers : router array;
  mutable route_changes : int;
}

let sim t = Session_core.sim t.core
let topology t = t.topo
let dest t = t.dest

let rel_exn t u v =
  match Topology.rel t.topo u v with
  | Some r -> r
  | None -> invalid_arg "Bgp_net: vertices not adjacent"

(* --- advertisement: policy on top of the shared skeleton ------------- *)

let rec advertise_to t r n =
  let desired =
    match r.best with
    | Some b
      when Route.learned_from b <> Some n
           && Export.exportable b ~to_rel:(rel_exn t r.v n)
           && not (Hashtbl.mem r.export_deny n) ->
      Some (r.v :: b.as_path)
    | Some _ | None -> None
  in
  Session_core.advertise t.core ~src:r.v ~dst:n ~rib_out:r.rib_out ~desired
    ~announce:(fun p -> Announce p)
    ~withdraw:(fun () -> Withdraw)
    ~retry:(fun () -> advertise_to t r n)
    ()

let advertise_all t r =
  Array.iter (fun (n, _) -> advertise_to t r n) (Topology.neighbors t.topo r.v)

(* --- decision ------------------------------------------------------ *)

(* Why the old and new best differed, for the trace. *)
let decision_cause ~old_best ~new_best =
  match (old_best, new_best) with
  | _, None -> "route-loss"
  | None, Some _ -> "route-learned"
  | Some _, Some _ -> "route-change"

let recompute t r =
  let best' =
    if r.v = t.dest then Some Route.origin else Decision.select_tbl r.adj_rib_in
  in
  if best' <> r.best then begin
    let old_next = Option.bind r.best Route.learned_from in
    let cause = decision_cause ~old_best:r.best ~new_best:best' in
    r.best <- best';
    Session_core.note_decision t.core ~node:r.v ~old_next
      ~new_next:(Option.bind best' Route.learned_from)
      ~cause;
    t.route_changes <- t.route_changes + 1;
    advertise_all t r
  end

(* --- receiving ----------------------------------------------------- *)

let receive t r ~from msg =
  if Session_core.node_up t.core r.v then begin
    (match msg with
    | Announce path ->
      if List.mem r.v path then
        (* own AS in path: discard, dropping any previous route from the
           peer (implicit withdraw) *)
        Hashtbl.remove r.adj_rib_in from
      else
        Hashtbl.replace r.adj_rib_in from
          { Route.as_path = path; cls = rel_exn t r.v from }
    | Withdraw -> Hashtbl.remove r.adj_rib_in from);
    recompute t r
  end

(* --- construction -------------------------------------------------- *)

let create sim topo ~dest ?(mrai_base = 30.) ?(delay_lo = 0.010)
    ?(delay_hi = 0.020) ?(detect_delay = 0.) ?(trace = Trace.null) () =
  let n = Topology.num_vertices topo in
  if dest < 0 || dest >= n then invalid_arg "Bgp_net.create: bad destination";
  let routers =
    Array.init n (fun v ->
        {
          v;
          best = None;
          adj_rib_in = Hashtbl.create 8;
          rib_out = Hashtbl.create 8;
          export_deny = Hashtbl.create 2;
        })
  in
  let core =
    Session_core.create ~mrai_base ~delay_lo ~delay_hi ~detect_delay ~trace
      ~who:"Bgp_net" sim topo
  in
  let t = { core; topo; dest; routers; route_changes = 0 } in
  Session_core.on_receive core (fun ~src ~dst msg ->
      receive t t.routers.(dst) ~from:src msg);
  t

let start t = recompute t t.routers.(t.dest)

(* --- failures ------------------------------------------------------ *)

let drop_session t u v =
  let ru = t.routers.(u) and rv = t.routers.(v) in
  Hashtbl.remove ru.adj_rib_in v;
  Hashtbl.remove ru.rib_out v;
  Hashtbl.remove rv.adj_rib_in u;
  Hashtbl.remove rv.rib_out u

let fail_link t u v =
  Session_core.fail_link t.core u v ~react:(fun () ->
      drop_session t u v;
      recompute t t.routers.(u);
      recompute t t.routers.(v))

let recover_link t u v =
  Session_core.recover_link t.core u v ~react:(fun () ->
      drop_session t u v;
      (* session re-establishes: each side advertises its current best *)
      advertise_to t t.routers.(u) v;
      advertise_to t t.routers.(v) u)

let fail_node t v =
  Session_core.fail_node t.core v;
  let r = t.routers.(v) in
  Hashtbl.reset r.adj_rib_in;
  Hashtbl.reset r.rib_out;
  r.best <- None;
  Array.iter
    (fun (n, _) ->
      let rn = t.routers.(n) in
      Hashtbl.remove rn.adj_rib_in v;
      Hashtbl.remove rn.rib_out v;
      recompute t rn)
    (Topology.neighbors t.topo v)

let recover_node t v =
  Session_core.recover_node t.core v;
  let r = t.routers.(v) in
  (* re-originates if [v] is the destination; otherwise the RIBs are empty
     and best stays None until neighbours re-announce *)
  recompute t r;
  Array.iter
    (fun (n, _) ->
      (* sessions re-establish: each side advertises its current best *)
      advertise_to t t.routers.(n) v;
      advertise_to t r n)
    (Topology.neighbors t.topo v)

let deny_export t v n =
  Session_core.check_adjacent t.core ~op:"deny_export" v n;
  Hashtbl.replace t.routers.(v).export_deny n ();
  advertise_to t t.routers.(v) n

let allow_export t v n =
  Session_core.check_adjacent t.core ~op:"allow_export" v n;
  Hashtbl.remove t.routers.(v).export_deny n;
  advertise_to t t.routers.(v) n

(* --- observation ---------------------------------------------------- *)

let best t v = t.routers.(v).best

let next_hop t v =
  match t.routers.(v).best with None -> None | Some b -> Route.learned_from b

let to_table t : Static_route.table =
  Array.map
    (fun r ->
      match r.best with
      | None -> None
      | Some (b : Route.t) ->
        Some { Static_route.as_path = b.as_path; cls = b.cls })
    t.routers

let walk_all t =
  let links = Session_core.links t.core in
  let step v () =
    if not (Link_state.node_up links v) then `Drop
    else
      match t.routers.(v).best with
      | None -> `Drop
      | Some b -> begin
        match Route.learned_from b with
        | None -> `Drop (* origin route away from dest: cannot happen *)
        | Some nh ->
          if Link_state.link_up links v nh then `Forward (nh, ()) else `Drop
      end
  in
  Fwd_walk.walk_all
    ~n:(Topology.num_vertices t.topo)
    ~dest:t.dest
    ~start:(fun _ -> ())
    ~step
    ~state_id:(fun () -> 0)
    ~num_states:1

let message_count t = Session_core.message_count t.core
let last_change t = Session_core.last_change t.core
let route_changes t = t.route_changes
let counters t = Session_core.counters t.core
