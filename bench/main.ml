(* Benchmark / reproduction harness: one target per table and figure of the
   paper's evaluation (Section 6), plus Bechamel micro-benchmarks of the
   core data structures.

     dune exec bench/main.exe                 # all figures
     dune exec bench/main.exe -- fig2         # one figure
     dune exec bench/main.exe -- all --n 4000 --instances 100   # paper scale
     dune exec bench/main.exe -- micro        # Bechamel micro-benchmarks

   Absolute counts depend on the topology size (the paper used a ~27k-AS
   RouteViews graph; the default here is 1000 ASes), so each table prints
   the measured value, the measured ratio to the BGP bar, and the paper's
   value and ratio: the ratios are the reproduction target. *)

type config = {
  n : int;
  instances : int;
  seed : int;
  samples : int;
  mrai : float;
  csv_dir : string option;
  jobs : int;
  json : string option;
  max_events : int;
  max_vtime : float;
  trace_file : string option;
}

let default_config =
  {
    n = 1000;
    instances = 30;
    seed = 1;
    samples = 100;
    mrai = 30.;
    csv_dir = None;
    jobs = Parallel.default_jobs ();
    json = None;
    max_events = Runner.default_budget.Runner.max_events;
    max_vtime = Runner.default_budget.Runner.max_vtime;
    trace_file = None;
  }

let budget cfg =
  { Runner.max_events = cfg.max_events; max_vtime = cfg.max_vtime }

let usage () =
  prerr_endline
    "usage: main.exe [fig1|fig2|fig3a|fig3b|node|policy|partial|overhead|delay|\n\
    \                 flap|churn|ablation|motivation|trace|smoke|staticcheck|\n\
    \                 all|micro]\n\
    \                [--n N] [--instances I] [--seed S] [--samples K] [--mrai M]\n\
    \                [--csv DIR] [--jobs N] [--json FILE] [--trace FILE]\n\
    \                [--max-events N] [--max-vtime SECONDS]";
  exit 2

let parse_args () =
  let target = ref "all" in
  let cfg = ref default_config in
  let rec loop = function
    | [] -> ()
    | "--n" :: v :: rest ->
      cfg := { !cfg with n = int_of_string v };
      loop rest
    | "--instances" :: v :: rest ->
      cfg := { !cfg with instances = int_of_string v };
      loop rest
    | "--seed" :: v :: rest ->
      cfg := { !cfg with seed = int_of_string v };
      loop rest
    | "--samples" :: v :: rest ->
      cfg := { !cfg with samples = int_of_string v };
      loop rest
    | "--mrai" :: v :: rest ->
      cfg := { !cfg with mrai = float_of_string v };
      loop rest
    | "--csv" :: v :: rest ->
      cfg := { !cfg with csv_dir = Some v };
      loop rest
    | "--jobs" :: v :: rest ->
      cfg := { !cfg with jobs = int_of_string v };
      loop rest
    | "--max-events" :: v :: rest ->
      cfg := { !cfg with max_events = int_of_string v };
      loop rest
    | "--max-vtime" :: v :: rest ->
      cfg := { !cfg with max_vtime = float_of_string v };
      loop rest
    | "--json" :: v :: rest ->
      (* fail now, not after a long sweep whose results would be lost *)
      (try close_out (open_out v)
       with Sys_error msg ->
         Printf.eprintf "error: --json %s: %s\n" v msg;
         exit 2);
      cfg := { !cfg with json = Some v };
      loop rest
    | "--trace" :: v :: rest ->
      (try close_out (open_out v)
       with Sys_error msg ->
         Printf.eprintf "error: --trace %s: %s\n" v msg;
         exit 2);
      cfg := { !cfg with trace_file = Some v };
      loop rest
    | name :: rest when name <> "" && name.[0] <> '-' ->
      target := name;
      loop rest
    | _ -> usage ()
  in
  loop (List.tl (Array.to_list Sys.argv));
  (!target, !cfg)

let the_topology = ref None

let topology cfg =
  match !the_topology with
  | Some t -> t
  | None ->
    let t = Topo_gen.generate (Topo_gen.default_params ~seed:cfg.seed ~n:cfg.n ()) in
    Format.printf "topology: %a@.@." Topology.pp_stats t;
    the_topology := Some t;
    t

let section title = Format.printf "=== %s ===@." title

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  let dt = Unix.gettimeofday () -. t0 in
  Format.printf "(%.1fs)@.@." dt;
  (r, dt)

(* --- machine-readable bench output ------------------------------------ *)

(* One entry per executed target; flushed as a single JSON document by
   [write_json] so perf trajectories can be tracked in BENCH_*.json
   files. *)
let json_entries : string list ref = ref []

let record_target ?bars ?counters name wall =
  (* optional fields render exactly as before when absent, so pinned
     BENCH_*.json payloads (e.g. fig2's bars) stay byte-identical *)
  let opt field = function
    | None -> ""
    | Some j -> Printf.sprintf ", \"%s\": %s" field j
  in
  json_entries :=
    Printf.sprintf "{\"target\": %S, \"wall_s\": %.3f%s%s}" name wall
      (opt "bars" bars) (opt "counters" counters)
    :: !json_entries

let write_json cfg =
  match cfg.json with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    Printf.fprintf oc
      "{\"n\": %d, \"instances\": %d, \"seed\": %d, \"mrai\": %g, \"jobs\": \
       %d,\n \"targets\": [\n  %s\n]}\n"
      cfg.n cfg.instances cfg.seed cfg.mrai cfg.jobs
      (String.concat ",\n  " (List.rev !json_entries));
    close_out oc;
    Format.printf "(wrote %s)@." path

(* --- figure targets --------------------------------------------------- *)

let fig1 _pool cfg =
  section "Figure 1: CDF of Phi_k (probability that all ASes get both colours)";
  let (), wall =
    timed (fun () ->
        let r =
          Experiment.fig1 ~samples:cfg.samples
            ~intelligent_samples:(max 10 (cfg.samples / 3))
            ~seed:cfg.seed (topology cfg)
        in
        Format.printf "%a@." Report.pp_fig1 r)
  in
  record_target "fig1" wall

let write_csv cfg name content =
  match cfg.csv_dir with
  | None -> ()
  | Some dir ->
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let path = Filename.concat dir (name ^ ".csv") in
    let oc = open_out path in
    output_string oc content;
    close_out oc;
    Format.printf "(wrote %s)@." path

let bars pool cfg ~csv_name title scenario paper =
  section title;
  let rows, wall =
    timed (fun () ->
        let rows =
          Experiment.failure_bars_stats ~pool ~instances:cfg.instances
            ~seed:cfg.seed ~mrai_base:cfg.mrai ~scenario (topology cfg)
        in
        Format.printf "%a@." (Report.pp_bars_stats ~paper) rows;
        write_csv cfg csv_name (Report.bars_to_csv rows);
        rows)
  in
  record_target csv_name wall ~bars:(Report.bars_stats_to_json rows)

let fig2 pool cfg =
  bars pool cfg ~csv_name:"fig2"
    "Figure 2: ASes with transient problems, single provider-link failure"
    Scenario.single_link Report.paper_fig2

let fig3a pool cfg =
  bars pool cfg ~csv_name:"fig3a"
    "Figure 3(a): two failed links not connected to the same AS"
    Scenario.two_links_apart Report.paper_fig3a

let fig3b pool cfg =
  bars pool cfg ~csv_name:"fig3b"
    "Figure 3(b): two failed links connected to the same AS"
    Scenario.two_links_shared Report.paper_fig3b

let node pool cfg =
  (* Section 6.2.2's closing remark: single node (AS) failures show the
     same conclusions as Figure 3(b); reuse its paper column. *)
  bars pool cfg ~csv_name:"node"
    "Node failure: one provider of the origin fails entirely"
    Scenario.node_failure Report.paper_fig3b

let policy pool cfg =
  section
    "Policy-change event: the origin stops announcing to one provider \
     (same event class as Figure 2, no physical failure)";
  let b, wall =
    timed (fun () ->
        let b =
          Experiment.failure_bars ~pool ~instances:cfg.instances ~seed:cfg.seed
            ~mrai_base:cfg.mrai ~scenario:Scenario.policy_withdraw
            (topology cfg)
        in
        Format.printf "%a@." Report.pp_bars_plain b;
        b)
  in
  record_target "policy" wall ~bars:(Report.bars_to_json b)

let partial pool cfg =
  section "Section 6.3: partial deployment at tier-1 ASes only";
  let (), wall =
    timed (fun () ->
        let f = Experiment.partial_deployment (topology cfg) in
        Format.printf
          "fraction of destinations with two disjoint tier-1 downhill paths: \
           %.3f   (paper: ~0.75)@."
          f;
        Format.printf "incremental deployment (STAMP at tiers <= k, static):@.";
        List.iter
          (fun (k, frac) ->
            Format.printf "  k = %d : %5.1f%% of destinations protected@." k
              (100. *. frac))
          (Phi.deployment_curve (topology cfg) ~max_tier:3);
        Format.printf
          "incremental deployment (dynamic: avg transient ASes, single-link \
           workload):@.";
        let bgp_avg =
          List.assoc Runner.Bgp
            (Experiment.failure_bars ~pool
               ~instances:(max 5 (cfg.instances / 3))
               ~seed:cfg.seed ~scenario:Scenario.single_link (topology cfg))
        in
        Format.printf "  plain BGP        : %8.1f@." bgp_avg;
        List.iter
          (fun (k, avg) -> Format.printf "  STAMP at k <= %d  : %8.1f@." k avg)
          (Experiment.partial_deployment_dynamic ~pool
             ~instances:(max 5 (cfg.instances / 3))
             ~seed:cfg.seed ~max_tier:2 (topology cfg)))
  in
  record_target "partial" wall

let overhead_delay pool cfg =
  section "Section 6.3: protocol message overhead and convergence delay";
  let (), wall =
    timed (fun () ->
        let rows =
          Experiment.overhead_and_delay ~pool ~instances:cfg.instances
            ~seed:cfg.seed ~mrai_base:cfg.mrai (topology cfg)
        in
        Format.printf "%a@." Report.pp_overhead rows)
  in
  record_target "overhead" wall

let ablation pool cfg =
  let t0 = Unix.gettimeofday () in
  section "Ablation: STAMP protocol variants (avg ASes with transient problems)";
  ignore @@ timed (fun () ->
      List.iter
        (fun (label, avg) -> Format.printf "  %-45s %8.1f@." label avg)
        (Experiment.ablation_stamp_variants ~pool
           ~instances:(max 5 (cfg.instances / 2))
           ~seed:cfg.seed (topology cfg)));
  section
    "Ablation: MRAI base interval (affected ASes / reconvergence delay)";
  ignore @@ timed (fun () ->
      List.iter
        (fun (mrai, rows) ->
          Format.printf "  MRAI base %5.1fs:" mrai;
          List.iter
            (fun (p, transients, delay) ->
              Format.printf "  %s=%.1f/%.1fs" (Runner.protocol_name p)
                transients delay)
            rows;
          Format.printf "@.")
        (Experiment.ablation_mrai ~pool
           ~instances:(max 5 (cfg.instances / 3))
           ~seed:cfg.seed
           ~values:[ 0.; 5.; 15.; 30.; 60. ]
           (topology cfg)));
  section
    "Ablation: control-plane detection delay (data-plane fallbacks keep \
     working)";
  ignore @@ timed (fun () ->
      List.iter
        (fun (delay, bars) ->
          Format.printf "  detect after %5.2fs:" delay;
          List.iter
            (fun (p, avg) ->
              Format.printf "  %s=%.1f" (Runner.protocol_name p) avg)
            bars;
          Format.printf "@.")
        (Experiment.ablation_detection ~pool
           ~instances:(max 5 (cfg.instances / 3))
           ~seed:cfg.seed
           ~values:[ 0.; 0.5; 2.; 10. ]
           (topology cfg)));
  section "Ablation: topology-family sensitivity (single-link workload)";
  ignore @@ timed (fun () ->
      List.iter
        (fun (label, bars) ->
          Format.printf "  %-22s" label;
          List.iter
            (fun (p, avg) ->
              Format.printf "  %s=%.1f" (Runner.protocol_name p) avg)
            bars;
          Format.printf "@.")
        (Experiment.ablation_topology ~pool
           ~instances:(max 4 (cfg.instances / 4))
           ~seed:cfg.seed ~n:(min cfg.n 600) ()));
  section "Ablation: transient-monitor probe interval (BGP)";
  ignore @@ timed (fun () ->
      List.iter
        (fun (interval, avg) ->
          Format.printf "  probe every %6.3fs: %8.1f affected ASes@." interval avg)
        (Experiment.ablation_probe_interval ~pool
           ~instances:(max 5 (cfg.instances / 3))
           ~seed:cfg.seed
           ~values:[ 0.01; 0.02; 0.05; 0.2; 1.0 ]
           (topology cfg)));
  record_target "ablation" (Unix.gettimeofday () -. t0)

let motivation pool cfg =
  section
    "Motivation check (Section 1): share of packet-loss observations that \
     are loops";
  let (), wall =
    timed (fun () ->
        List.iter
          (fun (p, share) ->
            Format.printf "  %-20s %s@." (Runner.protocol_name p)
              (if Float.is_nan share then "no losses at all"
               else
                 Printf.sprintf "%5.1f%% of losses are loops" (100. *. share)))
          (Experiment.motivation_loss_composition ~pool
             ~instances:(max 5 (cfg.instances / 2))
             ~seed:cfg.seed (topology cfg));
        Format.printf
          "  (measurement studies the paper cites attribute up to 90%% of \
           convergence losses to loops)@.")
  in
  record_target "motivation" wall

(* --- tracing: overhead target and --trace recording -------------------- *)

let trace_overhead _pool cfg =
  section
    "Tracing overhead: untraced vs null sink vs memory sink (sequential)";
  let r, wall =
    timed (fun () ->
        let r =
          Experiment.trace_overhead
            ~instances:(max 4 (cfg.instances / 3))
            ~seed:cfg.seed ~mrai_base:cfg.mrai (topology cfg)
        in
        let pct a b = if b <= 0. then 0. else 100. *. (a -. b) /. b in
        Format.printf
          "  baseline %.3fs, null sink %.3fs (%+.1f%%), memory sink %.3fs \
           (%+.1f%%), %d events recorded@."
          r.Experiment.baseline_s r.Experiment.null_s
          (pct r.Experiment.null_s r.Experiment.baseline_s)
          r.Experiment.memory_s
          (pct r.Experiment.memory_s r.Experiment.baseline_s)
          r.Experiment.traced_events;
        if not r.Experiment.identical then begin
          prerr_endline
            "trace: FAIL — traced results differ from the untraced baseline";
          exit 1
        end;
        Format.printf "  results bit-identical across all three sinks@.";
        r)
  in
  record_target "trace" wall
    ~counters:
      (Printf.sprintf
         "{\"baseline_s\": %.3f, \"null_s\": %.3f, \"memory_s\": %.3f, \
          \"traced_events\": %d}"
         r.Experiment.baseline_s r.Experiment.null_s r.Experiment.memory_s
         r.Experiment.traced_events)

(* [--trace FILE]: stream the JSONL trace of one representative run (plain
   BGP on the first single-link instance of the configured seed) so any
   bench invocation can leave behind an inspectable event log for
   [stamp_trace]. *)
let write_trace cfg =
  match cfg.trace_file with
  | None -> ()
  | Some path ->
    let t = topology cfg in
    let spec = Scenario.single_link (Random.State.make [| cfg.seed |]) t in
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        ignore
          (Runner.run ~seed:cfg.seed ~mrai_base:cfg.mrai
             ~trace:(Trace.stream oc) Runner.Bgp t spec));
    Format.printf "(wrote %s)@." path

(* --- churn workloads --------------------------------------------------- *)

let churn_target pool cfg ~name ~title scenario =
  section title;
  let sweep, wall =
    timed (fun () ->
        let ((_, summaries) as sweep) =
          Experiment.churn_sweep ~pool
            ~instances:(max 4 (cfg.instances / 3))
            ~seed:cfg.seed ~mrai_base:cfg.mrai ~budget:(budget cfg) ~scenario
            (topology cfg)
        in
        Format.printf "%a@." Report.pp_churn summaries;
        sweep)
  in
  record_target name wall ~bars:(Report.churn_to_json sweep)

let flap pool cfg =
  churn_target pool cfg ~name:"flap"
    ~title:
      "Flapping: one origin provider link fails/recovers 5 times (60s period)"
    (Scenario.flap ~period:60. ~count:5)

let churn pool cfg =
  churn_target pool cfg ~name:"churn"
    ~title:
      "Churn: Poisson link fail/recover stream in the origin's cone (rate \
       0.05/s over 600s)"
    (Scenario.churn ~rate:0.05 ~duration:600.)

(* --- staticcheck: analyzer cost on the experiment topology ------------- *)

(* How much does pre-flighting cost relative to the simulations it guards?
   Times one whole-topology sweep (every check over every destination, the
   Fleet/CLI path) with the per-check breakdown, then a Runner-path batch
   (one spec-scoped analysis per instance) inline and through the pool. *)
let staticcheck pool cfg =
  section
    (Printf.sprintf "Static analyzer: whole-topology sweep + %d pre-flights"
       cfg.instances);
  let t = topology cfg in
  let report, wall_sweep = timed (fun () -> Staticcheck.analyze t) in
  List.iter
    (fun (id, dt) -> Format.printf "  %-22s %8.1f ms@." id (dt *. 1000.))
    report.Staticcheck.timings;
  Format.printf "  diagnostics: %d errors, %d warnings; %s@.@."
    (List.length (Staticcheck.errors report))
    (List.length (Staticcheck.warnings report))
    (Staticcheck.certificate_to_string report.Staticcheck.certificate);
  let st = Random.State.make [| cfg.seed |] in
  let specs = List.init cfg.instances (fun _ -> Scenario.single_link st t) in
  let inline, wall_inline =
    timed (fun () -> Staticcheck.preflight ~mrai_base:cfg.mrai t specs)
  in
  let pooled, wall_pool =
    timed (fun () -> Staticcheck.preflight ~pool ~mrai_base:cfg.mrai t specs)
  in
  let strip (r : Staticcheck.report) = (r.Staticcheck.diagnostics, r.Staticcheck.certificate) in
  if List.map strip inline <> List.map strip pooled then begin
    prerr_endline
      "staticcheck: FAIL — pooled pre-flight differs from inline";
    exit 1
  end;
  Format.printf
    "preflight: %d specs, %.1f ms inline, %.1f ms on %d workers@."
    cfg.instances (wall_inline *. 1000.) (wall_pool *. 1000.)
    (Parallel.jobs pool);
  record_target "staticcheck" (wall_sweep +. wall_inline +. wall_pool)

(* --- smoke: the dune-runtest fast path --------------------------------- *)

(* Tiny topology, two instances: exercises the domain pool on every
   [dune runtest] and fails loudly if parallel execution ever diverges
   from the sequential baseline. *)
let smoke pool cfg =
  (* n = 200 / 6 instances is the smallest configuration where the default
     seed yields nonzero BGP bars, so the comparison below is not
     vacuous. *)
  section
    (Printf.sprintf
       "Smoke: pool determinism, jobs=%d vs sequential (n=200, 6 instances)"
       (Parallel.jobs pool));
  let topo =
    Topo_gen.generate (Topo_gen.default_params ~seed:cfg.seed ~n:200 ())
  in
  let run ?pool () =
    Experiment.failure_bars_stats ?pool ~instances:6 ~seed:cfg.seed
      ~mrai_base:cfg.mrai ~scenario:Scenario.single_link topo
  in
  let seq, _ = timed (fun () -> run ()) in
  let par, wall = timed (fun () -> run ~pool ()) in
  if seq <> par then begin
    prerr_endline
      "smoke: FAIL — parallel results differ from the sequential baseline";
    exit 1
  end;
  Format.printf "smoke OK: jobs=%d bit-identical to sequential@."
    (Parallel.jobs pool);
  (* watchdog wiring check: a churn sweep under a deliberately tiny event
     budget must complete (no hang, no abort) with every instance reporting
     an event-budget-exhausted verdict *)
  let _, summaries =
    Experiment.churn_sweep ~pool ~instances:2 ~seed:cfg.seed
      ~mrai_base:cfg.mrai
      ~budget:{ Runner.max_events = 50; max_vtime = 86_400. }
      ~scenario:(Scenario.flap ~period:60. ~count:3)
      topo
  in
  List.iter
    (fun (s : Experiment.churn_summary) ->
      if s.crashed > 0 || s.completed <> 2 || s.event_budget_exhausted <> 2
      then begin
        Format.eprintf
          "smoke: FAIL — %s: expected 2 event-budget-exhausted verdicts, got \
           completed=%d crashed=%d ev-budget=%d@."
          (Runner.protocol_name s.protocol)
          s.completed s.crashed s.event_budget_exhausted;
        exit 1
      end)
    summaries;
  Format.printf "smoke OK: tiny-budget churn sweep recorded %d \
                 event-budget-exhausted verdicts@."
    (List.fold_left
       (fun acc (s : Experiment.churn_summary) ->
         acc + s.event_budget_exhausted)
       0 summaries);
  (* counter wiring check: every registered engine reports per-run update
     counters that are non-negative, consistent with the message totals,
     and serialised with all four fields present in the --json payload *)
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  let spec = Scenario.single_link (Random.State.make [| cfg.seed |]) topo in
  let counter_rows =
    List.map
      (fun (engine_name, engine) ->
        let r =
          Runner.run_engine ~seed:cfg.seed ~mrai_base:cfg.mrai engine topo spec
        in
        let c = r.Runner.counters in
        if not (Counters.non_negative c) then begin
          Format.eprintf "smoke: FAIL — %s reports negative counters: %a@."
            engine_name Counters.pp c;
          exit 1
        end;
        if Counters.messages c <> r.Runner.messages_initial + r.Runner.messages_event
        then begin
          Format.eprintf
            "smoke: FAIL — %s: counters (%a) disagree with message totals \
             %d+%d@."
            engine_name Counters.pp c r.Runner.messages_initial
            r.Runner.messages_event;
          exit 1
        end;
        let j = Report.counters_to_json c in
        List.iter
          (fun field ->
            if not (contains j ("\"" ^ field ^ "\"")) then begin
              Format.eprintf "smoke: FAIL — counters JSON misses %S: %s@."
                field j;
              exit 1
            end)
          [ "announcements"; "withdrawals"; "mrai_deferrals"; "lost_to_resets" ];
        Printf.sprintf "{\"engine\": %S, \"counters\": %s}" engine_name j)
      (Engine.Registry.all ())
  in
  Format.printf "smoke OK: update counters wired for %d registered engines@."
    (List.length counter_rows);
  record_target "smoke" wall
    ~bars:(Report.bars_stats_to_json par)
    ~counters:("[" ^ String.concat ", " counter_rows ^ "]")

(* --- Bechamel micro-benchmarks ---------------------------------------- *)

let micro cfg =
  let open Bechamel in
  let t = topology cfg in
  let dest = (Topology.multi_homed t).(0) in
  let st = Random.State.make [| cfg.seed |] in
  let bench_decision =
    let routes =
      List.init 16 (fun i ->
          {
            Route.as_path = List.init ((i mod 5) + 1) (fun j -> i + j + 1);
            cls =
              (match i mod 3 with
              | 0 -> Relationship.Customer
              | 1 -> Relationship.Peer
              | _ -> Relationship.Provider);
          })
    in
    Test.make ~name:"decision_process_16_routes"
      (Staged.stage (fun () -> ignore (Decision.select routes)))
  in
  let bench_heap =
    Test.make ~name:"event_heap_push_pop_1k"
      (Staged.stage (fun () ->
           let h = Event_heap.create () in
           for i = 0 to 999 do
             Event_heap.push h ~time:(float_of_int ((i * 7919) mod 997)) i
           done;
           while Event_heap.pop_min h <> None do
             ()
           done))
  in
  let bench_oracle =
    Test.make ~name:"static_oracle_fixed_point"
      (Staged.stage (fun () -> ignore (Static_route.compute t ~dest)))
  in
  let bench_phi =
    Test.make ~name:"phi_one_destination_20_samples"
      (Staged.stage (fun () -> ignore (Phi.phi ~samples:20 st t ~dest)))
  in
  let bench_walk =
    let sim = Sim.create ~seed:cfg.seed () in
    let net = Bgp_net.create sim t ~dest () in
    Bgp_net.start net;
    Sim.run sim;
    Test.make ~name:"forwarding_walk_all_ases"
      (Staged.stage (fun () -> ignore (Bgp_net.walk_all net)))
  in
  let benchmark test =
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg_b =
      Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
    in
    Benchmark.all cfg_b instances test
  in
  let analyze raw =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true
        ~predictors:[| Measure.run |]
    in
    Analyze.all ols Toolkit.Instance.monotonic_clock raw
  in
  section "Bechamel micro-benchmarks (ns/run)";
  List.iter
    (fun test ->
      let results = analyze (benchmark test) in
      Hashtbl.iter
        (fun name result ->
          match Bechamel.Analyze.OLS.estimates result with
          | Some (e :: _) -> Format.printf "%-36s %12.1f ns/run@." name e
          | Some [] | None -> Format.printf "%-36s (no estimate)@." name)
        results)
    [ bench_decision; bench_heap; bench_oracle; bench_phi; bench_walk ]

(* --- main ---------------------------------------------------------------- *)

let () =
  let target, cfg = parse_args () in
  let pool = Parallel.create ~jobs:cfg.jobs () in
  Fun.protect
    ~finally:(fun () -> Parallel.shutdown pool)
    (fun () ->
      (match target with
      | "fig1" -> fig1 pool cfg
      | "fig2" -> fig2 pool cfg
      | "fig3a" -> fig3a pool cfg
      | "fig3b" -> fig3b pool cfg
      | "node" -> node pool cfg
      | "policy" -> policy pool cfg
      | "partial" -> partial pool cfg
      | "overhead" | "delay" -> overhead_delay pool cfg
      | "ablation" -> ablation pool cfg
      | "motivation" -> motivation pool cfg
      | "flap" -> flap pool cfg
      | "churn" -> churn pool cfg
      | "trace" -> trace_overhead pool cfg
      | "smoke" -> smoke pool cfg
      | "staticcheck" -> staticcheck pool cfg
      | "micro" -> micro cfg
      | "all" ->
        fig1 pool cfg;
        fig2 pool cfg;
        fig3a pool cfg;
        fig3b pool cfg;
        node pool cfg;
        policy pool cfg;
        partial pool cfg;
        overhead_delay pool cfg;
        motivation pool cfg;
        flap pool cfg;
        churn pool cfg;
        ablation pool cfg
      | _ -> usage ());
      write_trace cfg;
      write_json cfg)
